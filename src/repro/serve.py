"""``python -m repro.serve``: stand up the TDP serving front door.

Binds the asyncio HTTP/JSON server (:mod:`repro.core.server`) over a fresh
:class:`~repro.core.session.Session`. With ``--demo`` the session is
pre-loaded with the Fig 2 multimodal tables and TinyCLIP model so the
endpoints are immediately queryable::

    python -m repro.serve --port 8734 --demo &
    curl -s localhost:8734/health
    curl -s -X POST localhost:8734/query \
         -H 'x-tdp-client: me' \
         -d '{"statement": "SELECT COUNT(*) FROM Attachments"}'

Admission knobs mirror the scheduler's: ``--workers`` sizes the pool,
``--max-queue-depth``/``--shed-policy`` bound the backlog (0 disables the
cap), ``--batch-window`` is seconds or ``auto``. See docs/SERVING.md.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.server import TdpServer
from repro.core.session import Session


def build_demo_session() -> Session:
    """A session pre-loaded with the Fig 2 multimodal workload."""
    import numpy as np
    from repro.apps.multimodal import setup_multimodal
    from repro.datasets.attachments import make_attachments
    from repro.ml.models.clip import load_pretrained_clip
    dataset = make_attachments(100, 50, 50, rng=np.random.default_rng(0))
    model = load_pretrained_clip(dataset.images, dataset.captions)
    session = Session()
    setup_multimodal(session, dataset, model)
    return session


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="python -m repro.serve",
                                     description=__doc__.split("\n\n")[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8734,
                        help="listening port (0 = ephemeral; default 8734)")
    parser.add_argument("--workers", type=int, default=4,
                        help="scheduler worker threads (default 4)")
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        help="queued-request cap before shedding "
                             "(0 = unbounded; default 64)")
    parser.add_argument("--shed-policy", choices=("reject", "oldest"),
                        default="reject")
    parser.add_argument("--batch-window", default="auto",
                        help="inference-batch flush window in seconds, or "
                             "'auto' (default) to adapt to the arrival rate")
    parser.add_argument("--demo", action="store_true",
                        help="pre-load the Fig 2 multimodal tables + model")
    return parser


async def _amain(args) -> None:
    session = build_demo_session() if args.demo else Session()
    window = args.batch_window
    if window != "auto":
        window = float(window)
    server = TdpServer(
        session, host=args.host, port=args.port, workers=args.workers,
        max_queue_depth=args.max_queue_depth or None,
        shed_policy=args.shed_policy, batch_window=window)
    await server.start()
    print(f"[repro.serve] listening on http://{server.host}:{server.port} "
          f"(workers={args.workers}, max_queue_depth="
          f"{args.max_queue_depth or 'unbounded'}, "
          f"shed_policy={args.shed_policy})", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        print("[repro.serve] shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
