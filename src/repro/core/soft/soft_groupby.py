"""Differentiable group-by/count/sum over Probability-Encoded columns.

Paper §4 / Fig 1: ``soft_count`` on PE data needs only addition and
multiplication [7] — the expected count of class c is the sum of per-row
probabilities of c. ``soft_groupby`` generalises to multi-column grouping:
the joint membership of row r in group (i, j) is P1[r, i] * P2[r, j]
(independence across parsers), so grouped counts are Khatri-Rao products
reduced over rows — pure matmul/einsum, hence end-to-end differentiable.

At inference the engine swaps these for exact implementations over the same
*dense* domain cross-product, eliminating approximation error while keeping
the output shape stable between training and deployment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ExecutionError
from repro.tcr import ops
from repro.tcr.tensor import Tensor, ones


def soft_count(probs: Tensor, weights: Optional[Tensor] = None) -> Tensor:
    """Expected per-class counts of one PE column: sum_r w_r * P[r, :]."""
    if probs.ndim != 2:
        raise ExecutionError(f"soft_count expects (rows, classes), got {probs.shape}")
    if weights is not None:
        probs = probs * ops.reshape(weights, (-1, 1))
    return ops.sum(probs, dim=0)


def joint_membership(pe_tensors: Sequence[Tensor],
                     weights: Optional[Tensor] = None) -> Tensor:
    """Row-wise joint membership over the dense domain cross-product.

    Returns a (rows, prod(k_i)) tensor; flattening order has the *first*
    grouping column varying slowest (matching meshgrid 'ij' order).
    """
    if not pe_tensors:
        raise ExecutionError("joint_membership requires at least one PE column")
    n = pe_tensors[0].shape[0]
    acc = ones(n, 1, device=pe_tensors[0].device)
    width = 1
    for probs in pe_tensors:
        if probs.shape[0] != n:
            raise ExecutionError("PE columns in one group-by must have equal row counts")
        k = probs.shape[1]
        acc = ops.einsum_pair("rm,rk->rmk", acc, probs)
        width *= k
        acc = ops.reshape(acc, (n, width))
    if weights is not None:
        acc = acc * ops.reshape(weights, (-1, 1))
    return acc


def soft_groupby_count(pe_tensors: Sequence[Tensor],
                       weights: Optional[Tensor] = None) -> Tensor:
    """Dense expected counts per group combination, shape (prod(k_i),)."""
    return ops.sum(joint_membership(pe_tensors, weights), dim=0)


def soft_groupby_sum(pe_tensors: Sequence[Tensor], values: Tensor,
                     weights: Optional[Tensor] = None) -> Tensor:
    """Dense expected per-group sums of ``values`` (shape (rows,))."""
    membership = joint_membership(pe_tensors, weights)
    return ops.sum(membership * ops.reshape(values, (-1, 1)), dim=0)


def soft_groupby_avg(pe_tensors: Sequence[Tensor], values: Tensor,
                     weights: Optional[Tensor] = None, eps: float = 1e-8) -> Tensor:
    sums = soft_groupby_sum(pe_tensors, values, weights)
    counts = soft_groupby_count(pe_tensors, weights)
    return sums / (counts + eps)


def dense_domain_columns(domains: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Cross-product key values aligned with the flattened membership order."""
    grids = np.meshgrid(*domains, indexing="ij")
    return [g.reshape(-1) for g in grids]
