"""Soft (differentiable) relational operators (paper §4)."""

from repro.core.soft.relaxations import soft_predicate
from repro.core.soft.soft_groupby import (
    dense_domain_columns,
    joint_membership,
    soft_count,
    soft_groupby_avg,
    soft_groupby_count,
    soft_groupby_sum,
)

__all__ = [
    "dense_domain_columns", "joint_membership", "soft_count",
    "soft_groupby_avg", "soft_groupby_count", "soft_groupby_sum",
    "soft_predicate",
]
