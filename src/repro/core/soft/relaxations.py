"""Continuous relaxations of discrete predicates (paper §4).

The paper cites logistic relaxations of step functions [28, 43]: a predicate
``x > t`` becomes ``sigmoid(tau * (x - t))``, a row *weight* in (0, 1) that
downstream soft aggregates treat as fractional membership. Boolean algebra
maps to product/probabilistic-sum, the standard t-norm/t-conorm pair.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.core.expr_eval import ExpressionEvaluator
from repro.sql import bound as b
from repro.tcr import ops
from repro.tcr.tensor import Tensor


def soft_predicate(expr: b.BoundExpr, evaluator: ExpressionEvaluator,
                   temperature: float) -> Tensor:
    """Evaluate a predicate as differentiable row weights in (0, 1)."""
    if isinstance(expr, b.BBinary):
        if expr.op == "AND":
            left = soft_predicate(expr.left, evaluator, temperature)
            right = soft_predicate(expr.right, evaluator, temperature)
            return left * right
        if expr.op == "OR":
            left = soft_predicate(expr.left, evaluator, temperature)
            right = soft_predicate(expr.right, evaluator, temperature)
            return left + right - left * right
        if expr.op in (">", ">=", "<", "<=", "=", "!="):
            return _soft_compare(expr, evaluator, temperature)
        raise ExecutionError(f"cannot relax operator {expr.op!r}")
    if isinstance(expr, b.BUnary) and expr.op == "NOT":
        return 1.0 - soft_predicate(expr.operand, evaluator, temperature)
    if isinstance(expr, b.BBetween):
        low = soft_predicate(
            b.BBinary(">=", expr.operand, expr.low, expr.data_type), evaluator, temperature
        )
        high = soft_predicate(
            b.BBinary("<=", expr.operand, expr.high, expr.data_type), evaluator, temperature
        )
        weight = low * high
        return 1.0 - weight if expr.negated else weight
    # Fall back to the hard boolean result as 0/1 weights (no gradient).
    mask = evaluator.evaluate_mask(expr)
    return Tensor(mask.astype(np.float32), device=evaluator.device)


def _soft_compare(expr: b.BBinary, evaluator: ExpressionEvaluator,
                  temperature: float) -> Tensor:
    left = _float_tensor(evaluator, expr.left)
    right = _float_tensor(evaluator, expr.right)
    diff = left - right
    if expr.op in (">", ">="):
        return ops.sigmoid(diff * temperature)
    if expr.op in ("<", "<="):
        return ops.sigmoid(-diff * temperature)
    # Equality: Gaussian kernel peaked at 0 difference.
    closeness = ops.exp(-(diff * diff) * temperature)
    if expr.op == "!=":
        return 1.0 - closeness
    return closeness


def _float_tensor(evaluator: ExpressionEvaluator, expr: b.BoundExpr) -> Tensor:
    value = evaluator.evaluate(expr)
    tensor = evaluator._numeric_tensor(value)
    if tensor.dtype.kind != "f":
        tensor = ops.astype(tensor, np.float32)
    return tensor
