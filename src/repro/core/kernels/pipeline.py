"""Whole-pipeline kernel compilation (TQP-style pipeline codegen).

PR 6 compiled individual Filter/Project expression trees into vectorized
kernels, but every operator still materialised its output relation and
re-entered the interpreter loop before the next one ran. This module lowers
a maximal breaker-free physical subtree — scan → filter(s) → project(s) →
optional sort aggregate — into ONE compiled callable:

* Every filter conjunct and projection expression is rewritten onto the
  *base scan's* columns with classic projection inlining
  (:func:`substitute_columns`), so the whole pipeline evaluates against a
  single shared evaluator over the scanned table.
* Selection stays an index vector: the fused conjunct list produces one
  boolean mask over the base rows, ``np.flatnonzero`` turns it into
  selection indices, and the projection / aggregate-input stage evaluates
  through a :class:`_GatherEvaluator` — no intermediate ``Relation`` is
  ever materialised between stages.
* PR 6's expression kernels are the leaf lowering for the mask and
  projection stages; aggregate inputs evaluate through the interpreter
  exactly as the serial sort aggregate evaluates them (over the same
  selected rows), then reduce with the shared sort-aggregate core.

Bit-identity: element-wise expression evaluation commutes with row
selection (gather-then-compute equals compute-then-gather per element), so
ANDing all conjunct masks over the base rows selects exactly the rows the
staged cascade selects, and evaluating substituted expressions over the
selected view reproduces the staged results bit-for-bit. The *breakers* —
shapes where that argument fails and the subtree stays on the per-operator
path (the oracle) — are:

* any UDF anywhere in the subtree (batch-shape- and cache-visible),
* two-argument ROUND with a non-literal digits operand (reads element 0 of
  its evaluated operand, which is row-position dependent),
* expression shapes the expression compiler cannot lower
  (:class:`UnsupportedExpr` → ``compile_filter``/``compile_projection``
  return None), and
* substitution failures (unknown node kinds).

At run time a :class:`KernelFallback` from any stage aborts the fused run
and the owning executor re-runs the per-operator pipeline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.expr_eval import ExpressionEvaluator
from repro.core.kernels.compiler import compile_filter, compile_projection
from repro.core.operators.aggregate import SortAggregateExec
from repro.core.operators.base import Relation
from repro.core.operators.filter import FilterExec
from repro.core.operators.fused import (
    FusedFilterExec,
    FusedFilterProjectExec,
    _GatherEvaluator,
    substitute_columns,
)
from repro.core.operators.project import ProjectExec
from repro.errors import ExecutionError
from repro.sql import bound as b
from repro.storage.table import Table


def _subexprs(expr: b.BoundExpr):
    """Depth-first walk over a bound expression tree (generic over node
    kinds: every bound node is a dataclass whose expression-valued fields
    are BoundExpr instances, lists of them, or BCase's (cond, value) pairs)."""
    import dataclasses
    yield expr
    for field in dataclasses.fields(expr):
        value = getattr(expr, field.name)
        if isinstance(value, b.BoundExpr):
            yield from _subexprs(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, b.BoundExpr):
                    yield from _subexprs(item)
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, b.BoundExpr):
                            yield from _subexprs(sub)


def _position_dependent(expr: b.BoundExpr) -> bool:
    """True when evaluating ``expr`` over a different row subset could
    change its per-row values: two-argument ROUND reads element 0 of its
    evaluated digits operand, so unless that operand is a literal the
    result depends on which row happens to be first."""
    for node in _subexprs(expr):
        if isinstance(node, b.BBuiltin) and node.name == "ROUND" \
                and len(node.args) == 2 \
                and not isinstance(node.args[1], b.BLiteral):
            return True
    return False


def _fusable(exprs: Sequence[b.BoundExpr]) -> bool:
    return not any(e is None or e.contains_udf() or _position_dependent(e)
                   for e in exprs)


class CompiledPipeline:
    """Plan-time artifact: base-level mask kernel + output stage.

    ``run`` executes the whole fused subtree over a scanned relation. The
    output stage is exactly one of: a projection kernel, a rewritten sort
    aggregate, or a plain row gather (pure filter chains).
    """

    def __init__(self, filter_kernel, project_kernel, aggregate, stages: int):
        self.filter_kernel = filter_kernel        # Optional[FilterKernel]
        self.project_kernel = project_kernel      # Optional[ProjectKernel]
        self.aggregate = aggregate                # Optional[SortAggregateExec]
        self.stages = stages                      # fused operator count

    def run(self, relation: Relation) -> Relation:
        table = relation.table
        if self.filter_kernel is not None:
            mask = self.filter_kernel.mask(ExpressionEvaluator(table))
            indices = np.flatnonzero(mask)
            selected = _GatherEvaluator(table, indices)
        else:
            indices = None
            selected = ExpressionEvaluator(table)
        if self.aggregate is not None:
            agg = self.aggregate
            keys = [selected.evaluate_column(e, n)
                    for e, n in zip(agg.group_exprs, agg.group_names)]
            agg_inputs = [
                selected.evaluate_column(s.arg, s.name) if s.arg is not None
                else None
                for s in agg.aggregates
            ]
            return agg.aggregate_evaluated(keys, agg_inputs,
                                           selected.num_rows, table.device,
                                           table.name)
        if self.project_kernel is not None:
            columns = self.project_kernel.columns(selected)
            return Relation(Table(table.name, columns))
        return Relation(table.take(indices))


def compile_pipeline(pipeline: List, aggregate=None) -> Optional[CompiledPipeline]:
    """Lower a row-wise operator chain (bottom-up, scan excluded) plus an
    optional sort aggregate into one :class:`CompiledPipeline`.

    Returns None when a breaker rule fires or there is nothing to fuse: a
    lone Filter/Project without an aggregate on top already runs as a single
    pass through the per-operator kernels.
    """
    if aggregate is not None and type(aggregate) is not SortAggregateExec:
        return None
    if not pipeline or (aggregate is None and len(pipeline) < 2):
        return None

    conjuncts: List[b.BoundExpr] = []
    inner: Optional[List[b.BoundExpr]] = None   # current schema, base-level
    names: Optional[List[str]] = None

    def to_base(exprs):
        if inner is None:
            return list(exprs)
        return [substitute_columns(e, inner) for e in exprs]

    try:
        for op in pipeline:
            if isinstance(op, FusedFilterProjectExec):
                if not _fusable(list(op.predicates) + list(op.exprs)):
                    return None
                conjuncts.extend(to_base(op.predicates))
                inner = to_base(op.exprs)
                names = list(op.names)
            elif isinstance(op, FusedFilterExec):
                if not _fusable(op.predicates):
                    return None
                conjuncts.extend(to_base(op.predicates))
            elif isinstance(op, FilterExec):
                if not _fusable([op.predicate]):
                    return None
                conjuncts.extend(to_base([op.predicate]))
            elif isinstance(op, ProjectExec):
                if not _fusable(op.exprs):
                    return None
                inner = to_base(op.exprs)
                names = list(op.names)
            else:
                return None

        fused_agg = None
        if aggregate is not None:
            group_exprs = list(aggregate.group_exprs)
            specs = list(aggregate.aggregates)
            if not _fusable(group_exprs + [s.arg for s in specs
                                           if s.arg is not None]):
                return None
            group_exprs = to_base(group_exprs)
            specs = [
                b.AggSpec(func=s.func, arg=to_base([s.arg])[0],
                          distinct=s.distinct, name=s.name,
                          data_type=s.data_type)
                if s.arg is not None else s
                for s in specs
            ]
            fused_agg = SortAggregateExec(group_exprs,
                                          list(aggregate.group_names), specs)
    except ExecutionError:
        return None

    # Substitution can move a conjunct across a selection boundary (it now
    # evaluates over all base rows); re-check position dependence on the
    # rewritten forms too.
    if any(_position_dependent(c) for c in conjuncts):
        return None

    filter_kernel = None
    if conjuncts:
        filter_kernel = compile_filter(conjuncts)
        if filter_kernel is None:
            return None
    project_kernel = None
    if fused_agg is None and inner is not None:
        project_kernel = compile_projection(inner, names)
        if project_kernel is None:
            return None
    if filter_kernel is None and project_kernel is None and fused_agg is None:
        return None
    stages = len(pipeline) + (1 if aggregate is not None else 0)
    return CompiledPipeline(filter_kernel, project_kernel, fused_agg, stages)
