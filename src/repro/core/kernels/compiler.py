"""Compile bound expression trees into vectorized tensor kernels.

TQP-style codegen: ``ExprCompiler`` recursively lowers a bound expression
tree — arithmetic, comparisons, boolean logic, IN, BETWEEN, LIKE, CASE,
IS NULL, casts, builtins, with UDF call sites as opaque column inputs —
into closures over plain numpy arrays. All per-node dispatch (method
lookup, scalar folding, dtype-strategy selection, literal materialisation)
happens once at plan time; per-batch execution is the fused chain of
vectorized ops.

Bit-identity contract: for every supported shape the kernel reproduces
``ExpressionEvaluator`` bit-for-bit. The load-bearing details:

* Literals become shape-``(1,)`` arrays with the interpreter's exact dtype
  rules (bool / int64 / float32, NULL → float32 NaN). NumPy dtype promotion
  between arrays is shape-independent (NEP 50), so ``(1,)``-vs-full-``(n)``
  operands give identical bits, and results broadcast to the batch length
  only at the operator boundary.
* Interpreter op sequences are mirrored literally: ``/`` on two integer
  operands casts to float32 (tcr's ``div``), CASE multiplies the first
  branch by a float64 ``0.0`` scalar-array, SIGMOID uses tcr's stable
  formula, two-argument ROUND reproduces the multiply/round/divide chain.
* String and date work runs on the shared kernels in ``strings``/``dates``
  that the interpreter itself uses.
* UDF calls delegate to the operator's ``ExpressionEvaluator`` — the
  tensor-cache keys, content tags and micro-batching are untouched.

``UnsupportedExpr`` at plan time means the operator stays on the
interpreter; ``KernelFallback`` at run time (a batch violating a
compile-time assumption, e.g. a string value without a dictionary) makes
the compiled operator re-run its inherited interpreter forward.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.expr_eval import (
    ExpressionEvaluator,
    Scalar,
    _cast_scalar,
    _like_to_regex,
    _structural_key,
    fold_scalars,
)
from repro.core.kernels import dates as date_kernels
from repro.core.kernels import strings as string_kernels
from repro.errors import ExecutionError
from repro.sql import bound as b
from repro.storage.column import Column
from repro.storage.encodings import (
    DatetimeEncoding,
    DictionaryEncoding,
    EncodedTensor,
    PlainEncoding,
)
from repro.tcr.dtype import is_int
from repro.tcr.tensor import Tensor


class UnsupportedExpr(Exception):
    """Plan-time: the expression shape is outside the compilable surface."""


class KernelFallback(Exception):
    """Run-time: batch data violates a compile-time assumption; the
    compiled operator falls back to its interpreter forward."""


_MISSING = object()

_ARITH_NP = {"+": np.add, "-": np.subtract, "*": np.multiply, "%": np.remainder}
_COMPARE_NP = {
    "=": np.equal, "!=": np.not_equal, "<": np.less,
    "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
}
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


class KernelContext:
    """Per-forward state: the operator's evaluator (UDF delegation and
    column access, with its own memo) plus the kernel's CSE slot table."""

    __slots__ = ("evaluator", "num_rows", "device", "slots")

    def __init__(self, evaluator: ExpressionEvaluator):
        self.evaluator = evaluator
        self.num_rows = evaluator.num_rows
        self.device = evaluator.device
        self.slots = {}


# ----------------------------------------------------------------------
# Runtime value helpers (mirror the interpreter's Value handling)
# ----------------------------------------------------------------------
def _expand(array: np.ndarray, num_rows: int) -> np.ndarray:
    """Broadcast a literal-derived (1,)-shaped result to the batch length."""
    if array.shape[0] == num_rows:
        return array
    return np.full((num_rows,) + array.shape[1:], array[0], dtype=array.dtype)


def _scalar_array(v) -> np.ndarray:
    # Mirrors ExpressionEvaluator._numeric_tensor's Scalar materialisation,
    # at shape (1,) instead of (n,).
    if isinstance(v, bool):
        return np.full(1, v)
    if isinstance(v, int):
        return np.full(1, v, dtype=np.int64)
    if v is None:
        return np.full(1, np.nan, dtype=np.float32)
    return np.full(1, float(v), dtype=np.float32)


def _num(value) -> np.ndarray:
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value.encoding, DictionaryEncoding):
        raise ExecutionError("arithmetic on string columns is not supported")
    return value.tensor.detach().data


def _bool_data(value) -> np.ndarray:
    data = value.tensor.detach().data if isinstance(value, Column) else value
    if data.dtype.kind != "b":
        raise ExecutionError(f"expected boolean operand, got {data.dtype}")
    return data


def _require_string_column(value) -> Column:
    if not isinstance(value, Column):
        raise KernelFallback("string kernel on non-column value")
    return value


def _float32(array: np.ndarray) -> np.ndarray:
    # Mirrors _to_float: ops.astype(tensor, float32) for non-float inputs.
    if array.dtype.kind != "f":
        return array.astype(np.float32)
    return array


def _div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # Mirrors tcr ops.div: integer/integer division materialises float32.
    if is_int(x.dtype) and is_int(y.dtype):
        return np.true_divide(x, y).astype(np.float32)
    return np.true_divide(x, y)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Mirrors tcr ops.sigmoid's numerically stable formula + dtype restore.
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                    np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))
    return data.astype(x.dtype, copy=False)


# Per-encoding memoised lookups (same values as DictionaryEncoding.code_for /
# range_for, which rebuild a str-typed dictionary view per call).
def _sorted_strs(encoding: DictionaryEncoding) -> np.ndarray:
    strs = encoding.__dict__.get("_strs_memo")
    if strs is None:
        strs = encoding.strings.astype(str)
        encoding.__dict__["_strs_memo"] = strs
    return strs


def _code_for(encoding: DictionaryEncoding, literal: str) -> Optional[int]:
    memo = encoding.__dict__.setdefault("_code_memo", {})
    hit = memo.get(literal, _MISSING)
    if hit is _MISSING:
        strs = _sorted_strs(encoding)
        idx = int(np.searchsorted(strs, literal))
        hit = idx if idx < encoding.cardinality and strs[idx] == literal else None
        memo[literal] = hit
    return hit


def _range_for(encoding: DictionaryEncoding, literal: str, side: str) -> int:
    memo = encoding.__dict__.setdefault("_range_memo", {})
    key = (literal, side)
    boundary = memo.get(key)
    if boundary is None:
        boundary = int(np.searchsorted(_sorted_strs(encoding), literal, side=side))
        memo[key] = boundary
    return boundary


def _dict_literal_mask(column: Column, op: str, literal: str) -> np.ndarray:
    # Mirrors _compare_dict_literal (including the <=/"right"-boundary and
    # >/" >= boundary" asymmetries) plus the datetime literal path.
    encoding = column.encoding
    codes = column.tensor.detach().data
    if isinstance(encoding, DatetimeEncoding):
        return date_kernels.compare_datetime_literal(codes, op, literal)
    if not isinstance(encoding, DictionaryEncoding):
        raise KernelFallback("string compare on non-dictionary column")
    if op in ("=", "!="):
        code = _code_for(encoding, literal)
        if code is None:
            mask = np.zeros(codes.shape[0], dtype=bool)
        else:
            mask = codes == code
        if op == "!=":
            mask = ~mask
        return mask
    boundary = _range_for(encoding, literal,
                          "left" if op in ("<", ">=") else "right")
    if op in ("<", "<="):
        return codes < boundary
    return codes >= boundary


def _dict_columns_mask(op: str, left: Column, right: Column) -> np.ndarray:
    left = _require_string_column(left)
    right = _require_string_column(right)
    if isinstance(left.encoding, DatetimeEncoding) \
            and isinstance(right.encoding, DatetimeEncoding):
        # The interpreter's numeric fall-through compares the nanos carriers.
        return _COMPARE_NP[op](left.tensor.detach().data,
                               right.tensor.detach().data)
    if not isinstance(left.encoding, DictionaryEncoding) \
            or not isinstance(right.encoding, DictionaryEncoding):
        raise KernelFallback("string compare on non-dictionary columns")
    if left.encoding == right.encoding:
        return _COMPARE_NP[op](left.tensor.detach().data,
                               right.tensor.detach().data)
    return _COMPARE_NP[op](left.decode().astype(str), right.decode().astype(str))


def _in_codes(encoding: DictionaryEncoding, values) -> np.ndarray:
    try:
        key = tuple(values)
        memo = encoding.__dict__.setdefault("_in_memo", {})
        hit = memo.get(key)
    except TypeError:
        key, memo, hit = None, None, None
    if hit is None:
        codes = [_code_for(encoding, str(v)) for v in values]
        hit = np.asarray([c for c in codes if c is not None], dtype=np.int64)
        if memo is not None:
            memo[key] = hit
    return hit


def _string_kind(expr: b.BoundExpr) -> bool:
    data_type = getattr(expr, "data_type", None)
    return getattr(data_type, "kind", None) == "string"


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------
class ExprCompiler:
    """Lowers one bound expression tree to a closure ``fn(ctx) -> value``
    where value is an ``np.ndarray`` (numeric/bool data) or a ``Column``
    (string/UDF results). Compile-time constants stay :class:`Scalar` and
    are materialised by the consumer exactly as the interpreter would."""

    def compile(self, expr: b.BoundExpr):
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise UnsupportedExpr(type(expr).__name__)
        compiled = method(expr)
        if isinstance(compiled, Scalar):
            return compiled
        return self._slotted(_structural_key(expr), compiled)

    @staticmethod
    def _slotted(key, fn):
        """Runtime CSE: structurally identical subtrees evaluate once per
        forward, mirroring the interpreter's per-pass memo."""
        if key is None:
            return fn

        def cached(ctx):
            hit = ctx.slots.get(key, _MISSING)
            if hit is _MISSING:
                hit = fn(ctx)
                ctx.slots[key] = hit
            return hit
        return cached

    def _once(self, expr, compiled):
        """Share one subtree's runtime value between two uses (BETWEEN),
        even when it has no structural key (non-deterministic UDFs)."""
        if isinstance(compiled, Scalar) or _structural_key(expr) is not None:
            return compiled
        return self._slotted(("once", id(compiled)), compiled)

    # -- value adapters -------------------------------------------------
    @staticmethod
    def _num_fn(compiled) -> Callable:
        if isinstance(compiled, Scalar):
            value = compiled.value
            try:
                array = _scalar_array(value)
            except (TypeError, ValueError):
                # e.g. float('abc'): the interpreter raises while
                # materialising at run time — defer, don't fail the plan.
                return lambda ctx: _scalar_array(value)
            return lambda ctx: array
        return lambda ctx: _num(compiled(ctx))

    @staticmethod
    def _bool_fn(compiled) -> Callable:
        if isinstance(compiled, Scalar):
            array = np.full(1, bool(compiled.value))
            return lambda ctx: array
        return lambda ctx: _bool_data(compiled(ctx))

    @staticmethod
    def _mask_fn(compiled) -> Callable:
        # Mirrors evaluate_mask (full-length mask, bool dtype enforced).
        if isinstance(compiled, Scalar):
            value = bool(compiled.value)
            return lambda ctx: np.full(ctx.num_rows, value)

        def fn(ctx):
            data = compiled(ctx)
            data = data.tensor.detach().data if isinstance(data, Column) else data
            if data.dtype.kind != "b":
                raise ExecutionError(
                    f"predicate evaluated to {data.dtype}, expected bool")
            return _expand(data, ctx.num_rows)
        return fn

    # -- leaves ---------------------------------------------------------
    def _compile_BColumn(self, expr: b.BColumn):
        # Column access goes through the evaluator: char-code normalisation,
        # gather laziness (_GatherEvaluator) and lineage stay identical.
        return lambda ctx: ctx.evaluator.evaluate(expr)

    def _compile_BLiteral(self, expr: b.BLiteral):
        return Scalar(expr.value)

    # -- operators ------------------------------------------------------
    def _compile_BBinary(self, expr: b.BBinary):
        op = expr.op
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if isinstance(left, Scalar) and isinstance(right, Scalar):
            return Scalar(fold_scalars(op, left.value, right.value))
        if op in ("AND", "OR"):
            np_fn = np.logical_and if op == "AND" else np.logical_or
            lf, rf = self._bool_fn(left), self._bool_fn(right)
            return lambda ctx: np_fn(lf(ctx), rf(ctx))
        if op in _COMPARE_NP:
            return self._compile_compare(op, expr.left, left, expr.right, right)
        if op not in _ARITH_NP and op != "/":
            raise UnsupportedExpr(f"binary op {op}")
        lf, rf = self._num_fn(left), self._num_fn(right)
        if op == "/":
            return lambda ctx: _div(lf(ctx), rf(ctx))
        np_fn = _ARITH_NP[op]
        return lambda ctx: np_fn(lf(ctx), rf(ctx))

    def _compile_compare(self, op, left_expr, left, right_expr, right):
        # Mirrors _compare's runtime dispatch, resolved at plan time via the
        # binder's types; encoding mismatches at run time fall back.
        left_str = _string_kind(left_expr)
        right_str = _string_kind(right_expr)
        if left_str and not isinstance(left, Scalar) \
                and isinstance(right, Scalar) and isinstance(right.value, str):
            literal = right.value
            return lambda ctx: _dict_literal_mask(
                _require_string_column(left(ctx)), op, literal)
        if left_str and right_str and not isinstance(left, Scalar) \
                and not isinstance(right, Scalar):
            return lambda ctx: _dict_columns_mask(op, left(ctx), right(ctx))
        if right_str and not isinstance(right, Scalar) \
                and isinstance(left, Scalar) and isinstance(left.value, str):
            literal, flipped = left.value, _FLIPPED[op]
            return lambda ctx: _dict_literal_mask(
                _require_string_column(right(ctx)), flipped, literal)
        lf, rf = self._num_fn(left), self._num_fn(right)
        np_fn = _COMPARE_NP[op]
        return lambda ctx: np_fn(lf(ctx), rf(ctx))

    def _compile_BUnary(self, expr: b.BUnary):
        operand = self.compile(expr.operand)
        if expr.op == "NOT":
            if isinstance(operand, Scalar):
                return Scalar(not bool(operand.value))
            of = self._bool_fn(operand)
            return lambda ctx: np.logical_not(of(ctx))
        if isinstance(operand, Scalar):
            return Scalar(-operand.value)
        of = self._num_fn(operand)
        return lambda ctx: np.negative(of(ctx))

    def _compile_BCall(self, expr: b.BCall):
        # UDFs are opaque column inputs: the evaluator owns invocation,
        # micro-batching and the materialization-cache protocol.
        return lambda ctx: ctx.evaluator.evaluate(expr)

    def _compile_BBuiltin(self, expr: b.BBuiltin):
        name = expr.name
        if name in ("UPPER", "LOWER", "LENGTH", "TRIM"):
            return self._compile_string_builtin(name, expr.args[0])
        if name in ("SUBSTR", "SUBSTRING"):
            return self._compile_substr(expr)
        args = [self._num_fn(self.compile(a)) for a in expr.args]
        if name == "COALESCE":
            def coalesce(ctx):
                result = args[0](ctx)
                for fn in args[1:]:
                    if result.dtype.kind != "f":
                        break   # non-float carries no NULLs (interpreter parity)
                    result = np.where(np.isnan(result), fn(ctx), result)
                return result
            return coalesce
        if name == "ABS":
            return lambda ctx: np.abs(args[0](ctx))
        if name == "SQRT":
            return lambda ctx: np.sqrt(_float32(args[0](ctx)))
        if name == "EXP":
            return lambda ctx: np.exp(_float32(args[0](ctx)))
        if name in ("LN", "LOG"):
            return lambda ctx: np.log(_float32(args[0](ctx)))
        if name in ("POW", "POWER"):
            return lambda ctx: np.power(_float32(args[0](ctx)), args[1](ctx))
        if name == "ROUND":
            if len(args) == 2:
                def round2(ctx):
                    digits_arr = args[1](ctx).reshape(-1)
                    # Zero-row inputs have no digits value to read; any
                    # factor yields the same empty output.
                    digits = float(digits_arr[0]) if digits_arr.size else 0.0
                    # float32 like tcr's ensure_tensor-wrapped python scalar,
                    # so float32 operands stay float32.
                    factor = np.asarray(10.0 ** digits, dtype=np.float32)
                    return np.true_divide(
                        np.round(np.multiply(args[0](ctx), factor)), factor)
                return round2
            return lambda ctx: np.round(args[0](ctx))
        if name == "FLOOR":
            return lambda ctx: np.floor(args[0](ctx))
        if name == "CEIL":
            return lambda ctx: np.ceil(args[0](ctx))
        if name in ("LEAST", "GREATEST"):
            np_fn = np.minimum if name == "LEAST" else np.maximum

            def chain(ctx):
                result = args[0](ctx)
                for fn in args[1:]:
                    result = np_fn(result, fn(ctx))
                return result
            return chain
        if name == "SIGMOID":
            return lambda ctx: _sigmoid(_float32(args[0](ctx)))
        raise UnsupportedExpr(f"builtin {name}")

    def _compile_string_builtin(self, name: str, arg_expr: b.BoundExpr):
        arg = self.compile(arg_expr)
        if isinstance(arg, Scalar):
            text = str(arg.value)
            if name == "UPPER":
                return Scalar(text.upper())
            if name == "LOWER":
                return Scalar(text.lower())
            if name == "TRIM":
                return Scalar(text.strip())
            return Scalar(len(text))
        if name == "TRIM":
            def trim(ctx):
                column = _require_string_column(arg(ctx))
                if not isinstance(column.encoding, DictionaryEncoding):
                    raise KernelFallback("TRIM on non-dictionary column")
                encoding, remap = string_kernels.string_transform(
                    column.encoding, "trim", lambda s: s.strip())
                codes = remap[column.tensor.detach().data]
                return Column("", EncodedTensor(
                    Tensor(codes, device=ctx.device), encoding))
            return trim
        if name == "LENGTH":
            def length(ctx):
                column = _require_string_column(arg(ctx))
                if not isinstance(column.encoding, DictionaryEncoding):
                    raise KernelFallback("LENGTH on non-dictionary column")
                lengths = string_kernels.length_transform(column.encoding)
                return lengths[column.tensor.detach().data]
            return length
        upper = name == "UPPER"

        def case(ctx):
            column = _require_string_column(arg(ctx))
            if not isinstance(column.encoding, DictionaryEncoding):
                raise KernelFallback("UPPER/LOWER on non-dictionary column")
            encoding, remap = string_kernels.case_transform(column.encoding, upper)
            codes = remap[column.tensor.detach().data]
            return Column("", EncodedTensor(Tensor(codes, device=ctx.device),
                                            encoding))
        return case

    def _compile_substr(self, expr: b.BBuiltin):
        arg = self.compile(expr.args[0])
        params = [self.compile(a) for a in expr.args[1:]]
        if not all(isinstance(p, Scalar) for p in params):
            # The interpreter rejects non-constant bounds too; no fallback
            # would help, but plan-time rejection keeps the error message.
            raise UnsupportedExpr("SUBSTR with non-constant start/length")
        start = int(params[0].value)
        length = int(params[1].value) if len(params) > 1 else None
        if isinstance(arg, Scalar):
            return Scalar(string_kernels.substr_value(str(arg.value), start, length))
        key = ("substr", start, length)

        def substr(ctx):
            column = _require_string_column(arg(ctx))
            if not isinstance(column.encoding, DictionaryEncoding):
                raise KernelFallback("SUBSTR on non-dictionary column")
            encoding, remap = string_kernels.string_transform(
                column.encoding, key,
                lambda s: string_kernels.substr_value(s, start, length))
            codes = remap[column.tensor.detach().data]
            return Column("", EncodedTensor(
                Tensor(codes, device=ctx.device), encoding))
        return substr

    def _compile_BBetween(self, expr: b.BBetween):
        operand = self._once(expr.operand, self.compile(expr.operand))
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        # BETWEEN never folds (the interpreter compares materialised arrays
        # even for all-scalar operands), so scalar operands materialise here.
        low_ok = self._compile_compare(">=", expr.operand, operand,
                                       expr.low, low)
        high_ok = self._compile_compare("<=", expr.operand, operand,
                                        expr.high, high)
        negated = expr.negated

        def fn(ctx):
            mask = np.logical_and(low_ok(ctx), high_ok(ctx))
            return np.logical_not(mask) if negated else mask
        return fn

    def _compile_BIn(self, expr: b.BIn):
        operand = self.compile(expr.operand)
        negated = expr.negated
        if isinstance(operand, Scalar):
            return Scalar((operand.value in expr.values) != negated)
        values = list(expr.values)
        plain_values = np.asarray(values)

        def fn(ctx):
            value = operand(ctx)
            if isinstance(value, Column):
                if isinstance(value.encoding, DictionaryEncoding):
                    mask = np.isin(value.tensor.detach().data,
                                   _in_codes(value.encoding, values))
                else:
                    mask = np.isin(value.tensor.detach().data, plain_values)
            else:
                mask = np.isin(value, plain_values)
            return ~mask if negated else mask
        return fn

    def _compile_BLike(self, expr: b.BLike):
        operand = self.compile(expr.operand)
        pattern, negated = expr.pattern, expr.negated
        if isinstance(operand, Scalar):
            matched = _like_to_regex(pattern).fullmatch(str(operand.value)) is not None
            return Scalar(matched != negated)

        def fn(ctx):
            column = _require_string_column(operand(ctx))
            if not isinstance(column.encoding, DictionaryEncoding):
                raise KernelFallback("LIKE on non-dictionary column")
            mask = string_kernels.like_mask(column.encoding,
                                            column.tensor.detach().data, pattern)
            return ~mask if negated else mask
        return fn

    def _compile_BIsNull(self, expr: b.BIsNull):
        operand = self.compile(expr.operand)
        negated = expr.negated
        if isinstance(operand, Scalar):
            return Scalar((operand.value is None) != negated)

        def fn(ctx):
            value = operand(ctx)
            data = value.tensor.detach().data if isinstance(value, Column) else value
            if data.dtype.kind == "f":
                mask = np.isnan(data)
                if data.ndim > 1:
                    mask = mask.reshape(data.shape[0], -1).any(axis=1)
            else:
                mask = np.zeros(data.shape[0], dtype=bool)
            return ~mask if negated else mask
        return fn

    def _compile_BCase(self, expr: b.BCase):
        whens = [(self._mask_fn(self.compile(cond)),
                  self._num_fn(self.compile(value)))
                 for cond, value in expr.whens]
        else_fn = None
        if expr.else_ is not None:
            else_fn = self._num_fn(self.compile(expr.else_))
        # tcr's ensure_tensor canonicalizes the python 0.0 to a float32 0-d
        # tensor, so a float32 branch stays float32 (and an int branch
        # promotes to float64) exactly as under the interpreter.
        zero = np.asarray(0.0, dtype=np.float32)

        def fn(ctx):
            result = None
            taken = None
            for cond_fn, branch_fn in whens:
                mask = cond_fn(ctx)
                branch = branch_fn(ctx)
                if result is None:
                    result = np.where(mask, branch, np.multiply(branch, zero))
                    taken = mask
                else:
                    fresh = np.logical_and(mask, np.logical_not(taken))
                    result = np.where(fresh, branch, result)
                    taken = np.logical_or(taken, mask)
            if else_fn is not None:
                result = np.where(taken, result, else_fn(ctx))
            return result
        return fn

    def _compile_BCast(self, expr: b.BCast):
        operand = self.compile(expr.operand)
        target = expr.data_type
        if isinstance(operand, Scalar):
            return Scalar(_cast_scalar(operand.value, target))
        if target.kind == "string":
            # Mirror the interpreter exactly: decode (identity for plain
            # numeric data, strings for dictionaries) then str() per row —
            # same np scalar types in, so identical text out.
            def to_string(ctx):
                value = operand(ctx)
                if isinstance(value, Column):
                    decoded = value.decode()
                else:
                    # (1,)-shaped literal-derived arrays expand here; string
                    # columns are always full-length already.
                    decoded = _expand(value, ctx.num_rows)
                strings = np.asarray([str(v) for v in decoded], dtype=object)
                return Column.from_values("", strings, device=ctx.device)
            return to_string
        np_dtype = {"int": np.int64, "float": np.float32,
                    "bool": np.bool_}.get(target.kind)
        if np_dtype is None:
            raise UnsupportedExpr(f"CAST to {target.kind}")

        def fn(ctx):
            value = operand(ctx)
            if isinstance(value, Column):
                if isinstance(value.encoding, DictionaryEncoding):
                    return value.decode().astype(np.float64).astype(np_dtype)
                return value.tensor.detach().data.astype(np_dtype)
            return value.astype(np_dtype)
        return fn


# ----------------------------------------------------------------------
# Operator-level kernels
# ----------------------------------------------------------------------
class FilterKernel:
    """A compiled conjunct list → one boolean row mask per forward."""

    def __init__(self, mask_fns: List[Callable]):
        self._mask_fns = mask_fns

    def mask(self, evaluator: ExpressionEvaluator) -> np.ndarray:
        ctx = KernelContext(evaluator)
        mask = self._mask_fns[0](ctx)
        for fn in self._mask_fns[1:]:
            mask = mask & fn(ctx)
        return mask


class ProjectKernel:
    """A compiled projection list → output columns per forward."""

    def __init__(self, column_fns: List[Callable]):
        self._column_fns = column_fns

    def columns(self, evaluator: ExpressionEvaluator) -> List[Column]:
        ctx = KernelContext(evaluator)
        return [fn(ctx) for fn in self._column_fns]


def _column_fn(compiled, name: str) -> Callable:
    """Mirror evaluate_column/materialize for one projection item."""
    if isinstance(compiled, Scalar):
        constant = compiled.value
        if isinstance(constant, str):
            def str_fn(ctx):
                values = np.array([constant] * ctx.num_rows, dtype=object)
                return Column.from_values(name, values, device=ctx.device)
            return str_fn
        if isinstance(constant, bool):
            dtype, value = np.bool_, constant
        elif isinstance(constant, int):
            dtype, value = np.int64, constant
        elif constant is None:
            dtype, value = np.float32, np.nan
        else:
            dtype, value = np.float32, float(constant)

        def const_fn(ctx):
            array = np.full(ctx.num_rows, value, dtype=dtype)
            return Column(name, EncodedTensor(Tensor(array, device=ctx.device),
                                              PlainEncoding()))
        return const_fn

    def fn(ctx):
        value = compiled(ctx)
        if isinstance(value, Column):
            return value.rename(name) if name else value
        array = _expand(value, ctx.num_rows)
        # dtype pinned: the bare Tensor constructor canonicalizes float64 to
        # float32, but interpreter results flow through Tensor._make, which
        # preserves op output dtypes — the kernel must too.
        return Column(name, EncodedTensor(
            Tensor(array, device=ctx.device, dtype=array.dtype),
            PlainEncoding()))
    return fn


def compile_filter(predicates: Sequence[b.BoundExpr]) -> Optional[FilterKernel]:
    """Compile a conjunct list; None when any conjunct is unsupported."""
    compiler = ExprCompiler()
    try:
        fns = [compiler._mask_fn(compiler.compile(p)) for p in predicates]
    except UnsupportedExpr:
        return None
    return FilterKernel(fns)


def compile_projection(exprs: Sequence[b.BoundExpr],
                       names: Sequence[str]) -> Optional[ProjectKernel]:
    """Compile a projection list; None when any expression is unsupported."""
    compiler = ExprCompiler()
    try:
        fns = [_column_fn(compiler.compile(e), name)
               for e, name in zip(exprs, names)]
    except UnsupportedExpr:
        return None
    return ProjectKernel(fns)
