"""String kernels over padded char-code matrices.

The dictionary of a :class:`DictionaryEncoding` *is* the paper's string
tensor representation: a ``(cardinality, max_len)`` uint32 matrix with one
zero-padded string per row. Every kernel here runs over that matrix — O(c)
in the dictionary, never O(n) in the rows — and maps results back through
the integer codes:

* ``LIKE`` is an NFA sweep over the matrix (one vectorized step per pattern
  token, ``logical_or.accumulate`` for ``%``),
* ``UPPER``/``LOWER`` transform the dictionary itself and re-sort it, so the
  per-row work is a single code remap gather,
* ``LENGTH`` is a pad-count per dictionary row plus a gather.

Results are memoized on the encoding object (dictionaries are immutable):
repeated batches — and every shard of a sharded scan — reuse them. The
memo writes are idempotent, so a racing first-touch from two shard helpers
is benign.
"""

from __future__ import annotations

import re
from typing import Tuple

import numpy as np

from repro.storage.encodings import DictionaryEncoding
from repro.storage.encodings.dictionary import _strings_to_codepoints
from repro.tcr.tensor import Tensor

_PREFIX_PATTERN = re.compile(r"[^%_]*%")


def like_matrix_mask(matrix: np.ndarray, pattern: str) -> np.ndarray:
    """Match SQL LIKE against every row of a padded char-code matrix.

    Simulates the pattern NFA over all rows at once: ``state[i, j]`` is True
    when the tokens consumed so far can match the first ``j`` characters of
    row ``i``. ``%`` closes over any suffix via a left-to-right or-scan;
    ``_`` and literals shift the frontier by one (valid) character. A row
    matches when its final state covers exactly its unpadded length.
    Padding zeros mark end-of-string (the dictionary codec never stores
    NUL), and — unlike the old regex lowering of ``%``/``_`` to ``.*``/``.``
    without DOTALL — wildcards here match newlines, as SQL requires.
    """
    rows, width = matrix.shape
    valid = matrix != 0
    lengths = valid.sum(axis=1)
    state = np.zeros((rows, width + 1), dtype=bool)
    state[:, 0] = True
    for token in pattern:
        if token == "%":
            np.logical_or.accumulate(state, axis=1, out=state)
        elif token == "_":
            nxt = np.zeros_like(state)
            np.logical_and(state[:, :-1], valid, out=nxt[:, 1:])
            state = nxt
        else:
            nxt = np.zeros_like(state)
            np.logical_and(state[:, :-1], matrix == ord(token), out=nxt[:, 1:])
            state = nxt
    return state[np.arange(rows), lengths]


def like_mask(encoding: DictionaryEncoding, codes: np.ndarray,
              pattern: str) -> np.ndarray:
    """Row mask for ``column LIKE pattern`` over dictionary codes.

    Prefix patterns (``'abc%'``) stay a code-range check against the sorted
    dictionary; everything else runs the matrix NFA once per (dictionary,
    pattern) and gathers the per-distinct verdicts through the codes.
    """
    if _PREFIX_PATTERN.fullmatch(pattern):
        lo, hi = encoding.prefix_range(pattern[:-1])
        return (codes >= lo) & (codes < hi)
    memo = encoding.__dict__.setdefault("_like_memo", {})
    dict_mask = memo.get(pattern)
    if dict_mask is None:
        dict_mask = like_matrix_mask(encoding.dictionary.detach().data, pattern)
        memo[pattern] = dict_mask
    return dict_mask[codes]


def case_transform(encoding: DictionaryEncoding,
                   upper: bool) -> Tuple[DictionaryEncoding, np.ndarray]:
    """``(new_encoding, remap)`` lowering UPPER/LOWER to a code gather.

    ``remap[codes]`` are valid codes of ``new_encoding`` whose decoded
    values equal ``UPPER(value)`` (resp. ``LOWER``). The dictionary itself
    is case-shifted — vectorized for all-ASCII dictionaries, per distinct
    string otherwise (Unicode case mapping can change lengths) — then
    restored to sorted-unique form so code-order comparisons keep working.
    """
    memo = encoding.__dict__.setdefault("_case_memo", {})
    hit = memo.get(upper)
    if hit is None:
        hit = _build_case_transform(encoding, upper)
        memo[upper] = hit
    return hit


def _build_case_transform(encoding, upper):
    matrix = encoding.dictionary.detach().data
    if matrix.size and int(matrix.max()) < 128:
        lo, hi = (97, 122) if upper else (65, 90)
        shift = np.where((matrix >= lo) & (matrix <= hi),
                         np.uint32(32), np.uint32(0))
        transformed = matrix - shift if upper else matrix + shift
    else:
        strings = [s.upper() if upper else s.lower() for s in encoding.strings]
        transformed = _strings_to_codepoints(strings)
    # Zero padding sorts below every code point, so lexicographic row order
    # equals string order and unique rows are exactly the distinct strings.
    uniques, inverse = np.unique(transformed, axis=0, return_inverse=True)
    new_encoding = DictionaryEncoding(
        Tensor(np.ascontiguousarray(uniques, dtype=np.uint32),
               device=encoding.dictionary.device))
    return new_encoding, inverse.reshape(-1).astype(np.int64)


def substr_value(text: str, start: int, length) -> str:
    """SQL SUBSTR semantics shared by the interpreter and the compiled
    kernel: 1-based start (non-positive clamps to the string head),
    optional length (non-positive yields the empty string)."""
    begin = start - 1 if start > 0 else 0
    if length is None:
        return text[begin:]
    if length <= 0:
        return ""
    return text[begin:begin + length]


def string_transform(encoding: DictionaryEncoding, key,
                     fn) -> Tuple[DictionaryEncoding, np.ndarray]:
    """``(new_encoding, remap)`` lowering a per-distinct string function
    (TRIM, SUBSTR with constant bounds, ...) to a code gather.

    Same shape as :func:`case_transform`: apply ``fn`` once per distinct
    string, restore sorted-unique form, and memoize on the (immutable)
    encoding under ``key`` so repeated batches and shard helpers reuse it.
    """
    memo = encoding.__dict__.setdefault("_transform_memo", {})
    hit = memo.get(key)
    if hit is None:
        strings = [fn(s) for s in encoding.strings]
        transformed = _strings_to_codepoints(strings)
        uniques, inverse = np.unique(transformed, axis=0, return_inverse=True)
        new_encoding = DictionaryEncoding(
            Tensor(np.ascontiguousarray(uniques, dtype=np.uint32),
                   device=encoding.dictionary.device))
        hit = (new_encoding, inverse.reshape(-1).astype(np.int64))
        memo[key] = hit
    return hit


def length_transform(encoding: DictionaryEncoding) -> np.ndarray:
    """Per-distinct string lengths (int64); index with codes for LENGTH."""
    lengths = encoding.__dict__.get("_length_memo")
    if lengths is None:
        matrix = encoding.dictionary.detach().data
        lengths = (matrix != 0).sum(axis=1).astype(np.int64)
        encoding.__dict__["_length_memo"] = lengths
    return lengths
