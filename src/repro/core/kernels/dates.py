"""Date/time kernels over int64 epoch-nanosecond tensors.

Datetime columns store epoch nanoseconds (``DatetimeEncoding``), the
paper's integer representation for temporal data: a comparison against a
date literal parses the literal once and runs a single integer compare over
the carrier. Shared by the interpreter and the expression compiler so both
paths are bit-identical by construction.
"""

from __future__ import annotations

import numpy as np

_COMPARE_NP = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def literal_nanos(text: str) -> int:
    """Parse an ISO date/timestamp literal to epoch nanoseconds."""
    return int(np.datetime64(str(text)).astype("datetime64[ns]").astype(np.int64))


def compare_datetime_literal(codes: np.ndarray, op: str,
                             literal: str) -> np.ndarray:
    """``codes <op> literal`` where codes are epoch nanoseconds."""
    target = np.asarray(literal_nanos(literal), dtype=np.int64)
    return _COMPARE_NP[op](codes, target)
