"""Vectorized tensor kernels compiled from bound expression trees.

TQP-style codegen (PAPERS.md): instead of interpreting the expression tree
node-by-node per batch, each Filter/Project pipeline prefix is lowered once
at plan time into a single Python callable composed purely of vectorized
numpy tensor ops. ``ExpressionEvaluator`` remains the fallback interpreter
and the bit-identity oracle for every kernel (docs/KERNEL_COMPILATION.md).

Import submodules directly (``repro.core.kernels.compiler``,
``.strings``, ``.dates``): the interpreter itself uses ``strings``/``dates``
for its string and date kernels, so a re-exporting package init would cycle
through ``compiler`` back into ``expr_eval``.
"""
