"""Session-wide inference materialization cache (the "inference-aware
execution" subsystem).

The paper's core workload runs NN inference *inside* queries — similarity
UDFs over multimodal columns — yet a naive engine re-encodes the entire
corpus per statement, per duplicate subexpression, and once more on every
index (re)build. Following NeurStore's position that in-database model
outputs are first-class managed state, this module makes inference a cached,
versioned materialization:

* :class:`TensorCache` — a bytes-budgeted LRU owned by the session
  (``Session.tensor_cache``) that stores

  - **UDF output columns**, keyed on ``(udf name, udf registration version,
    parameter-state fingerprint, per-argument content identity, device)``;
  - **encoder outputs** (``model.encode_image(...)`` of two-tower models),
    keyed on ``(model identity, parameter-state fingerprint, input content
    identity)`` — shared between query-time evaluation and
    ``IndexManager._embed_corpus``, in both directions.

* **Content identity** rides on object identity plus row lineage: every
  stored tensor gets a process-unique token on first use
  (:func:`repro.storage.column.identity_token`), and ``Column.take`` records
  ``(base token, row indices)`` lineage. Because tables are immutable and
  every ``register_*`` builds new tensors, identity tokens give exact
  invalidation — the same machinery (``catalog.version`` /
  ``functions.version`` object turnover) that invalidates the plan cache.
  Re-registration never *hits* a stale entry; stale entries age out of the
  LRU. In-place weight mutation (a training loop touching a UDF's modules
  between statements) is caught by the parameter-state fingerprint.

* **Row-subset reuse**: a UDF evaluated over a filtered subset of a column
  it has already scored in full is answered by *gathering* from the cached
  full-column entry — this is what makes a UDF duplicated between SELECT and
  WHERE/ORDER BY invoke the model exactly once per statement. The engine's
  existing micro-batching contract (UDFs are row-wise: outputs for row ``i``
  depend only on inputs of row ``i``) is exactly what makes the gather
  sound.

* **Micro-batch capture**: the CPU device profile dispatches UDFs in small
  micro-batches (the mechanism behind the paper's Fig 2 CPU/GPU gap), so
  encoder calls inside a UDF see row *slices*. Slices are tagged with their
  ``(parent, start, stop)`` lineage; the cache can later *assemble* a
  full-corpus embedding from contiguous slice entries — which is how a
  ``CREATE VECTOR INDEX`` build after a similarity query performs zero
  additional corpus encodes (and a query after a build reuses the build's
  embeddings slice by slice).

Trainable compilations never activate the cache, and grad-enabled UDF
invocations (plus models left in ``train()`` mode) always bypass it.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro.storage.column import Column, concat_encoded, identity_token
from repro.tcr import ops
from repro.tcr.autograd import is_grad_enabled
from repro.tcr.tensor import Tensor

DEFAULT_TENSOR_CACHE_BYTES = 256 * 1024 * 1024

# The active cache (None outside a query run / index build). Mirrors the
# shared-scan memo: plumbing a session handle through every operator would
# touch each evaluator constructor; a scoped variable keeps the engine layers
# decoupled while activation stays owned by CompiledQuery.run(). A
# ContextVar (not a module global) so concurrent scheduler workers each see
# only the activation of the query *they* are running.
_ACTIVE: "contextvars.ContextVar[Optional[TensorCache]]" = contextvars.ContextVar(
    "tdp_active_tensor_cache", default=None)

# The active cross-query inference batcher (set by scheduler workers for the
# duration of one statement execution; see repro.core.scheduler). Lives here
# rather than in scheduler.py because the encoder memo below is its
# interception point and must not import the scheduler.
_BATCHER: "contextvars.ContextVar[Optional[object]]" = contextvars.ContextVar(
    "tdp_active_inference_batcher", default=None)


def active() -> Optional["TensorCache"]:
    """The cache activated by the currently running query, if any."""
    return _ACTIVE.get()


def active_batcher() -> Optional[object]:
    """The inference batcher installed by the scheduler worker, if any."""
    return _BATCHER.get()


@contextlib.contextmanager
def batching(batcher) -> object:
    """Route this thread's encoder micro-batches through ``batcher``."""
    token = _BATCHER.set(batcher)
    try:
        yield batcher
    finally:
        _BATCHER.reset(token)


# ----------------------------------------------------------------------
# Content identity: tags, lineage digests, parameter fingerprints
# ----------------------------------------------------------------------
class CacheTag:
    """Content identity of one tensor argument.

    ``base`` is the identity token of the full base-column tensor;
    ``rows_fp`` is ``None`` for the full column, a digest string for a
    row gather, or ``(parent_fp, start, stop)`` for a micro-batch slice;
    ``rows`` holds the actual base-row indices behind ``rows_fp`` (``None``
    for the full column) so cached full entries can be gathered from.
    """

    __slots__ = ("base", "rows_fp", "rows")

    def __init__(self, base: int, rows_fp, rows: Optional[np.ndarray]):
        self.base = base
        self.rows_fp = rows_fp
        self.rows = rows

    def __repr__(self) -> str:
        return f"CacheTag(base={self.base}, rows_fp={self.rows_fp!r})"


def rows_digest(rows: np.ndarray) -> str:
    """Collision-safe digest of a row-index array (keys stay small)."""
    return hashlib.blake2b(np.ascontiguousarray(rows).tobytes(),
                           digest_size=16).hexdigest()


def state_fingerprint(modules: Sequence[object]) -> str:
    """Digest of every parameter and buffer a UDF/model owns.

    Catches in-place weight mutation (training between statements) that
    object identity cannot see. Modules without parameters hash to a
    constant: their outputs depend on inputs alone.
    """
    h = hashlib.blake2b(digest_size=16)
    count = 0
    for module in modules:
        named = getattr(module, "named_parameters", None)
        if named is None:
            continue
        for name, param in module.named_parameters():
            h.update(name.encode())
            h.update(np.ascontiguousarray(param.data).tobytes())
            count += 1
        for name, buf in module.named_buffers():
            if buf is not None:
                h.update(name.encode())
                h.update(np.ascontiguousarray(buf.data).tobytes())
                count += 1
    return h.hexdigest() if count else "stateless"


def _contiguous_bounds(rows: np.ndarray) -> Optional[tuple]:
    """``(start, stop)`` when ``rows`` is ``arange(start, stop)``, else None."""
    n = rows.size
    if n == 0 or rows.ndim != 1:
        return None
    start = int(rows[0])
    stop = int(rows[-1]) + 1
    if stop - start != n:
        return None
    if n > 2 and not np.array_equal(rows, np.arange(start, stop)):
        return None
    return (start, stop)


def column_tag(column: Column) -> Optional[CacheTag]:
    """Content identity of a column: lineage when it is a row gather of a
    base column, identity token of its carrier tensor otherwise.

    Contiguous row ranges canonicalise to the slice form ``(None, start,
    stop)`` rather than an index digest. This is what unifies the shard
    driver with micro-batch capture: a shard's slice of a base column keys
    under exactly the form serial micro-batching would have produced, so
    per-shard UDF/encoder entries written at ``shards=K`` are the entries a
    ``shards=1`` run (or an index build) reads and assembles.
    """
    lineage = getattr(column, "lineage", None)
    if lineage is not None:
        base, rows = lineage
        if rows is None:
            return CacheTag(base, None, None)
        bounds = _contiguous_bounds(rows)
        if bounds is not None:
            return CacheTag(base, (None, bounds[0], bounds[1]), rows)
        return CacheTag(base, rows_digest(rows), rows)
    token = identity_token(column.tensor)
    if token is None:
        return None
    return CacheTag(token, None, None)


def slice_tag(parent: CacheTag, start: int, stop: int) -> CacheTag:
    """Tag for rows ``[start:stop)`` of an already-tagged tensor.

    Slices of full columns and slices of slices both canonicalise to
    *absolute* base coordinates ``(None, base_start, base_stop)``: a
    micro-batch inside shard ``[s, e)`` keys identically to the same rows
    micro-batched by a serial pass, so cache entries and in-flight batcher
    dedup keys agree across shard layouts.
    """
    if parent.rows is not None:
        rows = parent.rows[start:stop]
    else:
        rows = np.arange(start, stop)
    fp = parent.rows_fp
    if fp is None:
        return CacheTag(parent.base, (None, start, stop), rows)
    if isinstance(fp, tuple) and len(fp) == 3 and fp[0] is None:
        return CacheTag(parent.base, (None, fp[1] + start, fp[1] + stop), rows)
    return CacheTag(parent.base, (fp, start, stop), rows)


_TAG_LOCK = threading.Lock()


def tag_tensor(tensor, tag: CacheTag) -> None:
    """Attach a content tag to a tensor about to flow into user code.

    Tags are refcounted: concurrent queries evaluating UDFs over the same
    *shared* base-column tensor tag it with identical content identity, and
    each invocation's cleanup must only release its own reference — a plain
    set/del would let the first query to finish strip the tag out from
    under another query mid-flight (silently disabling the encoder memo and
    the inference batcher for it).
    """
    with _TAG_LOCK:
        try:
            if getattr(tensor, "_cache_tag", None) is None:
                tensor._cache_tag = tag
                tensor._cache_tag_refs = 1
            else:
                tensor._cache_tag_refs = getattr(tensor, "_cache_tag_refs", 1) + 1
        except AttributeError:
            pass


def untag_tensor(tensor) -> None:
    """Release one reference to a tensor's content tag (tags are scoped to
    one cache-eligible UDF invocation — stale tags must not engage encoder
    memos for callers that did not opt in)."""
    with _TAG_LOCK:
        refs = getattr(tensor, "_cache_tag_refs", 1)
        try:
            if refs > 1:
                tensor._cache_tag_refs = refs - 1
            else:
                del tensor._cache_tag
                if hasattr(tensor, "_cache_tag_refs"):
                    del tensor._cache_tag_refs
        except AttributeError:
            pass


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class _Entry:
    __slots__ = ("value", "nbytes")

    def __init__(self, value, nbytes: int):
        self.value = value
        self.nbytes = nbytes


class TensorCache:
    """Bytes-budgeted LRU over UDF outputs and encoder materializations."""

    def __init__(self, max_bytes: int = DEFAULT_TENSOR_CACHE_BYTES):
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        # Side index: UDF head -> keys of that UDF's *slice* entries, so the
        # shard-assembly probe on a full-column miss touches only the few
        # candidate entries instead of scanning the whole LRU under the lock.
        self._udf_slices: dict = {}
        self._model_fps: dict = {}
        # One re-entrant lock guards entries, byte accounting, the
        # fingerprint memo AND the stat counters: hit/miss counts are bumped
        # under the same critical section as the lookup they describe, so
        # concurrent readers can never tear or misreport them. Leaf lock in
        # the engine's ordering — nothing else is acquired while held.
        self._lock = threading.RLock()
        self._activations = 0
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.gather_hits = 0
        self.inserts = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def activate(self):
        """Make this cache visible to the expression evaluator and encoder
        memos for the duration of one query run (this thread only)."""
        token = _ACTIVE.set(self)
        # Weight fingerprints are memoised per activation (per statement):
        # cheap enough to recompute between statements, which is exactly the
        # granularity at which a training loop can mutate weights. Under
        # concurrent serving, the memo is cleared when the *first* of the
        # overlapping activations begins — in-place weight mutation while
        # statements are in flight is outside the cache's contract (models
        # being trained must be in train() mode, which bypasses it).
        with self._lock:
            self._activations += 1
            if self._activations == 1:
                self._model_fps.clear()
        try:
            yield self
        finally:
            with self._lock:
                self._activations -= 1
            _ACTIVE.reset(token)

    def model_state_fp(self, model) -> str:
        if _ACTIVE.get() is not self:
            return state_fingerprint([model])
        token = identity_token(model)
        with self._lock:
            fp = self._model_fps.get(token)
        if fp is None:
            fp = state_fingerprint([model])
            with self._lock:
                self._model_fps[token] = fp
        return fp

    def udf_state_fp(self, udf) -> str:
        """Per-activation memo of a UDF's combined module fingerprint (the
        warm path must not re-hash model weights on every call site)."""
        if _ACTIVE.get() is not self:
            return state_fingerprint(udf.modules)
        token = ("udf", identity_token(udf))
        with self._lock:
            fp = self._model_fps.get(token)
        if fp is None:
            fp = state_fingerprint(udf.modules)
            with self._lock:
                self._model_fps[token] = fp
        return fp

    # ------------------------------------------------------------------
    # Core LRU mechanics
    # ------------------------------------------------------------------
    def _touch(self, key: tuple) -> Optional[_Entry]:
        # Callers hold self._lock.
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: tuple, value, nbytes: int) -> None:
        nbytes = int(nbytes)
        if self.max_bytes <= 0 or nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes)
            if old is None and _is_udf_slice_key(key):
                self._udf_slices.setdefault(key[0], set()).add(key)
            self.current_bytes += nbytes
            self.inserts += 1
            while self.current_bytes > self.max_bytes and self._entries:
                evicted_key, evicted = self._entries.popitem(last=False)
                self.current_bytes -= evicted.nbytes
                self.evictions += 1
                self._unindex(evicted_key)

    def _unindex(self, key: tuple) -> None:
        # Callers hold self._lock.
        if _is_udf_slice_key(key):
            keys = self._udf_slices.get(key[0])
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._udf_slices[key[0]]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._udf_slices.clear()
            self._model_fps.clear()
            self.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        # Unified stats vocabulary (docs/OBSERVABILITY.md): "size" is the
        # canonical entry-count key across caches; "entries" remains as a
        # deprecated alias for pre-telemetry callers.
        with self._lock:
            size = len(self._entries)
            return {
                "hits": self.hits, "misses": self.misses,
                "gather_hits": self.gather_hits, "inserts": self.inserts,
                "evictions": self.evictions, "size": size, "entries": size,
                "bytes": self.current_bytes, "max_bytes": self.max_bytes,
            }

    # ------------------------------------------------------------------
    # UDF output entries
    # ------------------------------------------------------------------
    def udf_get(self, key: tuple, full_key: Optional[tuple],
                rows: Optional[np.ndarray],
                num_rows: Optional[int] = None) -> Optional[List[Column]]:
        """Exact hit, or a row gather from a cached full-column entry, or —
        for a full-column request — an assembly of per-shard slice entries.

        The gather/assembly itself (a potentially large copy) happens after
        the lock is released: entry values are immutable, so capturing the
        reference under the lock is enough, and concurrent workers' lookups
        must not serialize behind another worker's copy.
        """
        full_value = None
        pieces = None
        with self._lock:
            entry = self._touch(key)
            if entry is not None:
                self.hits += 1
                return entry.value
            if full_key is not None and rows is not None:
                full = self._touch(full_key)
                if full is not None and full.value:
                    n = full.value[0].num_rows
                    if rows.size == 0 or int(rows.max()) < n:
                        self.gather_hits += 1
                        full_value = full.value
            if full_value is None and full_key is None and num_rows \
                    and _is_full_udf_key(key):
                pieces = self._udf_slice_pieces(key)
            if full_value is None and not pieces:
                self.misses += 1
        if full_value is not None:
            return [col.take(rows) for col in full_value]
        if pieces:
            assembled = _assemble_udf_columns(pieces, num_rows)
            if assembled is not None:
                nbytes = sum(int(col.tensor.data.nbytes) for col in assembled)
                self.put(key, assembled, nbytes)
                with self._lock:
                    self.gather_hits += 1
                return assembled
            with self._lock:
                self.misses += 1
        return None

    def _udf_slice_pieces(self, full_key: tuple) -> list:
        """Per-shard entries matching a full-column UDF key (callers hold
        the lock). An entry matches when its key differs from ``full_key``
        only by every full-column argument part carrying the *same*
        contiguous slice window — the pattern the shard driver produces
        (all column arguments of one shard are sliced identically)."""
        pieces = []
        for key in self._udf_slices.get(full_key[0], ()):
            entry = self._entries.get(key)
            if entry is None or len(key) != len(full_key):
                continue
            window = None
            matched = True
            for part, full_part in zip(key[1:], full_key[1:]):
                if part == full_part:
                    continue
                if (_is_col_part(full_part) and full_part[2] is None
                        and _is_col_part(part) and part[1] == full_part[1]
                        and isinstance(part[2], tuple) and len(part[2]) == 3
                        and part[2][0] is None):
                    bounds = (part[2][1], part[2][2])
                    if window is None:
                        window = bounds
                    elif window != bounds:
                        matched = False
                        break
                else:
                    matched = False
                    break
            if matched and window is not None:
                pieces.append((window[0], window[1], entry.value))
        return pieces

    def udf_put(self, key: tuple, columns: Sequence[Column]) -> None:
        nbytes = sum(int(col.tensor.data.nbytes) for col in columns)
        self.put(key, list(columns), nbytes)

    # ------------------------------------------------------------------
    # Encoder (embedding) entries
    # ------------------------------------------------------------------
    def encoded_get(self, model_token: int, model_fp: str, tag: CacheTag,
                    num_rows: int, device: str) -> Optional[Tensor]:
        """Exact hit; else derive a subset/slice from the full-column entry;
        else (when asked for the full column) assemble from contiguous
        micro-batch slice entries. ``device`` is the input tensor's device:
        parameterless encoders follow it, so entries are per-device (like
        UDF-output keys)."""
        key = ("enc", model_token, model_fp, device, tag.base, tag.rows_fp)
        full_value = None
        pieces = None
        with self._lock:
            entry = self._touch(key)
            if entry is not None:
                self.hits += 1
                return entry.value
            if tag.rows_fp is not None:
                full = self._touch(("enc", model_token, model_fp, device,
                                    tag.base, None))
                if full is not None and tag.rows is not None:
                    rows = tag.rows
                    if rows.size == 0 or int(rows.max()) < full.value.shape[0]:
                        self.gather_hits += 1
                        full_value = full.value
            else:
                pieces = self._slice_pieces(model_token, model_fp, tag, device)
            if full_value is None and not pieces:
                self.misses += 1
        # Copies happen outside the lock: entry tensors are immutable, so a
        # captured reference stays valid, and other workers' lookups must
        # not serialize behind this worker's gather/assembly.
        if full_value is not None:
            return ops.getitem(full_value, tag.rows)
        if pieces:
            assembled = self._assemble_encoded(pieces, num_rows)
            if assembled is not None:
                self.put(("enc", model_token, model_fp, device, tag.base,
                          None), assembled, assembled.data.nbytes)
                with self._lock:
                    self.gather_hits += 1
                return assembled
            with self._lock:
                self.misses += 1
        return None

    def encoded_put(self, model_token: int, model_fp: str, tag: CacheTag,
                    device: str, value: Tensor) -> None:
        key = ("enc", model_token, model_fp, device, tag.base, tag.rows_fp)
        self.put(key, value, value.data.nbytes)

    def _slice_pieces(self, model_token: int, model_fp: str, tag: CacheTag,
                      device: str) -> list:
        """Collect micro-batch slice entries for one base column (callers
        hold the lock; values are captured by reference, copied later)."""
        pieces = []
        for key, entry in self._entries.items():
            if (len(key) == 6 and key[0] == "enc" and key[1] == model_token
                    and key[2] == model_fp and key[3] == device
                    and key[4] == tag.base):
                rf = key[5]
                if isinstance(rf, tuple) and len(rf) == 3 and rf[0] is None:
                    pieces.append((rf[1], rf[2], entry.value))
        return pieces

    @staticmethod
    def _assemble_encoded(pieces: list, num_rows: int) -> Optional[Tensor]:
        """Stitch a full-column embedding from contiguous slice entries
        captured during a micro-batched UDF pass (runs outside the lock —
        the concatenation is a large copy)."""
        pieces = sorted(pieces, key=lambda p: (p[0], p[1]))
        cover, chunks = 0, []
        for start, stop, value in pieces:
            if start == cover and stop > start:
                chunks.append(value)
                cover = stop
            elif start < cover:
                continue                      # overlap/duplicate: skip
            else:
                return None                   # gap: cannot assemble
        if cover != num_rows or not chunks:
            return None
        data = np.concatenate([np.asarray(c.data) for c in chunks], axis=0)
        return Tensor(data, device=chunks[0].device)


# ----------------------------------------------------------------------
# UDF-entry slice assembly helpers
# ----------------------------------------------------------------------
def _is_col_part(part) -> bool:
    return isinstance(part, tuple) and len(part) == 3 and part[0] == "col"


def _is_udf_slice_key(key: tuple) -> bool:
    """A UDF-output key whose column arguments are contiguous slices — the
    shape the shard driver produces and full-column assembly consumes."""
    if not (isinstance(key, tuple) and key and isinstance(key[0], tuple)
            and key[0] and key[0][0] == "udf"):
        return False
    return any(
        _is_col_part(part) and isinstance(part[2], tuple)
        and len(part[2]) == 3 and part[2][0] is None
        for part in key[1:]
    )


def _is_full_udf_key(key: tuple) -> bool:
    """True when ``key`` requests a UDF output over *whole* base columns
    (at least one column argument, every column part without a row subset).
    Only those requests can be answered by stitching shard entries."""
    saw_column = False
    for part in key[1:]:
        if _is_col_part(part):
            if part[2] is not None:
                return False
            saw_column = True
    return saw_column


def _assemble_udf_columns(pieces: list, num_rows: int) -> Optional[List[Column]]:
    """Stitch full UDF output columns from contiguous per-shard entries
    (runs outside the lock — the concatenation is a large copy)."""
    pieces = sorted(pieces, key=lambda p: (p[0], p[1]))
    cover = 0
    chunks: List[List[Column]] = []
    for start, stop, value in pieces:
        if start == cover and stop > start:
            chunks.append(value)
            cover = stop
        elif start < cover:
            continue                      # overlap/duplicate: skip
        else:
            return None                   # gap: cannot assemble
    if cover != num_rows or not chunks:
        return None
    width = len(chunks[0])
    if any(len(chunk) != width for chunk in chunks):
        return None
    columns: List[Column] = []
    for idx in range(width):
        cols = [chunk[idx] for chunk in chunks]
        encoded = concat_encoded(cols)
        if encoded is None:
            return None
        columns.append(Column(cols[0].name, encoded))
    return columns


# ----------------------------------------------------------------------
# Encoder memoisation (installed on two-tower models at UDF registration)
# ----------------------------------------------------------------------
def install_encoder_memo(model) -> None:
    """Wrap a model's encoder entry points with active-cache-aware memos.

    ``encode_image`` memoises on the input tensor's content tag;
    ``encode_text`` memoises on the literal text tuple (query strings are
    tiny and recur across statements — SELECT lists repeating one query, the
    vector index's probe encoding, repeated session calls). Both wrappers
    are transparent: they defer to the original method whenever no cache is
    active, gradients are being recorded, or the model is in training mode.
    Installed once per model (idempotent) when a *deterministic* UDF
    carrying the model is registered.
    """
    _install_image_memo(model)
    _install_text_memo(model)


def _install_image_memo(model) -> None:
    current = getattr(model, "encode_image", None)
    if current is None or getattr(current, "__tdp_encoder_orig__", None) is not None:
        return
    orig = current

    def encode_image(images):
        cache = _ACTIVE.get()
        if cache is not None and cache.max_bytes <= 0:
            cache = None
        batcher = _BATCHER.get()
        if ((cache is None and batcher is None) or is_grad_enabled()
                or getattr(model, "training", False)):
            return orig(images)
        tag = getattr(images, "_cache_tag", None)
        if tag is None:
            return orig(images)
        token = identity_token(model)
        fp = cache.model_state_fp(model) if cache is not None else None
        num_rows = images.shape[0] if images.ndim else 1
        device = str(images.device)
        if cache is not None:
            hit = cache.encoded_get(token, fp, tag, num_rows, device)
            if hit is not None:
                return hit
        if batcher is not None:
            # Cross-query path: identical in-flight micro-batches coalesce
            # into one forward pass; the batcher scatters results back
            # through this cache's per-slice keys (and those of the other
            # waiting queries' caches).
            return batcher.encode(model, orig, images, tag, token, fp, cache)
        out = orig(images)
        cache.encoded_put(token, fp, tag, device, out.detach())
        return out

    encode_image.__tdp_encoder_orig__ = orig
    model.encode_image = encode_image


def _install_text_memo(model) -> None:
    current = getattr(model, "encode_text", None)
    if current is None or getattr(current, "__tdp_encoder_orig__", None) is not None:
        return
    orig = current

    def _forward(texts, device):
        # Preserve the wrapped model's call shape: most test/user encoders
        # are ``encode_text(texts)`` with no device parameter, so the kwarg
        # is only forwarded when the caller actually supplied one.
        if device is None:
            return orig(texts)
        return orig(texts, device=device)

    def encode_text(texts, device=None):
        cache = _ACTIVE.get()
        if cache is not None and cache.max_bytes <= 0:
            cache = None
        if (cache is None or is_grad_enabled()
                or getattr(model, "training", False)):
            return _forward(texts, device)
        try:
            text_key = tuple(texts)
        except TypeError:
            return _forward(texts, device)
        token = identity_token(model)
        key = ("text", token, cache.model_state_fp(model), text_key,
               str(device))
        with cache._lock:
            entry = cache._touch(key)
            if entry is not None:
                cache.hits += 1
                return entry.value
            cache.misses += 1
        out = _forward(texts, device)
        cache.put(key, out.detach(), out.detach().data.nbytes)
        return out

    encode_text.__tdp_encoder_orig__ = orig
    model.encode_text = encode_text
