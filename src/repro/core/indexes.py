"""Catalog-managed vector indexes (the §5.1 approximate-indexing subsystem).

The seed carried :class:`~repro.core.index.IVFFlatIndex` as a standalone
data structure that only an ablation benchmark touched. This module makes it
a first-class subsystem: the session owns an :class:`IndexManager` whose
entries are named indexes keyed by ``(table, column)``, created through
``CREATE VECTOR INDEX`` DDL or :meth:`Session.create_vector_index`, consulted
by the optimizer's ``vector_index`` rewrite rule, and probed at run time by
``IndexScanExec``.

Lifecycle: indexes build *lazily*. An entry records which ``Table`` object
its cells were built from; because every ``register_*``/append produces a new
``Table`` object (tables are immutable), an identity check is an exact
per-table staleness test — finer than ``catalog.version``, which bumps when
*any* table changes. A stale entry rebuilds transparently on its next probe.

Embeddings: an entry either carries an explicit ``embedder`` callable
(Python-native path), or binds on first accelerated query to the two-tower
model behind the similarity UDF (anything exposing ``encode_image`` /
``encode_text``, e.g. TinyCLIP). Raw 2-D float columns index as-is.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import CatalogError, ExecutionError
from repro.core.index import IVFFlatIndex
from repro.core.udf import ANN_METRICS
from repro.tcr.autograd import no_grad


def _l2_normalize(vectors: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


def _two_tower_model(udf) -> Optional[object]:
    """Find a CLIP-style two-tower model among a UDF's attached modules."""
    for module in getattr(udf, "modules", []) or []:
        if hasattr(module, "encode_image") and hasattr(module, "encode_text"):
            return module
    return None


class IndexEntry:
    """One named vector index over ``table.column``."""

    def __init__(self, name: str, table: str, column: str, cells: int = 16,
                 nprobe: Optional[int] = None, seed: int = 0,
                 embedder: Optional[Callable] = None):
        # The SQL binder validates DDL options; mirror it here so the
        # Python-native path fails at creation, not at first probe.
        for key, value in (("cells", cells), ("nprobe", nprobe), ("seed", seed)):
            if value is not None and (not isinstance(value, (int, np.integer))
                                      or isinstance(value, bool)):
                raise CatalogError(
                    f"index {name!r}: {key} must be an integer, got {value!r}"
                )
        if cells < 1:
            raise CatalogError(f"index {name!r}: cells must be >= 1, got {cells}")
        self.name = name
        self.table = table
        self.column = column
        self.cells = int(cells)
        self.nprobe = int(nprobe) if nprobe is not None else max(1, cells // 4)
        if self.nprobe < 1:
            raise CatalogError(f"index {name!r}: nprobe must be >= 1")
        self.seed = int(seed)
        self.embedder = embedder
        # Serialises lazy (re)builds: concurrent probes of an unbuilt/stale
        # entry build exactly once; the losers of the race reuse the winner's
        # cells (IndexManager.ensure_built double-checks under this lock).
        self._build_lock = threading.RLock()
        # Build state (populated lazily by IndexManager.ensure_built).
        self.index: Optional[IVFFlatIndex] = None
        self.built_table = None          # the Table object the cells came from
        self.model = None                # two-tower model bound on first query
        self.metric: Optional[str] = None  # bound ann metric (first-wins)
        self.udf_name: Optional[str] = None
        self.build_count = 0

    @property
    def is_built(self) -> bool:
        return self.index is not None

    def __repr__(self) -> str:
        return (f"IndexEntry({self.name!r}, on={self.table}.{self.column}, "
                f"cells={self.cells}, nprobe={self.nprobe}, built={self.is_built})")


class IndexManager:
    """Session-scoped registry of vector indexes, keyed case-insensitively.

    ``epoch`` is a monotonic change counter mirroring ``Catalog.version``:
    the plan cache keys on it, so ``CREATE``/``DROP INDEX`` invalidates every
    plan compiled before it (an index changes which physical plan is best).
    """

    def __init__(self, catalog, tensor_cache=None):
        self.catalog = catalog
        self.tensor_cache = tensor_cache  # the session's TensorCache (or None)
        self._entries: Dict[str, IndexEntry] = {}
        # Guards the registry maps and the epoch counter. Lock ordering:
        # manager/entry-build locks may acquire the catalog lock (table
        # resolution) and the tensor-cache lock (embedding reuse), never the
        # reverse.
        self._lock = threading.RLock()
        self.epoch = 0
        # Lifetime counters for Session.metrics (guarded by _lock).
        self.builds = 0
        self.probes = 0

    # ------------------------------------------------------------------
    # DDL surface
    # ------------------------------------------------------------------
    def create(self, name: str, table: str, column: str, cells: int = 16,
               nprobe: Optional[int] = None, seed: int = 0,
               embedder: Optional[Callable] = None,
               replace: bool = False) -> IndexEntry:
        key = name.lower()
        target = self.catalog.get(table)       # raises on unknown table
        if not target.has_column(column):
            raise CatalogError(
                f"table {table!r} has no column {column!r}; "
                f"columns: {target.column_names}"
            )
        entry = IndexEntry(name, table, column, cells=cells, nprobe=nprobe,
                           seed=seed, embedder=embedder)
        with self._lock:
            if not replace and key in self._entries:
                raise CatalogError(f"index {name!r} already exists")
            self._entries[key] = entry
            self.epoch += 1
        return entry

    def drop(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._entries:
                if if_exists:
                    return False
                raise CatalogError(f"cannot drop unknown index {name!r}")
            del self._entries[key]
            self.epoch += 1
            return True

    def lookup(self, name: str) -> Optional[IndexEntry]:
        with self._lock:
            return self._entries.get(name.lower())

    def find(self, table: str, column: str) -> Optional[IndexEntry]:
        """The index on ``(table, column)``, if any (first match wins)."""
        with self._lock:
            for entry in self._entries.values():
                if entry.table.lower() == table.lower() \
                        and entry.column.lower() == column.lower():
                    return entry
            return None

    def entries(self) -> List[IndexEntry]:
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            if self._entries:
                self._entries.clear()
                self.epoch += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._entries

    def stats(self) -> dict:
        """Unified stats dict (docs/OBSERVABILITY.md): size is registered
        indexes, builds/probes are lifetime counts across all entries."""
        with self._lock:
            return {"size": len(self._entries), "epoch": self.epoch,
                    "builds": self.builds, "probes": self.probes}

    def record_probe(self) -> None:
        with self._lock:
            self.probes += 1

    # ------------------------------------------------------------------
    # Build / probe
    # ------------------------------------------------------------------
    def supports(self, entry: IndexEntry, udf) -> bool:
        """Can this entry accelerate queries scored by ``udf``?

        Three gates: the UDF must *declare* an ANN contract (scores monotone
        in inner product / cosine — undeclared functions may invert or
        threshold their model's scores, so acceleration would reorder
        results); a two-tower model must be attached; and the entry must be
        unbound or bound to that same model (an index built in one embedding
        space cannot answer queries embedded in another — such queries fall
        back to the exact plan rather than thrash-rebuilding). Entries with
        an explicit ``embedder`` serve the Python-native ``search()`` path
        only: their corpus space is unknown to SQL text queries.
        """
        if entry.embedder is not None:
            return False
        metric = getattr(udf, "ann_metric", None)
        if metric not in ANN_METRICS:
            return False
        if entry.metric is not None and entry.metric != metric:
            return False
        model = _two_tower_model(udf)
        if model is None:
            return False
        return entry.model is None or entry.model is model

    def status(self, entry: IndexEntry) -> str:
        if not entry.is_built:
            return "unbuilt"
        try:
            current = self.catalog.get(entry.table)
        except CatalogError:
            return "orphaned"
        return "ready" if current is entry.built_table else "stale"

    def ensure_built(self, entry: IndexEntry, udf=None,
                     use_tensor_cache: bool = True) -> IVFFlatIndex:
        """Return a fresh index for the entry, (re)building if needed.

        Model binding is first-wins: the first similarity UDF to probe the
        entry fixes its embedding space. A later UDF with a *different*
        model raises (callers fall back to the exact plan) instead of
        rebuilding the corpus on every alternating query.

        Builds are **once-only under race**: the whole check-and-build runs
        under the entry's build lock, so N concurrent probes of an unbuilt
        (or stale) entry embed the corpus exactly once and the other N-1
        probes block briefly and reuse the winner's cells.
        """
        with entry._build_lock:
            current = self.catalog.get(entry.table)
            model = None
            metric = None
            if udf is not None and entry.embedder is None:
                model = _two_tower_model(udf)
                metric = getattr(udf, "ann_metric", None)
                if model is not None and entry.model is not None \
                        and model is not entry.model:
                    raise ExecutionError(
                        f"index {entry.name!r} is bound to a different embedding "
                        f"model than UDF {getattr(udf, 'name', '?')!r}"
                    )
                if metric is not None and entry.metric is not None \
                        and metric != entry.metric:
                    raise ExecutionError(
                        f"index {entry.name!r} is bound to metric "
                        f"{entry.metric!r}, not {metric!r}"
                    )
            if entry.index is not None and entry.built_table is current:
                return entry.index
            if model is not None and entry.model is None:
                entry.model = model
                entry.metric = metric
                entry.udf_name = getattr(udf, "name", None)
            column = current.column(entry.column)
            vectors = self._embed_corpus(entry, column, model,
                                         use_tensor_cache=use_tensor_cache)
            if entry.metric == "cosine":
                # IVF cells score by raw inner product; normalising corpus and
                # query vectors makes that ranking equal cosine ranking.
                vectors = _l2_normalize(vectors)
            index = IVFFlatIndex(num_cells=entry.cells, seed=entry.seed).build(vectors)
            # Publish fully-built state only (readers of entry.index outside
            # the lock must never observe cells for a half-updated entry).
            entry.built_table = current
            entry.build_count += 1
            entry.index = index
            with self._lock:
                # Safe ordering: manager lock nests inside entry build locks
                # (nothing takes a build lock while holding the manager lock).
                self.builds += 1
            return index

    def _embed_corpus(self, entry: IndexEntry, column, model,
                      use_tensor_cache: bool = True) -> np.ndarray:
        if entry.embedder is not None:
            vectors = entry.embedder(column.tensor)
            vectors = vectors.detach().data if hasattr(vectors, "detach") else vectors
            return np.asarray(vectors, dtype=np.float32)
        model = model or entry.model
        if model is not None:
            cached = (self._cached_model_embeddings(column, model)
                      if use_tensor_cache else None)
            if cached is not None:
                return cached
            with no_grad():
                return model.encode_image(column.tensor).detach().data
        data = column.tensor.detach().data
        if data.ndim == 2 and data.dtype.kind == "f":
            return data                     # raw embedding column
        raise ExecutionError(
            f"index {entry.name!r} has no embedder for column "
            f"{entry.table}.{entry.column}: pass embedder= at creation or "
            f"query it through a two-tower similarity UDF first"
        )

    def _cached_model_embeddings(self, column, model) -> Optional[np.ndarray]:
        """Read/populate the session materialization cache for a corpus encode.

        Query-time similarity UDFs and index builds meet here: a build after
        an (accelerable) query reuses the embeddings the query's encoder memo
        captured — assembled from micro-batch slices if need be — and a query
        after a build reuses the build's full-corpus entry. Models left in
        training mode never share (their outputs may be stochastic).
        """
        from repro.core import tensor_cache as tc
        cache = self.tensor_cache
        if cache is None or cache.max_bytes <= 0 or getattr(model, "training", False):
            return None
        tag = tc.column_tag(column)
        if tag is None:
            return None
        token = tc.identity_token(model)
        if token is None:
            return None
        fp = cache.model_state_fp(model)
        device = str(column.tensor.device)
        hit = cache.encoded_get(token, fp, tag, column.num_rows, device)
        if hit is None:
            orig = getattr(model.encode_image, "__tdp_encoder_orig__", None)
            encode = orig if orig is not None else model.encode_image
            with no_grad():
                hit = encode(column.tensor).detach()
            cache.encoded_put(token, fp, tag, device, hit)
        return np.asarray(hit.data)

    def embed_query(self, entry: IndexEntry, text: str) -> np.ndarray:
        """Embed a text query with the model the corpus was embedded by."""
        if entry.model is None:
            raise ExecutionError(
                f"index {entry.name!r} is not bound to a text encoder"
            )
        with no_grad():
            query = entry.model.encode_text([text]).detach().data.reshape(-1)
        if entry.metric == "cosine":
            query = _l2_normalize(query)
        return query

    def search(self, name: str, query, k: int = 10,
               nprobe: Optional[int] = None):
        """Python-native probe: ``query`` is a vector or (if bound) a string."""
        entry = self.lookup(name)
        if entry is None:
            raise CatalogError(f"unknown index {name!r}")
        index = self.ensure_built(entry)
        if isinstance(query, str):
            query = self.embed_query(entry, query)
        return index.search(query, k, nprobe=nprobe or entry.nprobe)
