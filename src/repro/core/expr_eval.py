"""Interpret bound expressions against tables as tensor programs.

Each bound node lowers to TCR ops, so float arithmetic stays differentiable
(gradients flow through projected expressions into UDF parameters), while
string predicates exploit the order-preserving dictionary encoding to run on
integer codes without decoding.
"""

from __future__ import annotations

import dataclasses
import functools
import re
from typing import List, Optional, Union

import numpy as np

from repro.core import tensor_cache as tc
from repro.core.kernels import dates as date_kernels
from repro.core.telemetry import count as tel_count
from repro.core.kernels import strings as string_kernels
from repro.errors import ExecutionError
from repro.sql import bound as b
from repro.storage import types as dt
from repro.storage.column import Column
from repro.storage.encodings import (
    CharCodeEncoding,
    DatetimeEncoding,
    DictionaryEncoding,
    EncodedTensor,
    PlainEncoding,
)
from repro.storage.table import Table
from repro.tcr import ops
from repro.tcr.tensor import Tensor


@dataclasses.dataclass
class Scalar:
    """A constant produced during evaluation (broadcasts against columns)."""
    value: object


Value = Union[Column, Scalar]

_NUMERIC_OPS = {
    "+": ops.add,
    "-": ops.sub,
    "*": ops.mul,
    "/": ops.div,
    "%": ops.remainder,
}
_COMPARE_OPS = {
    "=": ops.eq,
    "!=": ops.ne,
    "<": ops.lt,
    "<=": ops.le,
    ">": ops.gt,
    ">=": ops.ge,
}


class ExpressionEvaluator:
    """Evaluates bound expressions against one input table.

    A per-pass structural-hash memo gives common-subexpression elimination:
    fused SELECT/WHERE/ORDER BY lists sharing one evaluator compute each
    deterministic subtree (especially UDF calls) exactly once.
    """

    def __init__(self, table: Table):
        self.table = table
        self.num_rows = table.num_rows
        self.device = table.device
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, expr: b.BoundExpr) -> Value:
        key = _structural_key(expr)
        if key is not None:
            cached = self._memo.get(key)
            if cached is not None:
                return cached
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        value = method(expr)
        if key is not None:
            self._memo[key] = value
        return value

    def evaluate_column(self, expr: b.BoundExpr, name: str = "") -> Column:
        value = self.evaluate(expr)
        return self.materialize(value, name)

    def evaluate_mask(self, expr: b.BoundExpr) -> np.ndarray:
        """Evaluate a predicate to a boolean numpy mask."""
        value = self.evaluate(expr)
        if isinstance(value, Scalar):
            return np.full(self.num_rows, bool(value.value))
        data = value.tensor.detach().data
        if data.dtype.kind != "b":
            raise ExecutionError(f"predicate evaluated to {data.dtype}, expected bool")
        return data

    def materialize(self, value: Value, name: str = "") -> Column:
        if isinstance(value, Column):
            return value.rename(name) if name else value
        constant = value.value
        if isinstance(constant, str):
            return Column.from_values(name, np.array([constant] * self.num_rows, dtype=object),
                                      device=self.device)
        if isinstance(constant, bool):
            array = np.full(self.num_rows, constant, dtype=bool)
        elif isinstance(constant, int):
            array = np.full(self.num_rows, constant, dtype=np.int64)
        elif constant is None:
            array = np.full(self.num_rows, np.nan, dtype=np.float32)
        else:
            array = np.full(self.num_rows, float(constant), dtype=np.float32)
        return Column(name, EncodedTensor(Tensor(array, device=self.device), PlainEncoding()))

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _eval_BColumn(self, expr: b.BColumn) -> Value:
        columns = self.table.columns
        if expr.index >= len(columns):
            raise ExecutionError(
                f"column index {expr.index} out of range for table with "
                f"{len(columns)} columns"
            )
        return normalize_strings(columns[expr.index])

    def _eval_BLiteral(self, expr: b.BLiteral) -> Value:
        return Scalar(expr.value)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _eval_BBinary(self, expr: b.BBinary) -> Value:
        left = self.evaluate(expr.left)
        right = self.evaluate(expr.right)
        op = expr.op

        if isinstance(left, Scalar) and isinstance(right, Scalar):
            return self._fold_scalars(op, left, right)

        if op in ("AND", "OR"):
            lt_ = self._bool_tensor(left)
            rt_ = self._bool_tensor(right)
            fn = ops.logical_and if op == "AND" else ops.logical_or
            return self._plain(fn(lt_, rt_))

        if op in _COMPARE_OPS:
            return self._compare(op, left, right)

        # Arithmetic: tensors with broadcasting (differentiable).
        lt_ = self._numeric_tensor(left)
        rt_ = self._numeric_tensor(right)
        return self._plain(_NUMERIC_OPS[op](lt_, rt_))

    def _eval_BUnary(self, expr: b.BUnary) -> Value:
        operand = self.evaluate(expr.operand)
        if expr.op == "NOT":
            if isinstance(operand, Scalar):
                return Scalar(not bool(operand.value))
            return self._plain(ops.logical_not(self._bool_tensor(operand)))
        if isinstance(operand, Scalar):
            return Scalar(-operand.value)
        return self._plain(ops.neg(self._numeric_tensor(operand)))

    def _eval_BCall(self, expr: b.BCall) -> Value:
        udf = expr.udf
        values = [self.evaluate(arg) for arg in expr.args]
        args = []
        for value in values:
            if isinstance(value, Scalar):
                args.append(value.value)
            elif udf.encoded_io or not isinstance(value.encoding, PlainEncoding):
                args.append(value.encoded)
            else:
                args.append(value.tensor)

        # Materialization cache: deterministic UDFs outside grad recording
        # consult the session cache. A full hit skips inference entirely; a
        # subset (post-filter) evaluation gathers from a cached full-column
        # entry; a miss computes and inserts. When a scheduler inference
        # batcher is active, arguments are tagged even with the cache off so
        # concurrent queries' encoder micro-batches can coalesce in flight.
        cache = tc.active()
        eligible = (getattr(udf, "deterministic", True)
                    and not _udf_needs_grad(udf)
                    # Modules left in train() mode may be stochastic
                    # (dropout): never cache their outputs.
                    and not any(getattr(m, "training", False)
                                for m in udf.modules))
        use_cache = cache is not None and eligible
        want_tags = use_cache or (eligible and tc.active_batcher() is not None)
        key = None
        tags = ()
        if want_tags:
            key, full_key, rows, tags = _bcall_cache_plan(udf, values, args,
                                                          self, cache)
            if use_cache and key is not None:
                cached = cache.udf_get(key, full_key, rows,
                                       num_rows=self.num_rows)
                if cached is not None:
                    # Attribute the hit to the requesting query's open
                    # operator span (no-op when untraced).
                    tel_count(tensor_cache_hits=1)
                    return cached[0]
                tel_count(tensor_cache_misses=1)
            if tags:
                # Tag the argument tensors so encoder memos inside the UDF
                # (model.encode_image) can capture/reuse embeddings. Tags
                # are removed after the invocation: they must never leak
                # into a later call that did not opt into caching (e.g. a
                # deterministic=False UDF sharing the same model).
                for tensor, tag in tags:
                    tc.tag_tensor(tensor, tag)

        try:
            columns = _invoke_batched(udf, args, self.num_rows, self.device)
        finally:
            for tensor, _ in tags:
                tc.untag_tensor(tensor)
        column = columns[0]
        if column.num_rows != self.num_rows:
            raise ExecutionError(
                f"UDF {udf.name!r} returned {column.num_rows} rows for "
                f"{self.num_rows} input rows"
            )
        if use_cache and key is not None:
            cache.udf_put(key, columns)
        return column

    def _eval_BBuiltin(self, expr: b.BBuiltin) -> Value:
        name = expr.name
        values = [self.evaluate(a) for a in expr.args]
        if name in ("UPPER", "LOWER", "LENGTH", "TRIM"):
            return self._string_builtin(name, values[0])
        if name in ("SUBSTR", "SUBSTRING"):
            return self._substr(values)
        if name == "COALESCE":
            result = self._numeric_tensor(values[0])
            for value in values[1:]:
                if result.dtype.kind != "f":
                    break   # non-float carries no NULLs; later args unreachable
                mask = Tensor(np.isnan(result.detach().data), device=self.device)
                result = ops.where(mask, self._numeric_tensor(value), result)
            return self._plain(result)
        tensors = [self._numeric_tensor(v) for v in values]
        if name == "ABS":
            return self._plain(ops.abs(tensors[0]))
        if name == "SQRT":
            return self._plain(ops.sqrt(self._to_float(tensors[0])))
        if name == "EXP":
            return self._plain(ops.exp(self._to_float(tensors[0])))
        if name in ("LN", "LOG"):
            return self._plain(ops.log(self._to_float(tensors[0])))
        if name in ("POW", "POWER"):
            return self._plain(ops.pow(self._to_float(tensors[0]), tensors[1]))
        if name == "ROUND":
            if len(tensors) == 2:
                digits_data = tensors[1].data.reshape(-1)
                # Zero-row inputs materialize an empty digits column; any
                # factor yields the same empty output.
                digits = float(digits_data[0]) if digits_data.size else 0.0
                factor = 10.0 ** digits
                return self._plain(ops.div(ops.round(ops.mul(tensors[0], factor)), factor))
            return self._plain(ops.round(tensors[0]))
        if name == "FLOOR":
            return self._plain(ops.floor(tensors[0]))
        if name == "CEIL":
            return self._plain(ops.ceil(tensors[0]))
        if name == "LEAST":
            result = tensors[0]
            for t in tensors[1:]:
                result = ops.minimum(result, t)
            return self._plain(result)
        if name == "GREATEST":
            result = tensors[0]
            for t in tensors[1:]:
                result = ops.maximum(result, t)
            return self._plain(result)
        if name == "SIGMOID":
            return self._plain(ops.sigmoid(self._to_float(tensors[0])))
        raise ExecutionError(f"unknown builtin {name}")

    def _eval_BBetween(self, expr: b.BBetween) -> Value:
        operand = self.evaluate(expr.operand)
        low = self.evaluate(expr.low)
        high = self.evaluate(expr.high)
        low_ok = self._compare(">=", operand, low)
        high_ok = self._compare("<=", operand, high)
        combined = ops.logical_and(self._bool_tensor(low_ok), self._bool_tensor(high_ok))
        if expr.negated:
            combined = ops.logical_not(combined)
        return self._plain(combined)

    def _eval_BIn(self, expr: b.BIn) -> Value:
        operand = self.evaluate(expr.operand)
        if isinstance(operand, Scalar):
            result = operand.value in expr.values
            return Scalar(result != expr.negated)
        column = operand
        if isinstance(column.encoding, DictionaryEncoding):
            codes = [column.encoding.code_for(str(v)) for v in expr.values]
            codes = [c for c in codes if c is not None]
            mask = np.isin(column.tensor.detach().data, np.asarray(codes, dtype=np.int64))
        else:
            mask = np.isin(column.tensor.detach().data, np.asarray(expr.values))
        if expr.negated:
            mask = ~mask
        return self._plain(Tensor(mask, device=self.device))

    def _eval_BLike(self, expr: b.BLike) -> Value:
        column = self.evaluate(expr.operand)
        if isinstance(column, Scalar):
            matched = _like_to_regex(expr.pattern).fullmatch(str(column.value)) is not None
            return Scalar(matched != expr.negated)
        if not isinstance(column.encoding, DictionaryEncoding):
            raise ExecutionError("LIKE requires a string (dictionary-encoded) column")
        # Prefix patterns stay a code-range check; everything else runs the
        # char-code matrix NFA over the dictionary (shared with compiled
        # kernels, so the two paths are bit-identical by construction).
        mask = string_kernels.like_mask(column.encoding,
                                        column.tensor.detach().data,
                                        expr.pattern)
        if expr.negated:
            mask = ~mask
        return self._plain(Tensor(mask, device=self.device))

    def _eval_BIsNull(self, expr: b.BIsNull) -> Value:
        operand = self.evaluate(expr.operand)
        if isinstance(operand, Scalar):
            is_null = operand.value is None
            return Scalar(is_null != expr.negated)
        data = operand.tensor.detach().data
        if data.dtype.kind == "f":
            mask = np.isnan(data)
            if data.ndim > 1:
                mask = mask.reshape(data.shape[0], -1).any(axis=1)
        else:
            mask = np.zeros(operand.num_rows, dtype=bool)
        if expr.negated:
            mask = ~mask
        return self._plain(Tensor(mask, device=self.device))

    def _eval_BCase(self, expr: b.BCase) -> Value:
        result: Optional[Tensor] = None
        taken = None
        for cond, value in expr.whens:
            mask = Tensor(self.evaluate_mask(cond), device=self.device)
            branch = self._numeric_tensor(self.evaluate(value))
            if result is None:
                result = ops.where(mask, branch, ops.mul(branch, 0.0))
                taken = mask
            else:
                fresh = ops.logical_and(mask, ops.logical_not(taken))
                result = ops.where(fresh, branch, result)
                taken = ops.logical_or(taken, mask)
        if expr.else_ is not None:
            else_tensor = self._numeric_tensor(self.evaluate(expr.else_))
            result = ops.where(taken, result, else_tensor)
        return self._plain(result)

    def _eval_BCast(self, expr: b.BCast) -> Value:
        operand = self.evaluate(expr.operand)
        target = expr.data_type
        if isinstance(operand, Scalar):
            return Scalar(_cast_scalar(operand.value, target))
        if target.kind == "string":
            decoded = operand.decode()
            strings = np.asarray([str(v) for v in decoded], dtype=object)
            return Column.from_values("", strings, device=self.device)
        np_dtype = {"int": np.int64, "float": np.float32, "bool": np.bool_}[target.kind]
        if isinstance(operand.encoding, DictionaryEncoding):
            decoded = operand.decode()
            array = decoded.astype(np.float64).astype(np_dtype)
            return self._plain(Tensor(array, device=self.device))
        return self._plain(ops.astype(operand.tensor, np_dtype))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _plain(self, tensor: Tensor) -> Column:
        return Column("", EncodedTensor(tensor, PlainEncoding()))

    def _bool_tensor(self, value: Value) -> Tensor:
        if isinstance(value, Scalar):
            return Tensor(np.full(self.num_rows, bool(value.value)), device=self.device)
        data = value.tensor
        if data.dtype.kind != "b":
            raise ExecutionError(f"expected boolean operand, got {data.dtype}")
        return data

    def _numeric_tensor(self, value: Value) -> Tensor:
        if isinstance(value, Scalar):
            v = value.value
            if isinstance(v, bool):
                array = np.full(self.num_rows, v)
            elif isinstance(v, int):
                array = np.full(self.num_rows, v, dtype=np.int64)
            elif v is None:
                array = np.full(self.num_rows, np.nan, dtype=np.float32)
            else:
                array = np.full(self.num_rows, float(v), dtype=np.float32)
            return Tensor(array, device=self.device)
        if isinstance(value.encoding, DictionaryEncoding):
            raise ExecutionError("arithmetic on string columns is not supported")
        return value.tensor

    @staticmethod
    def _to_float(tensor: Tensor) -> Tensor:
        if tensor.dtype.kind != "f":
            return ops.astype(tensor, np.float32)
        return tensor

    def _fold_scalars(self, op: str, left: Scalar, right: Scalar) -> Scalar:
        return Scalar(fold_scalars(op, left.value, right.value))

    def _compare(self, op: str, left: Value, right: Value) -> Column:
        # Dictionary fast paths: run the comparison on integer codes.
        if isinstance(left, Column) and isinstance(left.encoding, DictionaryEncoding):
            if isinstance(right, Scalar) and isinstance(right.value, str):
                return self._compare_dict_literal(op, left, right.value)
            if isinstance(right, Column) and isinstance(right.encoding, DictionaryEncoding):
                return self._compare_dict_columns(op, left, right)
        if isinstance(right, Column) and isinstance(right.encoding, DictionaryEncoding) \
                and isinstance(left, Scalar) and isinstance(left.value, str):
            flipped = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
            return self._compare_dict_literal(flipped[op], right, left.value)
        # Datetime fast paths: parse the ISO literal once, compare epoch nanos.
        if isinstance(left, Column) and isinstance(left.encoding, DatetimeEncoding) \
                and isinstance(right, Scalar) and isinstance(right.value, str):
            mask = date_kernels.compare_datetime_literal(
                left.tensor.detach().data, op, right.value)
            return self._plain(Tensor(mask, device=self.device))
        if isinstance(right, Column) and isinstance(right.encoding, DatetimeEncoding) \
                and isinstance(left, Scalar) and isinstance(left.value, str):
            flipped = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
            mask = date_kernels.compare_datetime_literal(
                right.tensor.detach().data, flipped[op], left.value)
            return self._plain(Tensor(mask, device=self.device))
        lt_ = self._numeric_tensor(left)
        rt_ = self._numeric_tensor(right)
        return self._plain(_COMPARE_OPS[op](lt_, rt_))

    def _compare_dict_literal(self, op: str, column: Column, literal: str) -> Column:
        encoding: DictionaryEncoding = column.encoding
        codes = column.tensor.detach().data
        if op in ("=", "!="):
            code = encoding.code_for(literal)
            if code is None:
                mask = np.zeros(column.num_rows, dtype=bool)
            else:
                mask = codes == code
            if op == "!=":
                mask = ~mask
        else:
            boundary = encoding.range_for(literal, side="left" if op in ("<", ">=") else "right")
            if op == "<":
                mask = codes < boundary
            elif op == ">=":
                mask = codes >= boundary
            elif op == "<=":
                mask = codes < boundary
            else:  # >
                mask = codes >= boundary
        return self._plain(Tensor(mask, device=self.device))

    def _compare_dict_columns(self, op: str, left: Column, right: Column) -> Column:
        if left.encoding == right.encoding:
            return self._plain(_COMPARE_OPS[op](left.tensor, right.tensor))
        left_strings = left.decode().astype(str)
        right_strings = right.decode().astype(str)
        np_op = {"=": np.equal, "!=": np.not_equal, "<": np.less, "<=": np.less_equal,
                 ">": np.greater, ">=": np.greater_equal}[op]
        return self._plain(Tensor(np_op(left_strings, right_strings), device=self.device))

    def _string_builtin(self, name: str, value: Value) -> Value:
        if isinstance(value, Scalar):
            text = str(value.value)
            if name == "UPPER":
                return Scalar(text.upper())
            if name == "LOWER":
                return Scalar(text.lower())
            if name == "TRIM":
                return Scalar(text.strip())
            return Scalar(len(text))
        strings = value.decode().astype(str)
        if name == "UPPER":
            return Column.from_values("", np.char.upper(strings).astype(object),
                                      device=self.device)
        if name == "LOWER":
            return Column.from_values("", np.char.lower(strings).astype(object),
                                      device=self.device)
        if name == "TRIM":
            # str.strip per row: the compiled kernel applies the same python
            # function per distinct dictionary string, so both legs agree.
            trimmed = np.asarray([t.strip() for t in strings], dtype=object)
            return Column.from_values("", trimmed, device=self.device)
        lengths = np.char.str_len(strings).astype(np.int64)
        return self._plain(Tensor(lengths, device=self.device))

    def _substr(self, values: List[Value]) -> Value:
        start = values[1]
        length = values[2] if len(values) > 2 else None
        if not isinstance(start, Scalar) \
                or not (length is None or isinstance(length, Scalar)):
            raise ExecutionError("SUBSTR start/length must be constant expressions")
        begin = int(start.value)
        count = None if length is None else int(length.value)
        value = values[0]
        if isinstance(value, Scalar):
            return Scalar(string_kernels.substr_value(str(value.value), begin, count))
        strings = value.decode().astype(str)
        out = np.asarray(
            [string_kernels.substr_value(t, begin, count) for t in strings],
            dtype=object)
        return Column.from_values("", out, device=self.device)


def normalize_strings(column: Column) -> Column:
    """Normalise char-code string columns to dictionary form on first touch.

    Every string kernel (LIKE, UPPER/LOWER, code compares) runs on sorted
    dictionaries; the round-trip is lossless, and the per-pass evaluator
    memo makes the conversion happen at most once per operator pass.
    """
    if isinstance(column.encoding, CharCodeEncoding):
        return column.to_dictionary()
    return column


def fold_scalars(op: str, lv, rv):
    """Constant-fold one binary op over python scalar values (shared by the
    interpreter and the expression compiler so folding cannot drift)."""
    table = {
        "+": lambda: lv + rv, "-": lambda: lv - rv, "*": lambda: lv * rv,
        "/": lambda: lv / rv, "%": lambda: lv % rv,
        "=": lambda: lv == rv, "!=": lambda: lv != rv,
        "<": lambda: lv < rv, "<=": lambda: lv <= rv,
        ">": lambda: lv > rv, ">=": lambda: lv >= rv,
        "AND": lambda: bool(lv) and bool(rv), "OR": lambda: bool(lv) or bool(rv),
    }
    return table[op]()


def _cast_scalar(value, target: dt.DataType):
    if target.kind == "int":
        return int(value)
    if target.kind == "float":
        return float(value)
    if target.kind == "bool":
        return bool(value)
    return str(value)


@functools.lru_cache(maxsize=256)
def _like_to_regex(pattern: str) -> "re.Pattern":
    # DOTALL: SQL's % and _ match any character including newlines (the
    # char-code LIKE kernel has no newline special case; the regex path —
    # scalar operands and the tests' oracle — must agree).
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), re.DOTALL)


# ----------------------------------------------------------------------
# CSE structural keys
# ----------------------------------------------------------------------
def _structural_key(expr: b.BoundExpr) -> Optional[tuple]:
    """Hashable structural identity of a bound expression, or None when the
    subtree must not be shared (non-deterministic UDF, unhashable literal)."""
    t = type(expr)
    if t is b.BColumn:
        return ("c", expr.index)
    if t is b.BLiteral:
        v = expr.value
        if isinstance(v, (str, int, float, bool, type(None))):
            return ("l", type(v).__name__, v)
        return None
    if t is b.BBinary:
        left = _structural_key(expr.left)
        right = _structural_key(expr.right)
        if left is None or right is None:
            return None
        return ("b", expr.op, left, right)
    if t is b.BUnary:
        operand = _structural_key(expr.operand)
        return None if operand is None else ("n", expr.op, operand)
    if t is b.BCall:
        if not getattr(expr.udf, "deterministic", True):
            return None
        parts = tuple(_structural_key(a) for a in expr.args)
        if any(p is None for p in parts):
            return None
        return ("u", expr.udf.name.lower(), getattr(expr.udf, "version", 0), parts)
    if t is b.BBuiltin:
        parts = tuple(_structural_key(a) for a in expr.args)
        if any(p is None for p in parts):
            return None
        return ("f", expr.name, parts)
    if t is b.BBetween:
        keys = tuple(_structural_key(e) for e in (expr.operand, expr.low, expr.high))
        if any(k is None for k in keys):
            return None
        return ("btw", expr.negated, keys)
    if t is b.BIn:
        operand = _structural_key(expr.operand)
        if operand is None:
            return None
        try:
            values = tuple(expr.values)
            hash(values)
        except TypeError:
            return None
        return ("in", operand, values, expr.negated)
    if t is b.BLike:
        operand = _structural_key(expr.operand)
        return None if operand is None else ("like", operand, expr.pattern, expr.negated)
    if t is b.BIsNull:
        operand = _structural_key(expr.operand)
        return None if operand is None else ("null", operand, expr.negated)
    if t is b.BCase:
        parts = []
        for cond, value in expr.whens:
            ck, vk = _structural_key(cond), _structural_key(value)
            if ck is None or vk is None:
                return None
            parts.append((ck, vk))
        else_key = None
        if expr.else_ is not None:
            else_key = _structural_key(expr.else_)
            if else_key is None:
                return None
        return ("case", tuple(parts), else_key)
    if t is b.BCast:
        operand = _structural_key(expr.operand)
        return None if operand is None else ("cast", operand, repr(expr.data_type))
    return None


# ----------------------------------------------------------------------
# Materialization-cache keying for UDF calls
# ----------------------------------------------------------------------
def _udf_needs_grad(udf) -> bool:
    from repro.tcr.autograd import is_grad_enabled
    return is_grad_enabled() and any(p.requires_grad for p in udf.parameters())


def _bcall_cache_plan(udf, values, args, evaluator, cache):
    """Build cache keys for one UDF call.

    Returns ``(key, full_key, rows, tags)``: the exact entry key; the
    full-column key usable for a row gather (when every column argument is
    the same row subset of its base column); the subset row indices; and
    ``(tensor, tag)`` pairs to attach before invoking the UDF. ``key`` is
    None when an argument has no stable content identity. ``cache`` may be
    None (batcher-only tagging): tags are still computed, keys are not
    usable for insertion but content identity is what in-flight encoder
    dedup runs on.
    """
    state_fp = cache.udf_state_fp(udf) if cache is not None else "nocache"
    head = ("udf", udf.name.lower(), getattr(udf, "version", 0), state_fp,
            str(evaluator.device))
    parts, full_parts, tags = [head], [head], []
    rows = None
    rows_fps = set()
    any_column = False
    for value, arg in zip(values, args):
        if isinstance(value, Scalar):
            v = value.value
            try:
                hash(v)
            except TypeError:
                return None, None, None, ()
            parts.append(("s", v))
            full_parts.append(("s", v))
            continue
        tag = tc.column_tag(value)
        if tag is None:
            return None, None, None, ()
        any_column = True
        rows_fps.add(tag.rows_fp)
        if tag.rows_fp is not None:
            rows = tag.rows
        parts.append(("col", tag.base, tag.rows_fp))
        full_parts.append(("col", tag.base, None))
        tensor = arg.tensor if isinstance(arg, EncodedTensor) else arg
        tags.append((tensor, tag))
    if not any_column:
        # Pure scalar broadcast: the output length is the only data identity.
        parts.append(("nrows", evaluator.num_rows))
    key = tuple(parts)
    subset = (any_column and rows is not None and len(rows_fps) == 1)
    full_key = tuple(full_parts) if subset else None
    return key, full_key, (rows if subset else None), tags


def _invoke_batched(udf, args: List[object], num_rows: int, device) -> List[Column]:
    """Invoke a UDF, micro-batching row arguments per the device profile.

    This is where the simulated device asymmetry becomes measurable: the CPU
    profile dispatches many small kernels (one per micro-batch) while the
    accelerator profile amortises Python/kernel overhead over large batches —
    the mechanism behind the paper's Fig 2 CPU/GPU gap.
    """
    from repro.tcr.autograd import is_grad_enabled

    batch_rows = device.profile.exec_batch_rows
    needs_grad = is_grad_enabled() and any(
        p.requires_grad for p in udf.parameters()
    )
    if num_rows <= batch_rows or needs_grad:
        return _rehome(udf.invoke(args), device)

    batched_results: List[List[Column]] = []
    for start in range(0, num_rows, batch_rows):
        stop = min(start + batch_rows, num_rows)
        chunk_args = []
        for arg in args:
            if isinstance(arg, Tensor) and arg.ndim >= 1 and arg.shape[0] == num_rows:
                chunk = arg[start:stop]
                _tag_slice(arg, chunk, start, stop)
                chunk_args.append(chunk)
            elif isinstance(arg, EncodedTensor) and arg.num_rows == num_rows:
                chunk = arg.tensor[start:stop]
                _tag_slice(arg.tensor, chunk, start, stop)
                chunk_args.append(EncodedTensor(chunk, arg.encoding))
            else:
                chunk_args.append(arg)
        batched_results.append(udf.invoke(chunk_args))

    stitched: List[Column] = []
    for col_idx in range(len(udf.output_schema)):
        pieces = [chunk[col_idx] for chunk in batched_results]
        tensor = ops.cat([p.tensor for p in pieces], dim=0)
        stitched.append(Column(pieces[0].name, EncodedTensor(tensor, pieces[0].encoding)))
    return _rehome(stitched, device)


def _tag_slice(parent: Tensor, chunk: Tensor, start: int, stop: int) -> None:
    """Propagate content identity onto a micro-batch slice, so encoder memos
    inside the UDF can capture/reuse per-slice embeddings."""
    tag = getattr(parent, "_cache_tag", None)
    if tag is not None:
        tc.tag_tensor(chunk, tc.slice_tag(tag, start, stop))


def _rehome(columns: List[Column], device) -> List[Column]:
    """Move UDF outputs to the query's device (a UDF may compute wherever its
    model weights live; the engine re-homes results, like a runtime copying
    kernel outputs back to the executing stream)."""
    return [col if col.device == device else col.to(device) for col in columns]
