"""Table scan: resolves the catalog at *run* time.

The paper's training loop (Listing 5) re-registers ``MNIST_Grid`` with fresh
data every iteration and re-runs the same compiled query; binding the scan to
a name rather than a table snapshot is what makes that work.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import List, Optional

from repro.errors import ExecutionError
from repro.core.operators.base import Operator, Relation
from repro.storage.table import Table
from repro.tcr.device import Device

# Active shared-scan memo (None outside a ``shared_scans`` block). Batch
# execution opens one so that N statements over the same table pay the
# select + device-transfer cost once. A ContextVar, not a module global:
# concurrent ``execute_many`` batches on scheduler worker threads each get
# their own memo and can never cross-pollinate mid-batch.
_SCAN_MEMO: "contextvars.ContextVar[Optional[dict]]" = contextvars.ContextVar(
    "tdp_scan_memo", default=None)


@contextlib.contextmanager
def shared_scans():
    """Context manager: scans of the same table/device are resolved once.

    Used by ``Session.execute_many`` / ``CompiledQuery.run_many``. Scan
    results are immutable (operators gather into fresh tables), so sharing
    the Relation across queries is safe. Nested blocks share the outermost
    memo; the memo is scoped to the opening thread/context, so concurrent
    batches stay isolated.
    """
    if _SCAN_MEMO.get() is not None:
        yield
        return
    token = _SCAN_MEMO.set({})
    try:
        yield
    finally:
        _SCAN_MEMO.reset(token)


def shard_slices(table: Table, bounds) -> list:
    """Contiguous shard views of a resolved scan, memoised per batch.

    Outside a ``shared_scans`` block this just slices (column slices are
    zero-copy views). Inside one, the slice list is memoised next to the
    column memo, so a batch of sharded statements over the same resolved
    table reuses one set of shard Column objects (and therefore one set of
    identity/lineage tags) instead of rebuilding them per statement.
    """
    scan_memo = _SCAN_MEMO.get()
    if scan_memo is None:
        return _build_shard_slices(table, bounds)
    key = ("shards", table, tuple(bounds))
    cached = scan_memo.get(key)
    if cached is None:
        cached = _build_shard_slices(table, bounds)
        scan_memo[key] = cached
    return cached


def _build_shard_slices(table: Table, bounds) -> list:
    # Materialize compressed (RLE) columns once for the whole shard set:
    # slicing decodes per call, and K shards must share one decoded base
    # (one O(n) pass, one lineage token) rather than decode K times. The
    # decoded copy lives only as long as the shard slices do.
    table = Table(table.name, [col.materialize() for col in table.columns])
    return [table.slice_rows(start, stop) for start, stop in bounds]


class ScanExec(Operator):
    def __init__(self, catalog, table_name: str, column_names: List[str], device: Device):
        super().__init__()
        self.catalog = catalog
        self.table_name = table_name
        self.column_names = column_names
        self.device = device

    def forward(self, relation=None) -> Relation:
        table = self.catalog.get(self.table_name)
        missing = [n for n in self.column_names if not table.has_column(n)]
        if missing:
            raise ExecutionError(
                f"table {self.table_name!r} no longer has columns {missing} "
                f"(re-registered with a different schema?)"
            )
        scan_memo = _SCAN_MEMO.get()
        if scan_memo is None:
            ordered = table.select(self.column_names)
            if ordered.device != self.device:
                ordered = ordered.to(self.device)
            return Relation(ordered)
        # Shared-scan path: each column of the table is selected and moved to
        # the target device at most once per batch, however many statements
        # (with however many different pruned column subsets) reference it.
        # Keyed on the Table object itself (identity hash + strong reference):
        # an id()-based key could alias a recycled address if a table were
        # dropped and replaced mid-batch.
        memo = scan_memo.setdefault((table, str(self.device)), {})
        columns = []
        for name in self.column_names:
            column = memo.get(name)
            if column is None:
                column = table.column(name)
                if column.device != self.device:
                    column = column.to(self.device)
                memo[name] = column
            columns.append(column)
        return Relation(Table(table.name, columns))

    def describe(self) -> str:
        return f"Scan({self.table_name})"
