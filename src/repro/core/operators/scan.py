"""Table scan: resolves the catalog at *run* time.

The paper's training loop (Listing 5) re-registers ``MNIST_Grid`` with fresh
data every iteration and re-runs the same compiled query; binding the scan to
a name rather than a table snapshot is what makes that work.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ExecutionError
from repro.core.operators.base import Operator, Relation
from repro.storage.table import Table
from repro.tcr.device import Device


class ScanExec(Operator):
    def __init__(self, catalog, table_name: str, column_names: List[str], device: Device):
        super().__init__()
        self.catalog = catalog
        self.table_name = table_name
        self.column_names = column_names
        self.device = device

    def forward(self, relation=None) -> Relation:
        table = self.catalog.get(self.table_name)
        missing = [n for n in self.column_names if not table.has_column(n)]
        if missing:
            raise ExecutionError(
                f"table {self.table_name!r} no longer has columns {missing} "
                f"(re-registered with a different schema?)"
            )
        ordered = table.select(self.column_names)
        if ordered.device != self.device:
            ordered = ordered.to(self.device)
        return Relation(ordered)

    def describe(self) -> str:
        return f"Scan({self.table_name})"
