"""Join operators: sorted-lookup equi-join (TQP-style) and cross join."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.operators.base import Operator, Relation
from repro.sql.bound import BoundExpr
from repro.storage.column import Column
from repro.storage.encodings import DictionaryEncoding
from repro.storage.table import Table


def _join_codes(left: Column, right: Column) -> Tuple[np.ndarray, np.ndarray]:
    """Factorise a key pair into comparable integer codes."""
    if isinstance(left.encoding, DictionaryEncoding) or isinstance(
            right.encoding, DictionaryEncoding):
        left_vals = left.decode().astype(str)
        right_vals = right.decode().astype(str)
    else:
        left_vals = left.tensor.detach().data
        right_vals = right.tensor.detach().data
        if left_vals.ndim != 1 or right_vals.ndim != 1:
            raise ExecutionError("join keys must be scalar columns")
    combined = np.concatenate([left_vals, right_vals])
    _, inverse = np.unique(combined, return_inverse=True)
    inverse = inverse.reshape(-1)
    return inverse[:len(left_vals)], inverse[len(left_vals):]


def equi_join_indices(left_codes: np.ndarray, right_codes: np.ndarray,
                      keep_unmatched_left: bool = False
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Matching row index pairs for an equi-join.

    Sort the right side once; for each left row, binary-search its matching
    range — the vectorised sorted-lookup join TQP lowers hash joins to.
    Unmatched left rows appear with right index -1 when requested (LEFT JOIN).
    """
    if len(left_codes) == 0 or (len(right_codes) == 0 and not keep_unmatched_left):
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    order = np.argsort(right_codes, kind="stable")
    sorted_right = right_codes[order]
    lo = np.searchsorted(sorted_right, left_codes, side="left")
    hi = np.searchsorted(sorted_right, left_codes, side="right")
    counts = hi - lo
    if keep_unmatched_left:
        out_counts = np.maximum(counts, 1)
    else:
        out_counts = counts
    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(len(left_codes)), out_counts)
    # Offsets within each left row's output block.
    block_starts = np.concatenate([[0], np.cumsum(out_counts)[:-1]])
    within = np.arange(total) - np.repeat(block_starts, out_counts)
    right_sorted_pos = np.repeat(lo, out_counts) + within
    matched = np.repeat(counts > 0, out_counts)
    right_idx = np.full(total, -1, dtype=np.int64)
    right_idx[matched] = order[right_sorted_pos[matched]]
    return left_idx, right_idx


def _combine_key_codes(left_codes: List[np.ndarray], right_codes: List[np.ndarray]
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse per-key code columns into one comparable code per row.

    Radix arithmetic (``combined * radix + codes``) silently wraps int64 for
    high-cardinality composite keys, so stack the code columns and
    re-factorise the rows with ``np.unique(axis=0)`` — lossless at any
    cardinality.
    """
    if len(left_codes) == 1:
        return left_codes[0], right_codes[0]
    n_left = len(left_codes[0])
    stacked = np.concatenate([np.stack(left_codes, axis=1),
                              np.stack(right_codes, axis=1)], axis=0)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    return inverse[:n_left], inverse[n_left:]


def _null_fill_column(column: Column, indices: np.ndarray, name: str) -> Column:
    """Gather with -1 → NULL-ish fill (NaN/0/"") for LEFT JOIN unmatched rows."""
    valid = indices >= 0
    if column.num_rows == 0:
        # Zero-row build side: every probe row is unmatched, and even the
        # "safe" placeholder index 0 would be out of bounds — synthesize the
        # fill directly from an empty gather's dtype/encoding.
        gathered = column.take(np.zeros(0, dtype=np.int64))
        empty = gathered.tensor.detach().data
        data = np.zeros((len(indices),) + empty.shape[1:], dtype=empty.dtype)
    else:
        safe = np.where(valid, indices, 0)
        gathered = column.take(safe)
        if valid.all():
            return gathered.rename(name)
        data = gathered.tensor.detach().data.copy()
    if data.dtype.kind == "f":
        data[~valid] = np.nan
    else:
        data[~valid] = 0
    from repro.storage.encodings import EncodedTensor
    from repro.tcr.tensor import Tensor
    return Column(name, EncodedTensor(Tensor(data, device=column.device),
                                      gathered.encoding))


class JoinExec(Operator):
    def __init__(self, kind: str, left_keys: List[BoundExpr],
                 right_keys: List[BoundExpr], residual: Optional[BoundExpr],
                 left_names: List[str], right_names: List[str]):
        super().__init__()
        self.kind = kind
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.left_names = left_names
        self.right_names = right_names
        self._register_expr_udfs(left_keys + right_keys + ([residual] if residual else []))

    def forward(self, left_rel: Relation, right_rel: Relation = None) -> Relation:
        if right_rel is None:
            raise ExecutionError("JoinExec.forward needs two input relations")
        if left_rel.weights is not None or right_rel.weights is not None:
            raise ExecutionError("joins do not support soft filter weights")
        left, right = left_rel.table, right_rel.table

        if self.kind == "CROSS" or not self.left_keys:
            li = np.repeat(np.arange(left.num_rows), right.num_rows)
            ri = np.tile(np.arange(right.num_rows), left.num_rows)
        else:
            combined_left, combined_right = self._evaluate_key_codes(left, right)
            li, ri = self._join_indices(combined_left, combined_right)

        if self.residual is not None:
            li, ri = self._apply_residual(left, right, li, ri)
        return Relation(self._gather(left, right, li, ri))

    def _evaluate_key_codes(self, left: Table, right: Table
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate the key expressions and jointly factorise both sides.

        The codes are comparable *across* sides (equal values share a code),
        which is also what makes them a sound hash-partitioning key for the
        exchange operator (see :mod:`repro.core.operators.exchange`).
        """
        left_eval = ExpressionEvaluator(left)
        right_eval = ExpressionEvaluator(right)
        left_code_cols, right_code_cols = [], []
        for lk, rk in zip(self.left_keys, self.right_keys):
            lcol = left_eval.evaluate_column(lk)
            rcol = right_eval.evaluate_column(rk)
            lcodes, rcodes = _join_codes(lcol, rcol)
            left_code_cols.append(lcodes)
            right_code_cols.append(rcodes)
        return _combine_key_codes(left_code_cols, right_code_cols)

    def _join_indices(self, combined_left: np.ndarray,
                      combined_right: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Serial sorted-lookup dispatch over pre-factorised key codes."""
        if self.kind == "RIGHT":
            ri, li = equi_join_indices(combined_right, combined_left,
                                       keep_unmatched_left=True)
        else:
            li, ri = equi_join_indices(combined_left, combined_right,
                                       keep_unmatched_left=(self.kind == "LEFT"))
        return li, ri

    def _gather(self, left: Table, right: Table, li: np.ndarray,
                ri: np.ndarray) -> Table:
        columns = []
        for col, name in zip(left.columns, self.left_names):
            columns.append(_null_fill_column(col, li, name))
        for col, name in zip(right.columns, self.right_names):
            columns.append(_null_fill_column(col, ri, name))
        return Table(left.name, columns)

    def _apply_residual(self, left: Table, right: Table, li: np.ndarray,
                        ri: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Filter matched rows by the residual ON predicate.

        The residual is part of the join condition, not a WHERE clause: for
        LEFT/RIGHT joins the preserved side keeps its rows. Unmatched rows
        pass through untouched, and preserved-side rows whose every match
        fails the residual reappear as null-filled unmatched rows.
        """
        mask = ExpressionEvaluator(self._gather(left, right, li, ri)) \
            .evaluate_mask(self.residual)
        if self.kind == "LEFT":
            preserved, other = li, ri
        elif self.kind == "RIGHT":
            preserved, other = ri, li
        else:
            sel = np.flatnonzero(mask)
            return li[sel], ri[sel]
        keep = mask | (other < 0)
        lost = np.setdiff1d(preserved, preserved[keep])
        new_preserved = np.concatenate([preserved[keep], lost])
        new_other = np.concatenate([other[keep],
                                    np.full(len(lost), -1, dtype=np.int64)])
        order = np.argsort(new_preserved, kind="stable")
        new_preserved, new_other = new_preserved[order], new_other[order]
        if self.kind == "LEFT":
            return new_preserved, new_other
        return new_other, new_preserved

    def describe(self) -> str:
        return f"Join({self.kind})"
