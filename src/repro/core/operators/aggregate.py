"""Group-by aggregation: exact sort-based, exact hash-based, and dense-PE.

The sort-based implementation is the TQP-style tensor algorithm the paper
builds on [13]: lexsort the group keys, find segment boundaries, and reduce
each segment with ``reduceat``-backed tensor ops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.operators.base import Operator, Relation
from repro.sql.bound import AggSpec, BoundExpr
from repro.storage.column import Column, concat_encoded
from repro.storage.encodings import (
    DictionaryEncoding,
    EncodedTensor,
    PlainEncoding,
    ProbabilityEncoding,
)
from repro.storage.table import Table
from repro.tcr import ops


def _key_array(column: Column) -> np.ndarray:
    """Sortable 1-d array for a group key (dictionary codes sort like strings)."""
    if isinstance(column.encoding, ProbabilityEncoding):
        return column.encoding.hard_codes(column.tensor)
    data = column.tensor.detach().data
    if data.ndim != 1:
        raise ExecutionError("cannot group by a multi-dimensional column")
    if data.dtype.kind == "b":
        return data.astype(np.int8)
    return data


def _group_output_column(column: Column, row_indices: np.ndarray, name: str) -> Column:
    """Representative key values per group, preserving the encoding."""
    if isinstance(column.encoding, ProbabilityEncoding):
        codes = column.encoding.hard_codes(column.tensor)[row_indices]
        values = column.encoding.domain[codes]
        return Column.from_values(name, values, device=column.device)
    return column.take(row_indices).rename(name)


class _AggregateBase(Operator):
    def __init__(self, group_exprs: List[BoundExpr], group_names: List[str],
                 aggregates: List[AggSpec]):
        super().__init__()
        self.group_exprs = group_exprs
        self.group_names = group_names
        self.aggregates = aggregates
        self._register_expr_udfs(group_exprs + [s.arg for s in aggregates if s.arg is not None])

    def _evaluate_inputs(self, relation: Relation
                         ) -> Tuple[List[Column], List[Optional[Column]]]:
        evaluator = ExpressionEvaluator(relation.table)
        keys = [evaluator.evaluate_column(e, n)
                for e, n in zip(self.group_exprs, self.group_names)]
        agg_inputs = [
            evaluator.evaluate_column(spec.arg, spec.name) if spec.arg is not None else None
            for spec in self.aggregates
        ]
        return keys, agg_inputs

    def _global_aggregate(self, agg_inputs: List[Optional[Column]],
                          n: int, device, table_name: str) -> Relation:
        columns = []
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(_global_agg_column(spec, arg, n, device))
        return Relation(Table(table_name, columns))

    def _empty_group_result(self, keys: List[Column],
                            agg_inputs: List[Optional[Column]],
                            device, table_name: str) -> Relation:
        """Zero groups for zero input rows, with dtype-correct agg columns
        (shared by the sort and hash implementations)."""
        columns = [k.take(np.zeros(0, dtype=np.int64)) for k in keys]
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(Column.from_values(
                spec.name, np.zeros(0, dtype=_agg_output_dtype(spec, arg)),
                device=device))
        return Relation(Table(table_name, columns))


def _agg_output_dtype(spec: AggSpec, arg: Optional[Column]) -> np.dtype:
    """The dtype the non-empty aggregation paths would produce."""
    if spec.func == "COUNT":
        return np.dtype(np.int64)
    if spec.func == "AVG":
        return np.dtype(np.float32)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    return arg.tensor.detach().data.dtype


def _global_agg_column(spec: AggSpec, arg: Optional[Column], n: int, device) -> Column:
    if spec.func == "COUNT":
        if spec.arg is None:
            value = np.asarray([n], dtype=np.int64)
        elif spec.distinct:
            value = np.asarray([len(np.unique(_distinct_codes(arg)))], dtype=np.int64)
        else:
            value = np.asarray([n], dtype=np.int64)
        return Column.from_values(spec.name, value, device=device)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    tensor = arg.tensor
    if n == 0:
        fill = 0.0 if spec.func in ("SUM", "AVG") else np.nan
        return Column.from_values(spec.name, np.asarray([fill], dtype=np.float32),
                                  device=device)
    if spec.func == "SUM":
        result = ops.sum(tensor).reshape(1)
    elif spec.func == "AVG":
        # SUM/COUNT formulation with a float64 accumulator, matching the
        # grouped (reduceat) AVG path — and exactly what the partial-
        # aggregate merge computes, so sharded global AVG over integer
        # inputs stays bit-identical with serial execution.
        total = ops.sum(ops.astype(tensor, np.float64))
        result = ops.astype(ops.div(total, float(n)), np.float32).reshape(1)
    elif spec.func == "MIN":
        result = ops.min(tensor).reshape(1)
    else:  # MAX
        result = ops.max(tensor).reshape(1)
    if isinstance(arg.encoding, DictionaryEncoding):
        raise ExecutionError(f"{spec.func} over string columns is not supported")
    return Column(spec.name, EncodedTensor(result, PlainEncoding()))


def distinct_counts(group_ids: np.ndarray, values: np.ndarray,
                    num_groups: int,
                    starts: Optional[np.ndarray] = None) -> np.ndarray:
    """Distinct values per group, NaN-aware: all NaNs in a group count as
    ONE value, matching the global path's ``np.unique`` (which collapses
    NaNs). Shared by the sort- and hash-aggregate COUNT(DISTINCT) paths so
    the two implementations cannot drift."""
    if len(values) == 0:
        return np.zeros(num_groups, dtype=np.int64)
    order = np.lexsort((values, group_ids))
    g = group_ids[order]
    v = values[order]
    new_run = np.ones(len(v), dtype=np.int64)
    same_g = g[1:] == g[:-1]
    same_v = v[1:] == v[:-1]
    if v.dtype.kind == "f":
        # NaN != NaN would make every NULL its own "distinct" value; NaNs
        # sort to the end of each group, so run-collapsing them is exact.
        same_v = same_v | (np.isnan(v[1:]) & np.isnan(v[:-1]))
    new_run[1:] = ~(same_g & same_v)
    if starts is not None:
        # Sort-aggregate path: groups are contiguous segments over `order`.
        return np.add.reduceat(new_run, starts).astype(np.int64)
    return np.bincount(g, weights=new_run,
                       minlength=num_groups).astype(np.int64)


def _distinct_codes(column: Column) -> np.ndarray:
    data = column.tensor.detach().data
    return data if data.ndim == 1 else data.reshape(data.shape[0], -1)[:, 0]


# ----------------------------------------------------------------------
# Partial (per-shard) global aggregation — the algebraic-aggregate half of
# the sharded-scan subsystem. A spec is *exact-mergeable* when combining
# per-shard partials is bit-identical with aggregating the whole relation:
# COUNT always (integer addition), MIN/MAX always (order-insensitive exact
# comparisons, NaN propagates identically), SUM and AVG only over
# integer/bool inputs (integer partial sums are exact in int64/float64;
# float partial sums would reorder the rounding). Everything else takes the
# merge barrier and aggregates the stitched relation serially.
# ----------------------------------------------------------------------
_EMPTY_PARTIAL = ("empty",)


def spec_mergeable(spec: AggSpec) -> bool:
    """Can this aggregate be computed per shard and merged bit-identically?"""
    if spec.distinct:
        return False
    if spec.func == "COUNT":
        return True
    data_type = getattr(spec.arg, "data_type", None) if spec.arg is not None else None
    kind = getattr(data_type, "kind", None)
    if spec.func in ("MIN", "MAX"):
        return kind in ("int", "float", "bool")
    if spec.func in ("SUM", "AVG"):
        return kind in ("int", "bool")
    return False


def global_partial(spec: AggSpec, arg: Optional[Column], n: int) -> tuple:
    """One shard's partial state for a mergeable global aggregate."""
    if spec.func == "COUNT":
        return ("count", n)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    if n == 0:
        return _EMPTY_PARTIAL
    data = arg.tensor.detach().data
    if spec.func == "SUM":
        return ("sum", np.sum(data))
    if spec.func == "AVG":
        return ("avg", np.sum(data.astype(np.float64)), n)
    if spec.func == "MIN":
        return ("min", np.min(data))
    return ("max", np.max(data))


def merge_global_partials(spec: AggSpec, partials: Sequence[tuple],
                          device) -> Column:
    """Combine shard partials into the single-row global aggregate column,
    reproducing ``_global_agg_column``'s dtypes and empty-input fills."""
    if spec.func == "COUNT":
        total = sum(int(p[1]) for p in partials)
        return Column.from_values(spec.name, np.asarray([total], dtype=np.int64),
                                  device=device)
    live = [p for p in partials if p is not _EMPTY_PARTIAL and p[0] != "empty"]
    if not live:
        fill = 0.0 if spec.func in ("SUM", "AVG") else np.nan
        return Column.from_values(spec.name,
                                  np.asarray([fill], dtype=np.float32),
                                  device=device)
    if spec.func == "AVG":
        total = np.sum(np.asarray([p[1] for p in live], dtype=np.float64))
        count = sum(int(p[2]) for p in live)
        value = np.asarray([total / float(count)], dtype=np.float64)
        return Column.from_values(spec.name, value.astype(np.float32),
                                  device=device)
    values = np.asarray([p[1] for p in live])
    if spec.func == "SUM":
        merged = np.sum(values)
    elif spec.func == "MIN":
        merged = np.min(values)
    else:  # MAX
        merged = np.max(values)
    return Column.from_values(spec.name, np.asarray([merged]), device=device)


# ----------------------------------------------------------------------
# Grouped (GROUP BY) partials — the sort-aggregate core run per shard, then
# once more over the per-shard representatives at the merge barrier. Exactness
# mirrors the global-partial policy above (`spec_mergeable`): COUNT partials
# add in int64, SUM/AVG partials only exist for integer/bool inputs (exact in
# int64/float64), MIN/MAX combine with the same NaN-propagating comparisons.
# Bit-identity of the *grouping* comes from shard-major concatenation: shards
# are contiguous row ranges, so concatenating each shard's representative
# keys in shard order reproduces the original relative row order, and the
# same stable lexsort + change-point pass then selects exactly the groups,
# group order and representative rows serial execution selects.
# ----------------------------------------------------------------------
class GroupedPartial:
    """One shard's grouped-aggregate state: representative key columns plus
    one partial-state vector (a tuple of aligned arrays) per aggregate spec,
    each with one entry per group found in the shard."""

    __slots__ = ("keys", "states", "groups")

    def __init__(self, keys: List[Column], states: List[tuple], groups: int):
        self.keys = keys
        self.states = states
        self.groups = groups


def _empty_grouped_state(spec: AggSpec, arg: Optional[Column]) -> tuple:
    if spec.func == "COUNT":
        return (np.zeros(0, dtype=np.int64),)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    dtype = arg.tensor.detach().data.dtype
    if spec.func == "AVG":
        return (np.zeros(0, dtype=np.float64), np.zeros(0, dtype=np.int64))
    return (np.zeros(0, dtype=dtype),)


def _grouped_state(spec: AggSpec, arg: Optional[Column], order: np.ndarray,
                   starts: np.ndarray, lengths: np.ndarray) -> tuple:
    """Per-group partial vectors, computed exactly as the serial segment
    reductions compute them (same reduceat calls, same dtypes)."""
    if spec.func == "COUNT":
        return (lengths.astype(np.int64),)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    if isinstance(arg.encoding, DictionaryEncoding):
        raise ExecutionError(f"{spec.func} over string columns is not supported")
    data = arg.tensor.detach().data[order]
    if spec.func == "SUM":
        return (np.add.reduceat(data, starts, axis=0),)
    if spec.func == "AVG":
        return (np.add.reduceat(data.astype(np.float64), starts, axis=0),
                lengths.astype(np.int64))
    if spec.func == "MIN":
        return (np.minimum.reduceat(data, starts, axis=0),)
    return (np.maximum.reduceat(data, starts, axis=0),)


def grouped_partial(specs: Sequence[AggSpec], keys: List[Column],
                    group_names: Sequence[str],
                    agg_inputs: List[Optional[Column]], n: int) -> GroupedPartial:
    """One shard's grouped partial state (requires every spec mergeable)."""
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        rep_cols = [_group_output_column(k, empty, name)
                    for k, name in zip(keys, group_names)]
        states = [_empty_grouped_state(spec, arg)
                  for spec, arg in zip(specs, agg_inputs)]
        return GroupedPartial(rep_cols, states, 0)
    key_arrays = [_key_array(k) for k in keys]
    order, _, starts, lengths, rep_rows = sort_group_segments(key_arrays, n)
    rep_cols = [_group_output_column(k, rep_rows, name)
                for k, name in zip(keys, group_names)]
    states = [_grouped_state(spec, arg, order, starts, lengths)
              for spec, arg in zip(specs, agg_inputs)]
    return GroupedPartial(rep_cols, states, len(starts))


def _concat_rep_columns(pieces: Sequence[Column]) -> Column:
    encoded = concat_encoded(pieces)
    if encoded is None:
        raise ExecutionError(
            f"cannot merge grouped partials of key {pieces[0].name!r}: "
            f"shards produced different encodings"
        )
    return Column(pieces[0].name, encoded)


def _combine_grouped_state(spec: AggSpec, arrays: tuple, order: np.ndarray,
                           starts: np.ndarray) -> np.ndarray:
    """Reduce concatenated per-shard partial vectors segment-wise."""
    if spec.func == "COUNT":
        return np.add.reduceat(arrays[0][order], starts).astype(np.int64)
    if spec.func == "SUM":
        return np.add.reduceat(arrays[0][order], starts, axis=0)
    if spec.func == "AVG":
        # float64 partial sums / int64 partial counts: the same
        # sums-over-lengths division (and final float32 narrowing) the
        # serial segment AVG performs.
        sums = np.add.reduceat(arrays[0][order], starts, axis=0)
        counts = np.add.reduceat(arrays[1][order], starts)
        return (sums / counts).astype(np.float32)
    if spec.func == "MIN":
        return np.minimum.reduceat(arrays[0][order], starts, axis=0)
    return np.maximum.reduceat(arrays[0][order], starts, axis=0)


def _merged_empty_state(spec: AggSpec, arrays: tuple) -> np.ndarray:
    if spec.func == "AVG":
        return np.zeros(0, dtype=np.float32)
    return arrays[0]


def merge_grouped_partials(agg, partials: Sequence[GroupedPartial],
                           device, table_name: str) -> Relation:
    """Combine shard grouped-partials into the final GROUP BY relation,
    bit-identical with ``SortAggregateExec`` over the unsharded input."""
    specs = agg.aggregates
    names = agg.group_names
    key_cols = [
        _concat_rep_columns([p.keys[i] for p in partials])
        for i in range(len(names))
    ]
    state_arrays = [
        tuple(np.concatenate([p.states[i][j] for p in partials])
              for j in range(len(partials[0].states[i])))
        for i in range(len(specs))
    ]
    total = sum(p.groups for p in partials)
    if total == 0:
        columns = list(key_cols)
        for spec, arrays in zip(specs, state_arrays):
            columns.append(Column.from_values(
                spec.name, _merged_empty_state(spec, arrays), device=device))
        return Relation(Table(table_name, columns))
    key_arrays = [_key_array(c) for c in key_cols]
    order, _, starts, _, rep_rows = sort_group_segments(key_arrays, total)
    columns = [_group_output_column(c, rep_rows, name)
               for c, name in zip(key_cols, names)]
    for spec, arrays in zip(specs, state_arrays):
        columns.append(Column.from_values(
            spec.name, _combine_grouped_state(spec, arrays, order, starts),
            device=device))
    return Relation(Table(table_name, columns))


def sort_group_segments(key_arrays: List[np.ndarray], n: int) -> tuple:
    """Stable lexsort + segment-boundary detection: the sort-aggregate core.

    Returns ``(order, sorted_keys, starts, lengths, rep_rows)``. Shared by
    the serial sort aggregate, the per-shard grouped partials and the
    grouped-partial merge, so the three paths cannot drift (NaN keys each
    form their own group under the ``!=`` change-point rule; the stable sort
    keeps them — and every group's representative row — in input order).
    """
    order = np.lexsort(tuple(reversed(key_arrays)))
    sorted_keys = [arr[order] for arr in key_arrays]
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for arr in sorted_keys:
        change[1:] |= arr[1:] != arr[:-1]
    starts = np.flatnonzero(change)
    lengths = np.diff(np.append(starts, n))
    rep_rows = order[starts]
    return order, sorted_keys, starts, lengths, rep_rows


class SortAggregateExec(_AggregateBase):
    """Sort → segment boundaries → reduceat (works for any key cardinality)."""

    def forward(self, relation: Relation) -> Relation:
        if relation.weights is not None:
            raise ExecutionError(
                "exact aggregation cannot consume soft filter weights; compile the "
                "query with TRAINABLE to use soft operators"
            )
        keys, agg_inputs = self._evaluate_inputs(relation)
        return self.aggregate_evaluated(keys, agg_inputs, relation.num_rows,
                                        relation.device, relation.table.name)

    def aggregate_evaluated(self, keys: List[Column],
                            agg_inputs: List[Optional[Column]], n: int,
                            device, table_name: str) -> Relation:
        """Aggregate already-evaluated key/argument columns.

        Split out of ``forward`` so the fused-pipeline path can feed columns
        evaluated over a selection view without materialising the projected
        relation first — the computation is identical by construction.
        """
        if not keys:
            return self._global_aggregate(agg_inputs, n, device, table_name)
        if n == 0:
            return self._empty_group_result(keys, agg_inputs, device, table_name)

        key_arrays = [_key_array(k) for k in keys]
        order, sorted_keys, starts, lengths, rep_rows = \
            sort_group_segments(key_arrays, n)

        columns = [
            _group_output_column(k, rep_rows, name)
            for k, name in zip(keys, self.group_names)
        ]
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(_segment_agg_column(spec, arg, order, starts, lengths,
                                               sorted_keys, device))
        return Relation(Table(table_name, columns))

    def describe(self) -> str:
        return f"SortAggregate(groups={self.group_names})"


def _segment_agg_column(spec: AggSpec, arg: Optional[Column], order: np.ndarray,
                        starts: np.ndarray, lengths: np.ndarray,
                        sorted_keys: List[np.ndarray], device) -> Column:
    if spec.func == "COUNT" and spec.arg is None:
        return Column.from_values(spec.name, lengths.astype(np.int64), device=device)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    data = arg.tensor.detach().data[order]
    if spec.func == "COUNT":
        if spec.distinct:
            # Sort values within segments and count distinct runs per segment.
            seg_ids = np.repeat(np.arange(len(starts)), lengths)
            counts = distinct_counts(seg_ids, data, len(starts),
                                     starts=starts)
            return Column.from_values(spec.name, counts, device=device)
        return Column.from_values(spec.name, lengths.astype(np.int64), device=device)
    if isinstance(arg.encoding, DictionaryEncoding):
        raise ExecutionError(f"{spec.func} over string columns is not supported")
    if spec.func == "SUM":
        result = np.add.reduceat(data, starts, axis=0)
    elif spec.func == "AVG":
        result = np.add.reduceat(data.astype(np.float64), starts, axis=0) / lengths
        result = result.astype(np.float32)
    elif spec.func == "MIN":
        result = np.minimum.reduceat(data, starts, axis=0)
    else:  # MAX
        result = np.maximum.reduceat(data, starts, axis=0)
    return Column.from_values(spec.name, result, device=device)


class HashAggregateExec(_AggregateBase):
    """Factorise keys with np.unique(axis=0), accumulate with bincount/add.at."""

    def forward(self, relation: Relation) -> Relation:
        if relation.weights is not None:
            raise ExecutionError(
                "exact aggregation cannot consume soft filter weights; compile the "
                "query with TRAINABLE to use soft operators"
            )
        keys, agg_inputs = self._evaluate_inputs(relation)
        if not keys:
            return self._global_aggregate(agg_inputs, relation.num_rows,
                                          relation.device, relation.table.name)
        n = relation.num_rows
        if n == 0:
            return self._empty_group_result(keys, agg_inputs, relation.device,
                                            relation.table.name)

        # Factorise each key column on its own dtype, then combine the int64
        # codes: stacking mixed int/float keys directly would promote int64
        # to float64 and collapse distinct keys above 2^53.
        key_arrays = [_key_array(k) for k in keys]
        if len(key_arrays) == 1:
            uniques, first_pos, inverse = np.unique(
                key_arrays[0], return_index=True, return_inverse=True)
            inverse = inverse.reshape(-1)
        else:
            code_cols = []
            for arr in key_arrays:
                _, codes = np.unique(arr, return_inverse=True)
                code_cols.append(codes.reshape(-1).astype(np.int64))
            uniques, inverse, first_pos = _factorize_rows(np.stack(code_cols, axis=1))
        num_groups = uniques.shape[0]

        columns = [
            _group_output_column(k, first_pos, name)
            for k, name in zip(keys, self.group_names)
        ]
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(_hash_agg_column(spec, arg, inverse, num_groups, relation.device))
        return Relation(Table(relation.table.name, columns))

    def describe(self) -> str:
        return f"HashAggregate(groups={self.group_names})"


def _factorize_rows(stacked: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique rows + inverse codes + first occurrence row of each unique."""
    uniques, index, inverse = np.unique(stacked, axis=0, return_index=True,
                                        return_inverse=True)
    return uniques, inverse.reshape(-1), index


def _hash_agg_column(spec: AggSpec, arg: Optional[Column], inverse: np.ndarray,
                     num_groups: int, device) -> Column:
    if spec.func == "COUNT" and spec.arg is None:
        counts = np.bincount(inverse, minlength=num_groups)
        return Column.from_values(spec.name, counts.astype(np.int64), device=device)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    data = arg.tensor.detach().data
    if spec.func == "COUNT":
        if spec.distinct:
            counts = distinct_counts(inverse.astype(np.int64),
                                     data.astype(np.float64), num_groups)
            return Column.from_values(spec.name, counts, device=device)
        counts = np.bincount(inverse, minlength=num_groups)
        return Column.from_values(spec.name, counts.astype(np.int64), device=device)
    if spec.func == "SUM":
        result = np.zeros(num_groups, dtype=np.float64)
        np.add.at(result, inverse, data.astype(np.float64))
        result = result.astype(data.dtype if data.dtype.kind == "i" else np.float32)
    elif spec.func == "AVG":
        sums = np.zeros(num_groups, dtype=np.float64)
        np.add.at(sums, inverse, data.astype(np.float64))
        counts = np.bincount(inverse, minlength=num_groups)
        result = (sums / np.maximum(counts, 1)).astype(np.float32)
    elif spec.func == "MIN":
        result = np.full(num_groups, np.inf)
        np.minimum.at(result, inverse, data.astype(np.float64))
        result = result.astype(data.dtype if data.dtype.kind == "i" else np.float32)
    else:  # MAX
        result = np.full(num_groups, -np.inf)
        np.maximum.at(result, inverse, data.astype(np.float64))
        result = result.astype(data.dtype if data.dtype.kind == "i" else np.float32)
    return Column.from_values(spec.name, result, device=device)
