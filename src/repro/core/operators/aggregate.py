"""Group-by aggregation: exact sort-based, exact hash-based, and dense-PE.

The sort-based implementation is the TQP-style tensor algorithm the paper
builds on [13]: lexsort the group keys, find segment boundaries, and reduce
each segment with ``reduceat``-backed tensor ops.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.operators.base import Operator, Relation
from repro.sql.bound import AggSpec, BoundExpr
from repro.storage.column import Column
from repro.storage.encodings import (
    DictionaryEncoding,
    EncodedTensor,
    PlainEncoding,
    ProbabilityEncoding,
)
from repro.storage.table import Table
from repro.tcr import ops
from repro.tcr.tensor import Tensor


def _key_array(column: Column) -> np.ndarray:
    """Sortable 1-d array for a group key (dictionary codes sort like strings)."""
    if isinstance(column.encoding, ProbabilityEncoding):
        return column.encoding.hard_codes(column.tensor)
    data = column.tensor.detach().data
    if data.ndim != 1:
        raise ExecutionError("cannot group by a multi-dimensional column")
    if data.dtype.kind == "b":
        return data.astype(np.int8)
    return data


def _group_output_column(column: Column, row_indices: np.ndarray, name: str) -> Column:
    """Representative key values per group, preserving the encoding."""
    if isinstance(column.encoding, ProbabilityEncoding):
        codes = column.encoding.hard_codes(column.tensor)[row_indices]
        values = column.encoding.domain[codes]
        return Column.from_values(name, values, device=column.device)
    return column.take(row_indices).rename(name)


class _AggregateBase(Operator):
    def __init__(self, group_exprs: List[BoundExpr], group_names: List[str],
                 aggregates: List[AggSpec]):
        super().__init__()
        self.group_exprs = group_exprs
        self.group_names = group_names
        self.aggregates = aggregates
        self._register_expr_udfs(group_exprs + [s.arg for s in aggregates if s.arg is not None])

    def _evaluate_inputs(self, relation: Relation
                         ) -> Tuple[List[Column], List[Optional[Column]]]:
        evaluator = ExpressionEvaluator(relation.table)
        keys = [evaluator.evaluate_column(e, n)
                for e, n in zip(self.group_exprs, self.group_names)]
        agg_inputs = [
            evaluator.evaluate_column(spec.arg, spec.name) if spec.arg is not None else None
            for spec in self.aggregates
        ]
        return keys, agg_inputs

    def _global_aggregate(self, relation: Relation,
                          agg_inputs: List[Optional[Column]]) -> Relation:
        n = relation.num_rows
        columns = []
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(_global_agg_column(spec, arg, n, relation.device))
        return Relation(Table(relation.table.name, columns))

    def _empty_group_result(self, keys: List[Column],
                            agg_inputs: List[Optional[Column]],
                            relation: Relation) -> Relation:
        """Zero groups for zero input rows, with dtype-correct agg columns
        (shared by the sort and hash implementations)."""
        columns = [k.take(np.zeros(0, dtype=np.int64)) for k in keys]
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(Column.from_values(
                spec.name, np.zeros(0, dtype=_agg_output_dtype(spec, arg)),
                device=relation.device))
        return Relation(Table(relation.table.name, columns))


def _agg_output_dtype(spec: AggSpec, arg: Optional[Column]) -> np.dtype:
    """The dtype the non-empty aggregation paths would produce."""
    if spec.func == "COUNT":
        return np.dtype(np.int64)
    if spec.func == "AVG":
        return np.dtype(np.float32)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    return arg.tensor.detach().data.dtype


def _global_agg_column(spec: AggSpec, arg: Optional[Column], n: int, device) -> Column:
    if spec.func == "COUNT":
        if spec.arg is None:
            value = np.asarray([n], dtype=np.int64)
        elif spec.distinct:
            value = np.asarray([len(np.unique(_distinct_codes(arg)))], dtype=np.int64)
        else:
            value = np.asarray([n], dtype=np.int64)
        return Column.from_values(spec.name, value, device=device)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    tensor = arg.tensor
    if n == 0:
        fill = 0.0 if spec.func in ("SUM", "AVG") else np.nan
        return Column.from_values(spec.name, np.asarray([fill], dtype=np.float32),
                                  device=device)
    if spec.func == "SUM":
        result = ops.sum(tensor).reshape(1)
    elif spec.func == "AVG":
        result = ops.mean(ops.astype(tensor, np.float32)).reshape(1)
    elif spec.func == "MIN":
        result = ops.min(tensor).reshape(1)
    else:  # MAX
        result = ops.max(tensor).reshape(1)
    if isinstance(arg.encoding, DictionaryEncoding):
        raise ExecutionError(f"{spec.func} over string columns is not supported")
    return Column(spec.name, EncodedTensor(result, PlainEncoding()))


def _distinct_codes(column: Column) -> np.ndarray:
    data = column.tensor.detach().data
    return data if data.ndim == 1 else data.reshape(data.shape[0], -1)[:, 0]


class SortAggregateExec(_AggregateBase):
    """Sort → segment boundaries → reduceat (works for any key cardinality)."""

    def forward(self, relation: Relation) -> Relation:
        if relation.weights is not None:
            raise ExecutionError(
                "exact aggregation cannot consume soft filter weights; compile the "
                "query with TRAINABLE to use soft operators"
            )
        keys, agg_inputs = self._evaluate_inputs(relation)
        if not keys:
            return self._global_aggregate(relation, agg_inputs)
        n = relation.num_rows
        if n == 0:
            return self._empty_group_result(keys, agg_inputs, relation)

        key_arrays = [_key_array(k) for k in keys]
        order = np.lexsort(tuple(reversed(key_arrays)))
        sorted_keys = [arr[order] for arr in key_arrays]
        change = np.zeros(n, dtype=bool)
        change[0] = True
        for arr in sorted_keys:
            change[1:] |= arr[1:] != arr[:-1]
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, n))
        rep_rows = order[starts]

        columns = [
            _group_output_column(k, rep_rows, name)
            for k, name in zip(keys, self.group_names)
        ]
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(_segment_agg_column(spec, arg, order, starts, lengths,
                                               sorted_keys, relation.device))
        return Relation(Table(relation.table.name, columns))

    def describe(self) -> str:
        return f"SortAggregate(groups={self.group_names})"


def _segment_agg_column(spec: AggSpec, arg: Optional[Column], order: np.ndarray,
                        starts: np.ndarray, lengths: np.ndarray,
                        sorted_keys: List[np.ndarray], device) -> Column:
    if spec.func == "COUNT" and spec.arg is None:
        return Column.from_values(spec.name, lengths.astype(np.int64), device=device)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    data = arg.tensor.detach().data[order]
    if spec.func == "COUNT":
        if spec.distinct:
            # Sort values within segments and count distinct runs per segment.
            seg_ids = np.repeat(np.arange(len(starts)), lengths)
            sub_order = np.lexsort((data, seg_ids))
            seg_sorted = seg_ids[sub_order]
            val_sorted = data[sub_order]
            new_run = np.ones(len(data), dtype=np.int64)
            same_seg = seg_sorted[1:] == seg_sorted[:-1]
            same_val = val_sorted[1:] == val_sorted[:-1]
            new_run[1:] = ~(same_seg & same_val)
            counts = np.add.reduceat(new_run, starts)
            return Column.from_values(spec.name, counts.astype(np.int64), device=device)
        return Column.from_values(spec.name, lengths.astype(np.int64), device=device)
    if isinstance(arg.encoding, DictionaryEncoding):
        raise ExecutionError(f"{spec.func} over string columns is not supported")
    if spec.func == "SUM":
        result = np.add.reduceat(data, starts, axis=0)
    elif spec.func == "AVG":
        result = np.add.reduceat(data.astype(np.float64), starts, axis=0) / lengths
        result = result.astype(np.float32)
    elif spec.func == "MIN":
        result = np.minimum.reduceat(data, starts, axis=0)
    else:  # MAX
        result = np.maximum.reduceat(data, starts, axis=0)
    return Column.from_values(spec.name, result, device=device)


class HashAggregateExec(_AggregateBase):
    """Factorise keys with np.unique(axis=0), accumulate with bincount/add.at."""

    def forward(self, relation: Relation) -> Relation:
        if relation.weights is not None:
            raise ExecutionError(
                "exact aggregation cannot consume soft filter weights; compile the "
                "query with TRAINABLE to use soft operators"
            )
        keys, agg_inputs = self._evaluate_inputs(relation)
        if not keys:
            return self._global_aggregate(relation, agg_inputs)
        n = relation.num_rows
        if n == 0:
            return self._empty_group_result(keys, agg_inputs, relation)

        # Factorise each key column on its own dtype, then combine the int64
        # codes: stacking mixed int/float keys directly would promote int64
        # to float64 and collapse distinct keys above 2^53.
        key_arrays = [_key_array(k) for k in keys]
        if len(key_arrays) == 1:
            uniques, first_pos, inverse = np.unique(
                key_arrays[0], return_index=True, return_inverse=True)
            inverse = inverse.reshape(-1)
        else:
            code_cols = []
            for arr in key_arrays:
                _, codes = np.unique(arr, return_inverse=True)
                code_cols.append(codes.reshape(-1).astype(np.int64))
            uniques, inverse, first_pos = _factorize_rows(np.stack(code_cols, axis=1))
        num_groups = uniques.shape[0]

        columns = [
            _group_output_column(k, first_pos, name)
            for k, name in zip(keys, self.group_names)
        ]
        for spec, arg in zip(self.aggregates, agg_inputs):
            columns.append(_hash_agg_column(spec, arg, inverse, num_groups, relation.device))
        return Relation(Table(relation.table.name, columns))

    def describe(self) -> str:
        return f"HashAggregate(groups={self.group_names})"


def _factorize_rows(stacked: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unique rows + inverse codes + first occurrence row of each unique."""
    uniques, index, inverse = np.unique(stacked, axis=0, return_index=True,
                                        return_inverse=True)
    return uniques, inverse.reshape(-1), index


def _hash_agg_column(spec: AggSpec, arg: Optional[Column], inverse: np.ndarray,
                     num_groups: int, device) -> Column:
    if spec.func == "COUNT" and spec.arg is None:
        counts = np.bincount(inverse, minlength=num_groups)
        return Column.from_values(spec.name, counts.astype(np.int64), device=device)
    if arg is None:
        raise ExecutionError(f"{spec.func} requires an argument")
    data = arg.tensor.detach().data
    if spec.func == "COUNT":
        if spec.distinct:
            pairs = np.unique(np.stack([inverse.astype(np.int64),
                                        data.astype(np.float64)], axis=1), axis=0)
            counts = np.bincount(pairs[:, 0].astype(np.int64), minlength=num_groups)
            return Column.from_values(spec.name, counts.astype(np.int64), device=device)
        counts = np.bincount(inverse, minlength=num_groups)
        return Column.from_values(spec.name, counts.astype(np.int64), device=device)
    if spec.func == "SUM":
        result = np.zeros(num_groups, dtype=np.float64)
        np.add.at(result, inverse, data.astype(np.float64))
        result = result.astype(data.dtype if data.dtype.kind == "i" else np.float32)
    elif spec.func == "AVG":
        sums = np.zeros(num_groups, dtype=np.float64)
        np.add.at(sums, inverse, data.astype(np.float64))
        counts = np.bincount(inverse, minlength=num_groups)
        result = (sums / np.maximum(counts, 1)).astype(np.float32)
    elif spec.func == "MIN":
        result = np.full(num_groups, np.inf)
        np.minimum.at(result, inverse, data.astype(np.float64))
        result = result.astype(data.dtype if data.dtype.kind == "i" else np.float32)
    else:  # MAX
        result = np.full(num_groups, -np.inf)
        np.maximum.at(result, inverse, data.astype(np.float64))
        result = result.astype(data.dtype if data.dtype.kind == "i" else np.float32)
    return Column.from_values(spec.name, result, device=device)
