"""Kernel-compiled Filter/Project executors.

Each class subclasses its interpreter twin and keeps the parent's
expression attributes (``predicate``/``predicates``/``exprs``), so every
structural consumer — the shard planner's row-wise op matching, UDF
registration, plan-cache reuse, ``soft`` mode lowering — sees the same
operator shape. Only ``forward`` differs: it runs the plan-time-compiled
kernel, and any :class:`KernelFallback` (a batch that violates a
compile-time assumption) re-runs the inherited interpreter forward, which
is the kernel's bit-identity oracle by construction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.expr_eval import ExpressionEvaluator
from repro.core.kernels.compiler import FilterKernel, KernelFallback, ProjectKernel
from repro.core.operators.base import Relation
from repro.core.operators.filter import FilterExec
from repro.core.telemetry import annotate
from repro.core.operators.fused import FusedFilterExec, FusedFilterProjectExec, _GatherEvaluator
from repro.core.operators.project import ProjectExec
from repro.sql import bound as b
from repro.storage.table import Table


class CompiledFilterExec(FilterExec):
    def __init__(self, predicate: b.BoundExpr, kernel: FilterKernel):
        super().__init__(predicate)
        self.kernel = kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            mask = self.kernel.mask(evaluator)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        indices = np.flatnonzero(mask)
        table = relation.table.take(indices)
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()


class CompiledFusedFilterExec(FusedFilterExec):
    def __init__(self, predicates: List[b.BoundExpr], kernel: FilterKernel):
        super().__init__(predicates)
        self.kernel = kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            mask = self.kernel.mask(evaluator)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        indices = np.flatnonzero(mask)
        table = relation.table.take(indices)
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()


class CompiledFusedFilterProjectExec(FusedFilterProjectExec):
    def __init__(self, predicates: List[b.BoundExpr], exprs: List[b.BoundExpr],
                 names: List[str], filter_kernel: FilterKernel,
                 project_kernel: ProjectKernel):
        super().__init__(predicates, exprs, names)
        self.filter_kernel = filter_kernel
        self.project_kernel = project_kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            mask = self.filter_kernel.mask(evaluator)
            indices = np.flatnonzero(mask)
            projected = _GatherEvaluator(relation.table, indices)
            columns = self.project_kernel.columns(projected)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(Table(relation.table.name, columns), weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()


class CompiledProjectExec(ProjectExec):
    def __init__(self, exprs: List[b.BoundExpr], names: List[str],
                 kernel: ProjectKernel):
        super().__init__(exprs, names)
        self.kernel = kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            columns = self.kernel.columns(evaluator)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        return Relation(Table(relation.table.name, columns), relation.weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()
