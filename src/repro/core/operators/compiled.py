"""Kernel-compiled Filter/Project executors.

Each class subclasses its interpreter twin and keeps the parent's
expression attributes (``predicate``/``predicates``/``exprs``), so every
structural consumer — the shard planner's row-wise op matching, UDF
registration, plan-cache reuse, ``soft`` mode lowering — sees the same
operator shape. Only ``forward`` differs: it runs the plan-time-compiled
kernel, and any :class:`KernelFallback` (a batch that violates a
compile-time assumption) re-runs the inherited interpreter forward, which
is the kernel's bit-identity oracle by construction.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.expr_eval import ExpressionEvaluator
from repro.core.kernels.compiler import FilterKernel, KernelFallback, ProjectKernel
from repro.core.operators.base import Operator, Relation
from repro.core.operators.filter import FilterExec
from repro.core.telemetry import annotate
from repro.core.operators.fused import FusedFilterExec, FusedFilterProjectExec, _GatherEvaluator
from repro.core.operators.project import ProjectExec
from repro.sql import bound as b
from repro.storage.table import Table


class CompiledFilterExec(FilterExec):
    def __init__(self, predicate: b.BoundExpr, kernel: FilterKernel):
        super().__init__(predicate)
        self.kernel = kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            mask = self.kernel.mask(evaluator)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        indices = np.flatnonzero(mask)
        table = relation.table.take(indices)
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()


class CompiledFusedFilterExec(FusedFilterExec):
    def __init__(self, predicates: List[b.BoundExpr], kernel: FilterKernel):
        super().__init__(predicates)
        self.kernel = kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            mask = self.kernel.mask(evaluator)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        indices = np.flatnonzero(mask)
        table = relation.table.take(indices)
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()


class CompiledFusedFilterProjectExec(FusedFilterProjectExec):
    def __init__(self, predicates: List[b.BoundExpr], exprs: List[b.BoundExpr],
                 names: List[str], filter_kernel: FilterKernel,
                 project_kernel: ProjectKernel):
        super().__init__(predicates, exprs, names)
        self.filter_kernel = filter_kernel
        self.project_kernel = project_kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            mask = self.filter_kernel.mask(evaluator)
            indices = np.flatnonzero(mask)
            projected = _GatherEvaluator(relation.table, indices)
            columns = self.project_kernel.columns(projected)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(Table(relation.table.name, columns), weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()


class CompiledPipelineExec(Operator):
    """A whole fused scan→filter→project[→aggregate] subtree as one operator.

    The happy path runs the plan-time :class:`CompiledPipeline` callable —
    one mask pass, one gather, one output stage. Any :class:`KernelFallback`
    re-runs the retained per-operator chain (scan excluded: the scan result
    feeds both paths), which is the fused path's bit-identity oracle. The
    operators stay registered as submodules so UDF wiring, plan reuse and
    EXPLAIN output all see the original pipeline shape.
    """

    def __init__(self, scan, pipeline: List[Operator], aggregate, compiled):
        super().__init__()
        self.scan = scan
        self.pipeline = list(pipeline)
        self.aggregate = aggregate          # Optional serial aggregate op
        self.compiled = compiled            # kernels.pipeline.CompiledPipeline
        self.register_module("scan_op", scan)
        for i, op in enumerate(self.pipeline):
            self.register_module(f"stage{i}_op", op)
        if aggregate is not None:
            self.register_module("agg_op", aggregate)

    def forward(self, relation: Relation = None) -> Relation:
        base = self.scan(None)
        try:
            result = self.compiled.run(base)
        except KernelFallback:
            annotate(path="fallback")
            result = base
            for op in self.pipeline:
                result = op(result)
            if self.aggregate is not None:
                result = self.aggregate(result)
            return result
        annotate(path="pipeline", stages=self.compiled.stages)
        return result

    def describe(self) -> str:
        parts = [self.scan.describe()] + [op.describe() for op in self.pipeline]
        if self.aggregate is not None:
            parts.append(self.aggregate.describe())
        return "CompiledPipeline[" + " -> ".join(parts) + "]"


class CompiledProjectExec(ProjectExec):
    def __init__(self, exprs: List[b.BoundExpr], names: List[str],
                 kernel: ProjectKernel):
        super().__init__(exprs, names)
        self.kernel = kernel

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        try:
            columns = self.kernel.columns(evaluator)
        except KernelFallback:
            annotate(path="fallback")
            return super().forward(relation)
        annotate(path="kernel")
        return Relation(Table(relation.table.name, columns), relation.weights)

    def describe(self) -> str:
        return "Compiled" + super().describe()
