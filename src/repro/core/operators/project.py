"""Projection and table-valued-function operators."""

from __future__ import annotations

from typing import List

from repro.core.expr_eval import ExpressionEvaluator, Scalar, _invoke_batched
from repro.core.operators.base import Operator, Relation
from repro.sql import bound as b
from repro.storage.encodings import PlainEncoding
from repro.storage.table import Table


class ProjectExec(Operator):
    def __init__(self, exprs: List[b.BoundExpr], names: List[str]):
        super().__init__()
        self.exprs = exprs
        self.names = names
        self._register_expr_udfs(exprs)

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        columns = [
            evaluator.evaluate_column(expr, name)
            for expr, name in zip(self.exprs, self.names)
        ]
        return Relation(Table(relation.table.name, columns), relation.weights)

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


class TVFExec(Operator):
    """Apply a table-valued function row-wise; output replaces the schema.

    The function runs on the same tensor runtime as the surrounding plan —
    "UDFs/TVFs and SQL operators are all compiled down into [tensor]
    programs" (paper §3) — so there is no data marshalling boundary.
    """

    def __init__(self, udf, arg_exprs: List[b.BoundExpr], names: List[str]):
        super().__init__()
        self.udf = udf
        self.arg_exprs = arg_exprs
        self.names = names
        for i, module in enumerate(udf.modules):
            self.register_module(f"udf_{udf.name}_{i}", module)
        self._register_expr_udfs(arg_exprs)

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        args = []
        for expr in self.arg_exprs:
            value = evaluator.evaluate(expr)
            if isinstance(value, Scalar):
                args.append(value.value)
            elif self.udf.encoded_io or not isinstance(value.encoding, PlainEncoding):
                args.append(value.encoded)
            else:
                args.append(value.tensor)
        columns = _invoke_batched(self.udf, args, relation.num_rows, relation.device)
        renamed = [col.rename(name) for col, name in zip(columns, self.names)]
        out = Table(relation.table.name, renamed)
        # TVFs may change cardinality (one grid image becomes nine tile rows,
        # one document image becomes N extracted table rows); soft row weights
        # only survive when the function is row-preserving.
        weights = relation.weights if out.num_rows == relation.num_rows else None
        return Relation(out, weights)

    def describe(self) -> str:
        return f"TVF({self.udf.name})"
