"""Sharded-scan executors: intra-query parallelism over contiguous row shards.

The compiler (via :func:`parallelize`) rewrites lowered operator trees when
the query runs with ``shards > 1``:

* ``Scan → {Filter | FusedFilter | FusedFilterProject | Project}*`` prefixes
  become one :class:`ShardedScanExec`, which resolves the scan once, splits
  its rows into contiguous shards (boundaries aligned to the device's
  micro-batch granularity when the prefix evaluates UDFs), runs the prefix
  per shard on the session's :class:`~repro.core.partition.ShardPool`, and
  stitches outputs back in shard order — bit-identical with serial
  execution by construction (see :mod:`repro.core.partition`).

* Global (group-less) exact aggregates over such a prefix become a
  :class:`ShardedAggregateExec` when every aggregate is *exact-mergeable*
  (COUNT, MIN/MAX, integer SUM/AVG): each shard computes partial states and
  the driver merges them, skipping the stitched materialisation entirely.
  Non-mergeable aggregates (float sums, DISTINCT), GROUP BY, joins, sorts,
  TVFs and trainable pipelines execute after the deterministic merge
  barrier, over the stitched relation — which is bitwise the relation
  serial execution would have produced.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core import tensor_cache as tc
from repro.core.kernels.compiler import KernelFallback
from repro.core.scheduler import new_encode_scope
from repro.core.operators.aggregate import (
    HashAggregateExec,
    SortAggregateExec,
    global_partial,
    grouped_partial,
    merge_global_partials,
    merge_grouped_partials,
    spec_mergeable,
)
from repro.core.operators.base import Operator, Relation
from repro.core.operators.filter import FilterExec, SoftFilterExec
from repro.core.operators.fused import FusedFilterExec, FusedFilterProjectExec
from repro.core.operators.project import ProjectExec
from repro.core.operators.scan import ScanExec, shard_slices
from repro.core.partition import plan_shards, run_sharded, stitch_relations
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.telemetry import annotate, span, tracing
from repro.storage.table import Table

_ROW_WISE_OPS = (FilterExec, FusedFilterExec, FusedFilterProjectExec, ProjectExec)


def _op_exprs(op: Operator) -> list:
    if isinstance(op, FilterExec):
        return [op.predicate]
    if isinstance(op, FusedFilterExec):
        return list(op.predicates)
    if isinstance(op, FusedFilterProjectExec):
        return list(op.predicates) + list(op.exprs)
    if isinstance(op, ProjectExec):
        return list(op.exprs)
    return []


def _exprs_contain_udf(exprs) -> bool:
    return any(e is not None and e.contains_udf() for e in exprs)


def _begin_batcher_scope() -> None:
    """Open a per-task batcher registration scope for this shard task.

    Tasks run under a *copy* of the submitter's context, so the fresh scope
    shadows — never clobbers — the submitting statement's registration:
    when a coordinator thread helps run a shard task, the task's
    ``statement_finished`` retires only the task's own encode stream, not
    the coordinator's statement (the early-flush tradeoff PR 5 documented)."""
    if tc.active_batcher() is not None:
        new_encode_scope()


def _finish_batcher_statement() -> None:
    """Tell an active inference batcher this shard's encode stream ended.

    Shard tasks inherit the coordinator's batcher via their copied context;
    without this, a helper thread that encoded once would count as an
    \"active encoder\" forever and stall every later rendezvous to its
    window timeout."""
    batcher = tc.active_batcher()
    if batcher is not None:
        batcher.statement_finished()


def _post_filter_udf(pipeline: List[Operator]) -> bool:
    """Does any UDF in the pipeline evaluate over an already-*selected* row
    stream? Such a UDF's per-shard micro-batch lengths are the shard's
    filtered remnant — not multiples of the device batch size — so on a
    device that batches rows (``exec_batch_rows > 1``) its kernel shapes
    could not match serial execution's and sharding must be declined."""
    selected = False
    for op in pipeline:
        if isinstance(op, (FilterExec, FusedFilterExec)):
            if selected and _exprs_contain_udf(_op_exprs(op)):
                return True
            selected = True
        elif isinstance(op, FusedFilterProjectExec):
            if selected and _exprs_contain_udf(op.predicates):
                return True
            # The projection expressions always see post-filter rows.
            if _exprs_contain_udf(op.exprs):
                return True
            selected = True
        elif selected and _exprs_contain_udf(_op_exprs(op)):
            return True
    return False


class _ShardedBase(Operator):
    def __init__(self, scan: ScanExec, pipeline: List[Operator], pool,
                 shards: int, min_rows: int):
        super().__init__()
        self.scan = scan
        self.pipeline = list(pipeline)
        self.pool = pool
        self.shards = int(shards)
        self.min_rows = int(min_rows)
        # Optional whole-pipeline kernel (attached by the compiler's
        # pipeline-fusion pass): runs the row-wise body as one fused
        # callable per shard, with the per-operator loop as runtime oracle.
        self.compiled_pipeline = None
        self.register_module("scan_op", scan)
        for i, op in enumerate(self.pipeline):
            self.register_module(f"stage{i}", op)
        self._pipeline_has_udf = any(
            _exprs_contain_udf(_op_exprs(op)) for op in self.pipeline)
        self._post_filter_udf = _post_filter_udf(self.pipeline)
        self._pipeline_filters = any(
            isinstance(op, (FilterExec, FusedFilterExec,
                            FusedFilterProjectExec))
            for op in self.pipeline)

    def _bounds(self, num_rows: int, extra_udf: bool = False):
        from repro.core.partition import default_shards
        shards = self.shards if self.shards > 0 else default_shards()
        align = 1
        if self._pipeline_has_udf or extra_udf:
            # Shard boundaries land on micro-batch multiples so per-shard
            # UDF dispatch reproduces serial execution's kernel shapes.
            align = self.scan.device.profile.exec_batch_rows
        if align > 1 and (self._post_filter_udf
                          or (extra_udf and self._pipeline_filters)):
            # A UDF over a *filtered* stream (including aggregate arguments
            # evaluated after a filtering pipeline) batches over remnant
            # lengths no boundary alignment can control: on a row-batching
            # device the only bit-safe execution is serial.
            return plan_shards(num_rows, 1, self.min_rows, align)
        return plan_shards(num_rows, shards, self.min_rows, align)

    def _run_pipeline(self, relation: Relation) -> Relation:
        if self.compiled_pipeline is not None:
            try:
                result = self.compiled_pipeline.run(relation)
            except KernelFallback:
                annotate(path="fallback")
            else:
                annotate(path="pipeline")
                return result
        if not tracing():
            for op in self.pipeline:
                relation = op(relation)
            return relation
        # Traced: time each fused stage so EXPLAIN ANALYZE can attribute
        # kernel-vs-fallback paths (annotated by the compiled operators)
        # stage by stage, inside whichever shard span is open.
        for op in self.pipeline:
            with span("shard_op", op=op.describe(),
                      rows_in=relation.num_rows) as sp:
                relation = op(relation)
                sp.set(rows_out=relation.num_rows)
        return relation

    def _pipeline_text(self) -> str:
        parts = [self.scan.describe()] + [op.describe() for op in self.pipeline]
        text = " -> ".join(parts)
        if self.compiled_pipeline is not None:
            return f"fused[{text}]"
        return text


class ShardedScanExec(_ShardedBase):
    """Partition driver for a row-wise pipeline prefix rooted at a scan."""

    def forward(self, relation=None) -> Relation:
        base = self.scan(None)
        bounds = self._bounds(base.num_rows)
        annotate(shards=len(bounds), base_rows=base.num_rows)
        # Every pipeline execution (serial or per shard) feeds the pool's
        # per-row cost EMA, which resolves parallel_min_rows="auto".
        if len(bounds) <= 1:
            start = time.perf_counter()
            result = self._run_pipeline(base)
            self.pool.observe_pipeline(base.num_rows,
                                       time.perf_counter() - start)
            return result
        tables = shard_slices(base.table, bounds)

        def make_task(table, index):
            def task():
                _begin_batcher_scope()
                start = time.perf_counter()
                # Shard tasks run under a copy of the submitter's context,
                # so this span nests inside the sharded operator's span
                # (via the barrier span) even on a helper thread.
                with span("shard", index=index, rows=table.num_rows):
                    try:
                        return self._run_pipeline(Relation(table))
                    finally:
                        self.pool.observe_pipeline(
                            table.num_rows, time.perf_counter() - start)
                        _finish_batcher_statement()
            return task

        # The barrier span covers submit → all shards done (the coordinator
        # helps run tasks, so its duration is the true stitch barrier wait).
        with span("shard_barrier", shards=len(tables)):
            results = run_sharded(
                self.pool, [make_task(t, i) for i, t in enumerate(tables)])
        with span("stitch", shards=len(results)):
            return stitch_relations(results, base_rows=base.num_rows)

    def describe(self) -> str:
        return (f"ShardedScan(shards={self.shards}, "
                f"min_rows={self.min_rows}): {self._pipeline_text()}")


class ShardedAggregateExec(_ShardedBase):
    """Global algebraic aggregation over a sharded pipeline prefix.

    Each shard runs the row-wise prefix, evaluates the aggregate inputs,
    and reduces them to partial states; the driver merges the partials.
    Only lowered for spec lists where the merge is bit-identical with
    aggregating the whole relation (see ``spec_mergeable``).
    """

    def __init__(self, agg, scan: ScanExec, pipeline: List[Operator], pool,
                 shards: int, min_rows: int):
        super().__init__(scan, pipeline, pool, shards, min_rows)
        self.agg = agg                      # the serial aggregate operator
        self.register_module("agg_op", agg)
        self._agg_has_udf = _exprs_contain_udf(
            [spec.arg for spec in agg.aggregates])

    def forward(self, relation=None) -> Relation:
        base = self.scan(None)
        bounds = self._bounds(base.num_rows, extra_udf=self._agg_has_udf)
        annotate(shards=len(bounds), base_rows=base.num_rows)
        if len(bounds) <= 1:
            return self.agg(self._run_pipeline(base))
        tables = shard_slices(base.table, bounds)
        specs = self.agg.aggregates

        def make_task(table, index):
            def task():
                _begin_batcher_scope()
                with span("shard", index=index, rows=table.num_rows):
                    try:
                        rel = self._run_pipeline(Relation(table))
                        evaluator = ExpressionEvaluator(rel.table)
                        partials = []
                        for spec in specs:
                            arg = (evaluator.evaluate_column(spec.arg, spec.name)
                                   if spec.arg is not None else None)
                            partials.append(
                                global_partial(spec, arg, rel.num_rows))
                        return partials
                    finally:
                        _finish_batcher_statement()
            return task

        with span("shard_barrier", shards=len(tables)):
            shard_partials = run_sharded(
                self.pool, [make_task(t, i) for i, t in enumerate(tables)])
        with span("merge", shards=len(shard_partials)):
            columns = [
                merge_global_partials(spec, [p[i] for p in shard_partials],
                                      base.device)
                for i, spec in enumerate(specs)
            ]
            return Relation(Table(base.table.name, columns))

    def describe(self) -> str:
        aggs = ", ".join(str(s) for s in self.agg.aggregates)
        return (f"ShardedAggregate([{aggs}], shards={self.shards}): "
                f"{self._pipeline_text()}")


class ShardedGroupedAggregateExec(_ShardedBase):
    """Grouped (GROUP BY) aggregation over a sharded pipeline prefix.

    Each shard runs the row-wise prefix and reduces its rows to per-group
    partial states with the sort-aggregate core; the driver merges the
    per-shard ``(representative keys, partial vectors)`` at the barrier —
    bit-identical with the serial sort aggregate because shard-major
    concatenation preserves row order and the merge reruns the identical
    stable sort + change-point grouping over the representatives. Only
    lowered for the sort implementation with every spec exact-mergeable.
    """

    def __init__(self, agg: SortAggregateExec, scan: ScanExec,
                 pipeline: List[Operator], pool, shards: int, min_rows: int):
        super().__init__(scan, pipeline, pool, shards, min_rows)
        self.agg = agg                      # the serial aggregate operator
        self.register_module("agg_op", agg)
        self._agg_has_udf = _exprs_contain_udf(
            list(agg.group_exprs) + [spec.arg for spec in agg.aggregates])

    def forward(self, relation=None) -> Relation:
        base = self.scan(None)
        bounds = self._bounds(base.num_rows, extra_udf=self._agg_has_udf)
        annotate(shards=len(bounds), base_rows=base.num_rows)
        if len(bounds) <= 1:
            return self.agg(self._run_pipeline(base))
        tables = shard_slices(base.table, bounds)
        agg = self.agg

        def make_task(table, index):
            def task():
                _begin_batcher_scope()
                with span("shard", index=index, rows=table.num_rows):
                    try:
                        rel = self._run_pipeline(Relation(table))
                        keys, agg_inputs = agg._evaluate_inputs(rel)
                        return grouped_partial(agg.aggregates, keys,
                                               agg.group_names, agg_inputs,
                                               rel.num_rows)
                    finally:
                        _finish_batcher_statement()
            return task

        with span("shard_barrier", shards=len(tables)):
            shard_partials = run_sharded(
                self.pool, [make_task(t, i) for i, t in enumerate(tables)])
        with span("merge", shards=len(shard_partials),
                  groups=sum(p.groups for p in shard_partials)):
            return merge_grouped_partials(agg, shard_partials, base.device,
                                          base.table.name)

    def describe(self) -> str:
        aggs = ", ".join(str(s) for s in self.agg.aggregates)
        return (f"ShardedGroupedAggregate(groups={self.agg.group_names}, "
                f"[{aggs}], shards={self.shards}): {self._pipeline_text()}")


# ----------------------------------------------------------------------
# The plan transform
# ----------------------------------------------------------------------
def tree_has_soft(node) -> bool:
    """Does any operator in the tree produce or consume soft row weights?

    Soft pipelines carry per-row weight tensors that the deterministic
    stitch barrier cannot merge (``stitch_relations`` raises on them at
    runtime); the parallelize/exchange rewrites consult this at plan time
    so a weighted plan executes serially instead of erroring mid-flight.
    """
    from repro.core.operators.soft_aggregate import SoftAggregateExec
    if isinstance(node.op, (SoftFilterExec, SoftAggregateExec)):
        return True
    return any(tree_has_soft(child) for child in node._children_nodes)


def _match_chain(node) -> Optional[tuple]:
    """``(scan_op, [row-wise ops bottom-up])`` when ``node`` roots a
    shardable pipeline prefix, else None."""
    ops: List[Operator] = []
    current = node
    while isinstance(current.op, _ROW_WISE_OPS):
        children = current._children_nodes
        if len(children) != 1:
            return None
        ops.append(current.op)
        current = children[0]
    if not isinstance(current.op, ScanExec) or current._children_nodes:
        return None
    return current.op, list(reversed(ops))


def parallelize(root, config, pool, exec_node_cls):
    """Rewrite a lowered tree for intra-query parallelism.

    ``exec_node_cls`` is :class:`repro.core.compiled_query.ExecNode`
    (passed in to keep this module import-light). Aggregate nodes with
    mergeable specs become partial-aggregate drivers; remaining shardable
    prefixes become sharded scans; everything else is rebuilt unchanged
    around the recursion.
    """
    if tree_has_soft(root):
        # Weighted/soft pipelines must never reach the stitch barrier (it
        # raises on per-row weights at runtime): decline sharding entirely.
        return root
    shards = config.shards
    min_rows = config.parallel_min_rows

    def visit(node):
        op = node.op
        if isinstance(op, (SortAggregateExec, HashAggregateExec)) \
                and not op.group_exprs \
                and all(spec_mergeable(s) for s in op.aggregates) \
                and len(node._children_nodes) == 1:
            chain = _match_chain(node._children_nodes[0])
            if chain is not None:
                scan, pipeline = chain
                return exec_node_cls(
                    ShardedAggregateExec(op, scan, pipeline, pool,
                                         shards, min_rows), [])
        # Grouped aggregates shard only on the sort implementation: the
        # grouped-partial merge reruns the sort-aggregate core, so its
        # group order and representative-row selection match that operator
        # (the hash variant behind GROUPBY_IMPL stays serial).
        if type(op) is SortAggregateExec \
                and op.group_exprs \
                and all(spec_mergeable(s) for s in op.aggregates) \
                and len(node._children_nodes) == 1:
            chain = _match_chain(node._children_nodes[0])
            if chain is not None:
                scan, pipeline = chain
                return exec_node_cls(
                    ShardedGroupedAggregateExec(op, scan, pipeline, pool,
                                                shards, min_rows), [])
        chain = _match_chain(node)
        if chain is not None and chain[1]:
            scan, pipeline = chain
            return exec_node_cls(
                ShardedScanExec(scan, pipeline, pool, shards, min_rows), [])
        return exec_node_cls(op, [visit(c) for c in node._children_nodes])

    return visit(root)
