"""Sort, Top-K, Limit and Distinct operators."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.operators.base import Operator, Relation
from repro.sql.bound import BoundExpr
from repro.storage.column import Column
from repro.storage.encodings import ProbabilityEncoding


def _sort_array(column: Column, ascending: bool) -> np.ndarray:
    """Numeric array whose ascending order realises the requested ordering.

    Dictionary codes already sort like their strings (order-preserving
    encoding), so no decode is needed — the paper's motivation for keeping
    the dictionary sorted.
    """
    if isinstance(column.encoding, ProbabilityEncoding):
        data = column.encoding.hard_codes(column.tensor).astype(np.float64)
    else:
        data = column.tensor.detach().data
        if data.ndim != 1:
            raise ExecutionError("cannot ORDER BY a multi-dimensional column")
        data = data.astype(np.float64)
    if not ascending:
        data = -data
        # Keep NaNs last under both orders.
        data[np.isnan(data)] = np.inf
    return data


class SortExec(Operator):
    def __init__(self, keys: List[Tuple[BoundExpr, bool]]):
        super().__init__()
        self.keys = keys
        self._register_expr_udfs([e for e, _ in keys])

    def forward(self, relation: Relation) -> Relation:
        if relation.num_rows <= 1:
            return relation
        evaluator = ExpressionEvaluator(relation.table)
        arrays = [
            _sort_array(evaluator.evaluate_column(expr), ascending)
            for expr, ascending in self.keys
        ]
        order = np.lexsort(tuple(reversed(arrays)))
        table = relation.table.take(order)
        weights = relation.weights[order.tolist()] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"


class TopKExec(Operator):
    """Fused ORDER BY + LIMIT using argpartition (avoids a full sort)."""

    def __init__(self, keys: List[Tuple[BoundExpr, bool]], k: int, offset: int = 0):
        super().__init__()
        self.keys = keys
        self.k = k
        self.offset = offset
        self._register_expr_udfs([e for e, _ in keys])

    def forward(self, relation: Relation) -> Relation:
        n = relation.num_rows
        want = self.k + self.offset
        if n <= want or len(self.keys) > 1:
            sorted_rel = SortExec(self.keys)(relation)
            return LimitExec(self.k, self.offset)(sorted_rel)
        evaluator = ExpressionEvaluator(relation.table)
        expr, ascending = self.keys[0]
        array = _sort_array(evaluator.evaluate_column(expr), ascending)
        candidates = np.argpartition(array, want - 1)[:want]
        candidates = candidates[np.argsort(array[candidates], kind="stable")]
        chosen = candidates[self.offset:self.offset + self.k]
        weights = relation.weights[chosen.tolist()] if relation.weights is not None else None
        return Relation(relation.table.take(chosen), weights)

    def describe(self) -> str:
        return f"TopK(k={self.k})"


class LimitExec(Operator):
    def __init__(self, count: int, offset: int = 0):
        super().__init__()
        self.count = count
        self.offset = offset

    def forward(self, relation: Relation) -> Relation:
        indices = np.arange(self.offset, min(self.offset + self.count, relation.num_rows))
        table = relation.table.take(indices)
        weights = relation.weights[indices.tolist()] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return f"Limit({self.count}, offset={self.offset})"


class DistinctExec(Operator):
    def forward(self, relation: Relation) -> Relation:
        if relation.num_rows == 0:
            return relation
        # Factorize each key column separately: casting int64 through float64
        # collapses distinct keys above 2^53 (the HashAggregate bug class).
        codes = []
        for column in relation.table.columns:
            data = column.tensor.detach().data
            if data.ndim != 1:
                raise ExecutionError("DISTINCT over tensor columns is not supported")
            _, inverse = np.unique(data, return_inverse=True)
            codes.append(inverse.astype(np.int64))
        stacked = np.stack(codes, axis=1)
        _, first = np.unique(stacked, axis=0, return_index=True)
        keep = np.sort(first)      # preserve first-occurrence order
        weights = relation.weights[keep.tolist()] if relation.weights is not None else None
        return Relation(relation.table.take(keep), weights)
