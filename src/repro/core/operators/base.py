"""Operator base classes and the Relation wrapper.

Paper §2: "TDP compiles [the physical plan] into a sequence of PyTorch
models, one per operator". Accordingly every physical operator here is an
``nn.Module`` whose ``forward`` maps a :class:`Relation` to a
:class:`Relation`; soft (differentiable) operators additionally carry row
*weights* — the continuous relaxation of filtering.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.sql import bound as b
from repro.storage.table import Table
from repro.tcr.nn.module import Module
from repro.tcr.tensor import Tensor


@dataclasses.dataclass
class Relation:
    """A table flowing between operators, plus optional soft row weights.

    ``weights`` is None in exact execution. Under soft filters it is a
    float tensor of shape (num_rows,) in [0, 1]; soft aggregates consume it
    as fractional row multiplicity.
    """

    table: Table
    weights: Optional[Tensor] = None

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def device(self):
        return self.table.device


class Operator(Module):
    """Base class for physical operators."""

    def forward(self, relation: Relation) -> Relation:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def _register_expr_udfs(self, exprs) -> None:
        """Register nn.Modules owned by UDFs inside expressions, so the
        compiled query's ``parameters()`` reaches them."""
        counter = 0
        for expr in exprs:
            for udf in _collect_udfs(expr):
                for module in udf.modules:
                    self.register_module(f"udf_{udf.name}_{counter}", module)
                    counter += 1


def _collect_udfs(expr: b.BoundExpr) -> List[object]:
    found = []

    def walk(node):
        if isinstance(node, b.BCall):
            found.append(node.udf)
            for arg in node.args:
                walk(arg)
        elif isinstance(node, b.BBinary):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, b.BUnary):
            walk(node.operand)
        elif isinstance(node, b.BBuiltin):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, b.BBetween):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, (b.BIn, b.BLike, b.BIsNull)):
            walk(node.operand)
        elif isinstance(node, b.BCase):
            for cond, value in node.whens:
                walk(cond)
                walk(value)
            if node.else_ is not None:
                walk(node.else_)
        elif isinstance(node, b.BCast):
            walk(node.operand)

    if expr is not None:
        walk(expr)
    return found
