"""Fused Filter/Project executors (single-pass pipeline fragments).

The seed executed every operator as a separate materialising pass: each
Filter conjunct gathered *all* columns through ``Table.take`` before the
next operator ran. Following TQP's compile-into-one-tensor-program design,
the compiler now collapses adjacent Filter→Filter, Filter→Project and
Project→Project pairs into the executors here, which evaluate every
expression against one shared :class:`ExpressionEvaluator` and gather each
referenced column at most once.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.expr_eval import ExpressionEvaluator, normalize_strings
from repro.core.operators.base import Operator, Relation
from repro.errors import ExecutionError
from repro.sql import bound as b
from repro.storage.table import Table


def substitute_columns(expr: b.BoundExpr, inner_exprs: List[b.BoundExpr]) -> b.BoundExpr:
    """Inline an inner projection: replace ``BColumn(i)`` with ``inner_exprs[i]``.

    This is classic projection merging — the substituted expression evaluates
    directly against the inner projection's *input*, removing one
    materialisation.
    """
    if isinstance(expr, b.BColumn):
        return inner_exprs[expr.index]
    if isinstance(expr, b.BLiteral):
        return expr
    if isinstance(expr, b.BBinary):
        return b.BBinary(expr.op, substitute_columns(expr.left, inner_exprs),
                         substitute_columns(expr.right, inner_exprs), expr.data_type)
    if isinstance(expr, b.BUnary):
        return b.BUnary(expr.op, substitute_columns(expr.operand, inner_exprs),
                        expr.data_type)
    if isinstance(expr, b.BCall):
        return b.BCall(expr.udf, [substitute_columns(a, inner_exprs) for a in expr.args],
                       expr.data_type)
    if isinstance(expr, b.BBuiltin):
        return b.BBuiltin(expr.name,
                          [substitute_columns(a, inner_exprs) for a in expr.args],
                          expr.data_type)
    if isinstance(expr, b.BBetween):
        return b.BBetween(substitute_columns(expr.operand, inner_exprs),
                          substitute_columns(expr.low, inner_exprs),
                          substitute_columns(expr.high, inner_exprs), expr.negated)
    if isinstance(expr, b.BIn):
        return b.BIn(substitute_columns(expr.operand, inner_exprs), expr.values,
                     expr.negated)
    if isinstance(expr, b.BLike):
        return b.BLike(substitute_columns(expr.operand, inner_exprs), expr.pattern,
                       expr.negated)
    if isinstance(expr, b.BIsNull):
        return b.BIsNull(substitute_columns(expr.operand, inner_exprs), expr.negated)
    if isinstance(expr, b.BCase):
        whens = [(substitute_columns(c, inner_exprs), substitute_columns(v, inner_exprs))
                 for c, v in expr.whens]
        else_ = substitute_columns(expr.else_, inner_exprs) if expr.else_ is not None \
            else None
        return b.BCase(whens, else_, expr.data_type)
    if isinstance(expr, b.BCast):
        return b.BCast(substitute_columns(expr.operand, inner_exprs), expr.data_type)
    raise ExecutionError(f"cannot substitute into {type(expr).__name__}")


def can_substitute(outer_exprs: List[b.BoundExpr],
                   inner_exprs: List[b.BoundExpr]) -> bool:
    """Projection merging is safe unless it would duplicate a UDF call
    (UDFs are the one expensive, possibly-stateful node kind)."""
    return not any(e.contains_udf() for e in inner_exprs)


class _GatherEvaluator(ExpressionEvaluator):
    """Evaluator over a *row-filtered view* of a table.

    Columns are gathered through the selection indices lazily, each at most
    once — the fused Filter→Project pass never materialises columns the
    projection does not read.
    """

    def __init__(self, table: Table, indices: np.ndarray):
        self.table = table
        self.indices = indices
        self.num_rows = len(indices)
        self.device = table.device
        self._gathered = {}
        self._memo = {}

    def _eval_BColumn(self, expr: b.BColumn):
        column = self._gathered.get(expr.index)
        if column is None:
            columns = self.table.columns
            if expr.index >= len(columns):
                raise ExecutionError(
                    f"column index {expr.index} out of range for table with "
                    f"{len(columns)} columns"
                )
            column = normalize_strings(columns[expr.index].take(self.indices))
            self._gathered[expr.index] = column
        return column


def _combined_mask(evaluator: ExpressionEvaluator,
                   predicates: List[b.BoundExpr]) -> np.ndarray:
    mask = evaluator.evaluate_mask(predicates[0])
    for predicate in predicates[1:]:
        mask = mask & evaluator.evaluate_mask(predicate)
    return mask


class FusedFilterExec(Operator):
    """N conjuncts, one evaluator, one row gather (vs. one ``Table.take``
    per conjunct in the unfused cascade)."""

    def __init__(self, predicates: List[b.BoundExpr]):
        super().__init__()
        self.predicates = predicates
        self._register_expr_udfs(predicates)

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        indices = np.flatnonzero(_combined_mask(evaluator, self.predicates))
        table = relation.table.take(indices)
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return f"FusedFilter({' AND '.join(str(p) for p in self.predicates)})"


class FusedFilterProjectExec(Operator):
    """Filter→Project in one pass: evaluate the predicate masks on the input,
    then evaluate the projection over the selected rows, gathering only the
    columns the projection references (no intermediate full-width table)."""

    def __init__(self, predicates: List[b.BoundExpr], exprs: List[b.BoundExpr],
                 names: List[str]):
        super().__init__()
        self.predicates = predicates
        self.exprs = exprs
        self.names = names
        self._register_expr_udfs(list(predicates) + list(exprs))

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        indices = np.flatnonzero(_combined_mask(evaluator, self.predicates))
        projected = _GatherEvaluator(relation.table, indices)
        columns = [
            projected.evaluate_column(expr, name)
            for expr, name in zip(self.exprs, self.names)
        ]
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(Table(relation.table.name, columns), weights)

    def describe(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates)
        return f"FusedFilterProject([{preds}] -> {', '.join(self.names)})"
