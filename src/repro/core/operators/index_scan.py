"""Vector-index physical operators: ANN top-k scans and index DDL.

``IndexScanExec`` is what the ``vector_index`` optimizer rule lowers
:class:`~repro.sql.logical.TopKSimilarity` to. Per probe it:

1. resolves the index entry through the session's ``IndexManager`` —
   rebuilding lazily if the base table changed since the last build;
2. embeds the query text with the model behind the similarity UDF and
   probes ``nprobe`` IVF cells (exact scoring inside probed cells);
3. gathers the candidate rows, post-filters them with any residual WHERE
   conjuncts (over-fetching first, escalating to a full probe when too few
   survive), and
4. re-ranks/projects *exactly*: the final projection — including the
   similarity expression itself — is evaluated by the ordinary expression
   interpreter over just the chosen rows, so the emitted scores are
   bit-identical to the unindexed plan's.

When the index cannot serve the query at run time (entry dropped, model
mismatch, embedding failure) the operator degrades to the exact
Filter→Project→TopK pipeline it replaced.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import CatalogError, ExecutionError
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.operators.base import Operator, Relation
from repro.core.operators.filter import FilterExec
from repro.core.operators.project import ProjectExec
from repro.core.operators.sort import TopKExec
from repro.core.telemetry import annotate
from repro.sql import bound as b
from repro.storage.column import Column
from repro.storage.table import Table


class IndexScanExec(Operator):
    """Probe an IVF index for the top-k rows by similarity, then re-rank."""

    # With residual predicates we cannot know selectivity up front: fetch a
    # multiple of k, and escalate to an exhaustive probe if too few survive.
    OVERFETCH = 4

    def __init__(self, manager, plan, nprobe: Optional[int] = None,
                 use_tensor_cache: bool = True, shard_pool=None):
        super().__init__()
        self.manager = manager
        # extra_config={"tensor_cache": False} also covers the lazy build
        # this operator may trigger (not just expression evaluation).
        self.use_tensor_cache = use_tensor_cache
        # When intra-query parallelism is on, per-cell probe scoring fans
        # out over the session pool (bit-identical either way; see
        # IVFFlatIndex.search).
        self.shard_pool = shard_pool
        self.index_name = plan.index_name
        self.query_text = plan.query_text
        self.sim_expr = plan.sim_expr
        self.exprs = list(plan.exprs)
        self.names = [name for name, _ in plan.schema]
        self.residual = plan.residual
        self.k = plan.k
        self.offset = plan.offset
        # Per-query probe-width hint (extra_config={"nprobe": N}); None
        # falls back to the index's default.
        self.nprobe_hint = nprobe
        self._register_expr_udfs(
            self.exprs + [self.sim_expr]
            + ([self.residual] if self.residual else []))

    @property
    def _sim_udf(self):
        return self.sim_expr.udf if isinstance(self.sim_expr, b.BCall) else None

    def forward(self, relation: Relation) -> Relation:
        entry = self.manager.lookup(self.index_name)
        udf = self._sim_udf
        if entry is None or udf is None or not self.manager.supports(entry, udf):
            annotate(access="exact_fallback")
            return self._exact(relation)
        try:
            index = self.manager.ensure_built(
                entry, udf, use_tensor_cache=self.use_tensor_cache)
            query_vec = self.manager.embed_query(entry, self.query_text)
        except (CatalogError, ExecutionError):
            annotate(access="exact_fallback")
            return self._exact(relation)
        annotate(access="ann_probe", index=self.index_name)
        self.manager.record_probe()

        n = relation.num_rows
        want = self.k + self.offset
        nprobe = min(self.nprobe_hint or entry.nprobe, index.num_lists)
        pool = self.shard_pool
        if self.residual is None:
            ids, _ = index.search(query_vec, want, nprobe=nprobe, pool=pool)
            if len(ids) < min(want, n):
                # Probed cells were too sparse: escalate to a full probe.
                ids, _ = index.search(query_vec, want, nprobe=index.num_lists,
                                      pool=pool)
        else:
            fetch = min(n, max(self.OVERFETCH * want, want + 16))
            ids, _ = index.search(query_vec, fetch, nprobe=nprobe, pool=pool)
            ids = self._apply_residual(relation, ids)
            if len(ids) < want and (fetch < n or nprobe < index.num_lists):
                # Escalate: probe every cell and rescue the exact answer.
                ids, _ = index.search(query_vec, n, nprobe=index.num_lists,
                                      pool=pool)
                ids = self._apply_residual(relation, ids)
        chosen = ids[self.offset:want]
        subset = Relation(relation.table.take(chosen))
        return ProjectExec(self.exprs, self.names)(subset)

    def _apply_residual(self, relation: Relation, ids: np.ndarray) -> np.ndarray:
        """Keep candidate ids (already score-ordered) passing the residual."""
        if ids.size == 0:
            return ids
        candidates = relation.table.take(ids)
        mask = ExpressionEvaluator(candidates).evaluate_mask(self.residual)
        return ids[mask]

    def _exact(self, relation: Relation) -> Relation:
        """Unindexed fallback: Filter -> exact TopK by sim_expr -> Project."""
        if self.residual is not None:
            relation = FilterExec(self.residual)(relation)
        top = TopKExec([(self.sim_expr, False)], self.k, self.offset)(relation)
        return ProjectExec(self.exprs, self.names)(top)

    def describe(self) -> str:
        if self.nprobe_hint is not None:
            nprobe = f"{self.nprobe_hint} (hint)"
        else:
            entry = self.manager.lookup(self.index_name)
            nprobe = entry.nprobe if entry is not None else "?"
        residual = f", residual={self.residual}" if self.residual is not None else ""
        return (f"IndexScan({self.index_name}, q={self.query_text!r}, "
                f"k={self.k}, nprobe={nprobe}{residual})")


def _status_relation(message: str) -> Relation:
    column = Column.from_values("status", np.asarray([message], dtype=object))
    return Relation(Table("result", [column]))


class CreateIndexExec(Operator):
    """Register a vector index in the session's IndexManager (lazy build)."""

    def __init__(self, manager, plan):
        super().__init__()
        self.manager = manager
        self.plan = plan

    def forward(self, relation: Relation = None) -> Relation:
        spec = self.plan
        self.manager.create(spec.name, spec.table, spec.column, cells=spec.cells,
                            nprobe=spec.nprobe, seed=spec.seed)
        return _status_relation(
            f"created vector index {spec.name} on {spec.table}({spec.column})"
        )

    def describe(self) -> str:
        return f"CreateIndex({self.plan.name})"


class DropIndexExec(Operator):
    def __init__(self, manager, plan):
        super().__init__()
        self.manager = manager
        self.plan = plan

    def forward(self, relation: Relation = None) -> Relation:
        dropped = self.manager.drop(self.plan.name, if_exists=self.plan.if_exists)
        message = (f"dropped index {self.plan.name}" if dropped
                   else f"index {self.plan.name} does not exist, skipped")
        return _status_relation(message)

    def describe(self) -> str:
        return f"DropIndex({self.plan.name})"


class ShowIndexesExec(Operator):
    def __init__(self, manager):
        super().__init__()
        self.manager = manager

    def forward(self, relation: Relation = None) -> Relation:
        entries = self.manager.entries()
        columns = [
            Column.from_values("name", np.asarray([e.name for e in entries], dtype=object)),
            Column.from_values("table", np.asarray([e.table for e in entries], dtype=object)),
            Column.from_values("column", np.asarray([e.column for e in entries], dtype=object)),
            Column.from_values("cells", np.asarray([e.cells for e in entries], dtype=np.int64)),
            Column.from_values("nprobe", np.asarray([e.nprobe for e in entries], dtype=np.int64)),
            Column.from_values("rows", np.asarray(
                [len(e.index) if e.is_built else 0 for e in entries], dtype=np.int64)),
            Column.from_values("status", np.asarray(
                [self.manager.status(e) for e in entries], dtype=object)),
        ]
        return Relation(Table("indexes", columns))

    def describe(self) -> str:
        return "ShowIndexes"
