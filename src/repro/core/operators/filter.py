"""Filter operator: exact boolean selection or soft row weighting."""

from __future__ import annotations

import numpy as np

from repro.core.expr_eval import ExpressionEvaluator
from repro.core.operators.base import Operator, Relation
from repro.core.soft.relaxations import soft_predicate
from repro.sql import bound as b


class FilterExec(Operator):
    """Exact filter: evaluate the predicate to a mask and gather rows."""

    def __init__(self, predicate: b.BoundExpr):
        super().__init__()
        self.predicate = predicate
        self._register_expr_udfs([predicate])

    def forward(self, relation: Relation) -> Relation:
        evaluator = ExpressionEvaluator(relation.table)
        mask = evaluator.evaluate_mask(self.predicate)
        indices = np.flatnonzero(mask)
        table = relation.table.take(indices)
        weights = relation.weights[indices] if relation.weights is not None else None
        return Relation(table, weights)

    def describe(self) -> str:
        return f"Filter({self.predicate})"


class SoftFilterExec(Operator):
    """Soft filter: keep all rows, emit differentiable membership weights.

    In eval mode it degrades to the exact filter so deployed queries return
    hard results (the paper's soft→exact swap at inference time).
    """

    def __init__(self, predicate: b.BoundExpr, temperature: float):
        super().__init__()
        self.predicate = predicate
        self.temperature = temperature
        self._register_expr_udfs([predicate])

    def forward(self, relation: Relation) -> Relation:
        if not self.training:
            return FilterExec(self.predicate)(relation)
        evaluator = ExpressionEvaluator(relation.table)
        weights = soft_predicate(self.predicate, evaluator, self.temperature)
        if relation.weights is not None:
            weights = weights * relation.weights
        return Relation(relation.table, weights)

    def describe(self) -> str:
        return f"SoftFilter({self.predicate}, tau={self.temperature})"
