"""The soft group-by operator (training mode) with exact dense swap (eval).

This is the operator pair drawn in the paper's Fig 1: during training,
``soft_groupby``/``soft_count`` produce differentiable expected counts over
the dense domain cross-product; in eval mode the same operator argmax-decodes
the PE columns and counts exactly over the *same* dense domain, so output
shape and row order are identical in both modes.

Group keys may mix PE columns with ordinary discrete columns (int/string/
bool): discrete keys contribute exact one-hot membership (no gradient), so a
query can group by, e.g., a grid id *and* two PE parser outputs — which lets
trainable queries process a mini-batch of grids per step.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.core.operators.aggregate import _AggregateBase
from repro.core.operators.base import Relation
from repro.core.soft.soft_groupby import dense_domain_columns
from repro.storage.column import Column
from repro.storage.encodings import (
    DictionaryEncoding,
    EncodedTensor,
    PlainEncoding,
    ProbabilityEncoding,
)
from repro.storage.table import Table
from repro.tcr import ops
from repro.tcr.tensor import Tensor, ones


class _KeyInfo:
    """Per-key membership data: a (rows, k) tensor + the domain values."""

    __slots__ = ("membership", "domain", "codes", "cardinality", "differentiable")

    def __init__(self, membership: Tensor, domain: np.ndarray,
                 codes: np.ndarray, differentiable: bool):
        self.membership = membership
        self.domain = domain
        self.codes = codes
        self.cardinality = len(domain)
        self.differentiable = differentiable


def _key_info(column: Column) -> _KeyInfo:
    encoding = column.encoding
    if isinstance(encoding, ProbabilityEncoding):
        codes = encoding.hard_codes(column.tensor)
        return _KeyInfo(column.tensor, encoding.domain, codes, True)
    # Discrete column: exact one-hot membership over the observed domain.
    data = column.tensor.detach().data
    if data.ndim != 1:
        raise ExecutionError(
            f"soft group-by key {column.name!r} must be a scalar or PE column"
        )
    if isinstance(encoding, DictionaryEncoding):
        uniques, codes = np.unique(data, return_inverse=True)
        domain = encoding.strings[uniques]
    else:
        domain, codes = np.unique(data, return_inverse=True)
    onehot = np.zeros((data.shape[0], len(domain)), dtype=np.float32)
    onehot[np.arange(data.shape[0]), codes] = 1.0
    return _KeyInfo(Tensor(onehot, device=column.device), domain,
                    codes.astype(np.int64), False)


class SoftAggregateExec(_AggregateBase):
    def forward(self, relation: Relation) -> Relation:
        keys, agg_inputs = self._evaluate_inputs(relation)
        if not keys:
            raise ExecutionError("soft aggregation requires at least one GROUP BY column")
        if not any(isinstance(k.encoding, ProbabilityEncoding) for k in keys):
            raise ExecutionError(
                "soft group-by requires at least one Probability-Encoded key; "
                "encode UDF outputs with PEEncoding.encode (paper Listing 4)."
            )
        infos = [_key_info(k) for k in keys]

        key_values = dense_domain_columns([info.domain for info in infos])
        columns = [
            Column.from_values(name, values, device=relation.device)
            for name, values in zip(self.group_names, key_values)
        ]

        if self.training:
            columns.extend(self._soft_aggregates(relation, infos, agg_inputs))
        else:
            columns.extend(self._exact_dense_aggregates(relation, infos, agg_inputs))
        return Relation(Table(relation.table.name, columns))

    # ------------------------------------------------------------------
    # Training mode: differentiable expected aggregates
    # ------------------------------------------------------------------
    def _soft_aggregates(self, relation: Relation, infos: List[_KeyInfo],
                         agg_inputs: List[Optional[Column]]) -> List[Column]:
        membership = self._joint_membership(infos, relation.weights,
                                            relation.device)
        counts = ops.sum(membership, dim=0)
        out: List[Column] = []
        for spec, arg in zip(self.aggregates, agg_inputs):
            if spec.distinct:
                raise ExecutionError(f"soft {spec.func}(DISTINCT) is not supported")
            if spec.func == "COUNT":
                result = counts
            elif spec.func == "SUM":
                result = ops.sum(membership * ops.reshape(self._values(arg), (-1, 1)), dim=0)
            elif spec.func == "AVG":
                sums = ops.sum(membership * ops.reshape(self._values(arg), (-1, 1)), dim=0)
                result = sums / (counts + 1e-8)
            else:
                raise ExecutionError(
                    f"{spec.func} has no differentiable relaxation; use COUNT/SUM/AVG"
                )
            out.append(Column(spec.name, EncodedTensor(result, PlainEncoding())))
        return out

    @staticmethod
    def _joint_membership(infos: List[_KeyInfo], weights: Optional[Tensor],
                          device) -> Tensor:
        n = infos[0].membership.shape[0]
        acc = ones(n, 1, device=device)
        width = 1
        for info in infos:
            if info.membership.shape[0] != n:
                raise ExecutionError("group keys must have equal row counts")
            k = info.cardinality
            acc = ops.einsum_pair("rm,rk->rmk", acc, info.membership)
            width *= k
            acc = ops.reshape(acc, (n, width))
        if weights is not None:
            acc = acc * ops.reshape(weights, (-1, 1))
        return acc

    @staticmethod
    def _values(arg: Optional[Column]) -> Tensor:
        if arg is None:
            raise ExecutionError("SUM/AVG require an argument")
        tensor = arg.tensor
        if tensor.ndim != 1:
            raise ExecutionError("soft SUM/AVG require scalar value columns")
        if tensor.dtype.kind != "f":
            tensor = ops.astype(tensor, np.float32)
        return tensor

    # ------------------------------------------------------------------
    # Eval mode: exact counts over the same dense domain
    # ------------------------------------------------------------------
    def _exact_dense_aggregates(self, relation: Relation, infos: List[_KeyInfo],
                                agg_inputs: List[Optional[Column]]) -> List[Column]:
        n = infos[0].membership.shape[0]
        sizes = [info.cardinality for info in infos]
        total = int(np.prod(sizes))
        combined = np.zeros(n, dtype=np.int64)
        for info, size in zip(infos, sizes):
            combined = combined * size + info.codes
        out: List[Column] = []
        for spec, arg in zip(self.aggregates, agg_inputs):
            if spec.func == "COUNT":
                counts = np.bincount(combined, minlength=total).astype(np.int64)
                out.append(Column.from_values(spec.name, counts, device=relation.device))
            elif spec.func in ("SUM", "AVG"):
                values = self._values(arg).detach().data.astype(np.float64)
                sums = np.zeros(total, dtype=np.float64)
                np.add.at(sums, combined, values)
                if spec.func == "AVG":
                    counts = np.bincount(combined, minlength=total)
                    sums = sums / np.maximum(counts, 1)
                out.append(Column.from_values(spec.name, sums.astype(np.float32),
                                              device=relation.device))
            else:
                raise ExecutionError(f"{spec.func} is not supported on PE group keys")
        return out

    def describe(self) -> str:
        return f"SoftAggregate(groups={self.group_names})"
