"""Physical operators (each one an ``nn.Module`` — paper §2)."""

from repro.core.operators.aggregate import HashAggregateExec, SortAggregateExec
from repro.core.operators.base import Operator, Relation
from repro.core.operators.filter import FilterExec, SoftFilterExec
from repro.core.operators.fused import FusedFilterExec, FusedFilterProjectExec
from repro.core.operators.index_scan import (
    CreateIndexExec,
    DropIndexExec,
    IndexScanExec,
    ShowIndexesExec,
)
from repro.core.operators.exchange import (
    ExchangeGroupedAggregateExec,
    HashPartitioner,
    PartitionedJoinExec,
    RangePartitioner,
)
from repro.core.operators.join import JoinExec, equi_join_indices
from repro.core.operators.project import ProjectExec, TVFExec
from repro.core.operators.scan import ScanExec, shared_scans
from repro.core.operators.sharded import ShardedAggregateExec, ShardedScanExec
from repro.core.operators.soft_aggregate import SoftAggregateExec
from repro.core.operators.sort import DistinctExec, LimitExec, SortExec, TopKExec

__all__ = [
    "CreateIndexExec", "DistinctExec", "DropIndexExec",
    "ExchangeGroupedAggregateExec", "FilterExec", "FusedFilterExec",
    "FusedFilterProjectExec", "HashAggregateExec", "HashPartitioner",
    "IndexScanExec", "JoinExec", "LimitExec", "Operator",
    "PartitionedJoinExec", "ProjectExec", "RangePartitioner", "Relation",
    "ScanExec", "ShardedAggregateExec", "ShardedScanExec", "ShowIndexesExec",
    "SoftAggregateExec", "SoftFilterExec", "SortAggregateExec", "SortExec",
    "TVFExec", "TopKExec", "equi_join_indices", "shared_scans",
]
