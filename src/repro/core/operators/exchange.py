"""Exchange operators: hash/range repartitioning between pipeline stages.

PR 5's sharded scans split the *base table* into contiguous row ranges;
everything downstream of the merge barrier stayed serial. This module adds
the second half of the TQP-style story ("Query Processing on Tensor
Computation Runtimes" names an engine-neutral Exchange operator as the step
that carries a single-node tensor engine toward partitioned execution): row
redistribution *between* stages, keyed on data values rather than storage
position.

The determinism contract (docs/EXCHANGE.md) extends the stitch contract of
:mod:`repro.core.partition`:

* **Stable partition function.** Rows are routed by a pure function of
  their *factorised* key codes — both join sides (or all group rows) are
  factorised jointly with ``np.unique``, which collapses NaNs to one code
  and treats ``-0.0 == 0.0``, so every pair of rows that the serial
  operator would treat as key-equal lands in the same partition, in
  original relative row order (the split is a stable argsort).

* **Deterministic assembly.** Each partition's result is exactly the rows
  the serial operator would have produced for that key subset, computed by
  the *same* kernels over rows in the same relative order; the driver then
  restores the serial global order (stable argsort on preserved-side row
  indices for joins, stable key lexsort for grouped aggregates) — so the
  assembled output is bitwise identical with serial execution, which the
  differential harness enforces.

Task bodies are module-level functions over plain numpy arrays wherever
possible (``_partition_join_task``) so a future process-pool backend can
pickle them; grouped-aggregate tasks still close over ``Column``/operator
objects and pin execution to threads — the boundary is documented in
docs/EXCHANGE.md.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.core.operators.aggregate import SortAggregateExec, _key_array
from repro.core.operators.base import Operator, Relation
from repro.core.operators.join import JoinExec, equi_join_indices
from repro.core.partition import default_shards, run_sharded
from repro.core.telemetry import annotate, span
from repro.storage.column import Column, concat_encoded
from repro.storage.encodings import ProbabilityEncoding
from repro.storage.table import Table

# Fibonacci multiplicative mixing constant (2^64 / golden ratio): decorrelates
# the dense factorised codes from the modulus so partition loads stay even.
_MIX = np.uint64(0x9E3779B97F4A7C15)


# ----------------------------------------------------------------------
# Partition functions (module-level, pure: the picklable core)
# ----------------------------------------------------------------------
def hash_partition_ids(codes: np.ndarray, partitions: int) -> np.ndarray:
    """Partition id per row from factorised key codes.

    A pure function of the code value: rows with equal keys (same code by
    construction of the joint factorisation) always land in the same
    partition — the exchange determinism precondition.
    """
    h = codes.astype(np.uint64, copy=True)
    h *= _MIX
    h ^= h >> np.uint64(33)
    return (h % np.uint64(max(int(partitions), 1))).astype(np.int64)


def partition_indices(part_ids: np.ndarray, partitions: int
                      ) -> List[np.ndarray]:
    """Row-index arrays per partition, each in ascending row order.

    The stable argsort preserves original relative row order inside every
    partition, which is what lets per-partition kernels reproduce serial
    execution's row visit order exactly.
    """
    order = np.argsort(part_ids, kind="stable")
    sorted_ids = part_ids[order]
    edges = np.arange(partitions, dtype=part_ids.dtype)
    starts = np.searchsorted(sorted_ids, edges, side="left")
    stops = np.searchsorted(sorted_ids, edges, side="right")
    return [order[s:e] for s, e in zip(starts, stops)]


class HashPartitioner:
    """Hash-repartitioning: route rows by mixed factorised key codes."""

    def __init__(self, partitions: int):
        self.partitions = max(int(partitions), 1)

    def partition(self, codes: np.ndarray) -> List[np.ndarray]:
        return partition_indices(hash_partition_ids(codes, self.partitions),
                                 self.partitions)


class RangePartitioner:
    """Range-repartitioning: route rows by ordered boundary search.

    Used for order-sensitive redistribution (sorted merges, partitioned
    top-k); built from quantile boundaries over a value sample so partition
    loads stay even under skew. NaNs order after every boundary and land in
    the last partition together.
    """

    def __init__(self, boundaries: np.ndarray):
        self.boundaries = np.asarray(boundaries)
        self.partitions = len(self.boundaries) + 1

    @classmethod
    def from_values(cls, values: np.ndarray, partitions: int
                    ) -> "RangePartitioner":
        partitions = max(int(partitions), 1)
        if partitions == 1 or len(values) == 0:
            return cls(np.zeros(0, dtype=np.asarray(values).dtype))
        finite = values[~np.isnan(values)] if values.dtype.kind == "f" else values
        if len(finite) == 0:
            return cls(np.zeros(0, dtype=values.dtype))
        quantiles = np.arange(1, partitions) / partitions
        return cls(np.quantile(finite, quantiles))

    def partition(self, values: np.ndarray) -> List[np.ndarray]:
        ids = np.searchsorted(self.boundaries, values, side="right")
        return partition_indices(ids.astype(np.int64), self.partitions)


def factorize_key_rows(key_arrays: List[np.ndarray]) -> np.ndarray:
    """Dense row code per multi-column key tuple.

    ``np.unique`` gives all NaNs one code and ``-0.0``/``0.0`` one code —
    both required: the serial sort aggregate colocates those rows (NaN
    groups must stay in input order relative to each other, and signed
    zeros form a single group), so the exchange must too.
    """
    if len(key_arrays) == 1:
        _, inverse = np.unique(key_arrays[0], return_inverse=True)
        return inverse.reshape(-1)
    code_cols = []
    for arr in key_arrays:
        _, codes = np.unique(arr, return_inverse=True)
        code_cols.append(codes.reshape(-1).astype(np.int64))
    _, inverse = np.unique(np.stack(code_cols, axis=1), axis=0,
                           return_inverse=True)
    return inverse.reshape(-1)


def _partition_join_task(probe_codes: np.ndarray, build_codes: np.ndarray,
                         probe_idx: np.ndarray, build_idx: np.ndarray,
                         keep_unmatched: bool):
    """Join one hash partition: pure function of numpy inputs (picklable).

    Returns global ``(probe, build)`` row-index pairs. Local indices map to
    global ones through the partition's row-index arrays; ``-1`` (unmatched
    probe row under LEFT/RIGHT semantics) passes through.
    """
    p_local, b_local = equi_join_indices(probe_codes, build_codes,
                                         keep_unmatched_left=keep_unmatched)
    matched = b_local >= 0
    probe_global = probe_idx[p_local]
    build_global = np.where(matched, build_idx[np.where(matched, b_local, 0)],
                            -1)
    return probe_global, build_global


# ----------------------------------------------------------------------
# Partitioned hash join
# ----------------------------------------------------------------------
class PartitionedJoinExec(JoinExec):
    """Hash-exchange both sides on the join keys, join each partition on the
    pool, and reassemble the serial output order.

    Bit-identity argument: the joint factorisation makes key codes
    comparable across sides, the hash routes equal codes to one partition,
    and the stable split keeps each side's rows in ascending row order —
    so every partition's sorted-lookup join produces, per preserved-side
    row, exactly the match list serial execution produces (stable argsort
    of build codes orders equal-key matches by ascending row index in both).
    Each preserved-side row lives in exactly one partition, so the stable
    argsort on preserved-side indices restores exactly the serial pair
    sequence; residual filtering and the gather then run the serial code on
    identical inputs.
    """

    def __init__(self, inner: JoinExec, pool, shards: int, min_rows: int,
                 metrics=None):
        super().__init__(inner.kind, inner.left_keys, inner.right_keys,
                         inner.residual, inner.left_names, inner.right_names)
        self.pool = pool
        self.shards = int(shards)
        self.min_rows = int(min_rows)
        self.metrics = metrics

    def forward(self, left_rel: Relation, right_rel: Relation = None) -> Relation:
        if right_rel is None:
            raise ExecutionError("JoinExec.forward needs two input relations")
        partitions = self.shards if self.shards > 0 else default_shards()
        left_rows = left_rel.table.num_rows
        right_rows = right_rel.table.num_rows
        if (left_rel.weights is not None or right_rel.weights is not None
                or self.kind == "CROSS" or not self.left_keys
                or partitions <= 1 or left_rows == 0 or right_rows == 0
                or left_rows + right_rows < max(self.min_rows, 2)):
            annotate(path="serial")
            return super().forward(left_rel, right_rel)
        left, right = left_rel.table, right_rel.table
        combined_left, combined_right = self._evaluate_key_codes(left, right)
        li, ri = self._partitioned_indices(combined_left, combined_right,
                                           partitions)
        if self.residual is not None:
            li, ri = self._apply_residual(left, right, li, ri)
        return Relation(self._gather(left, right, li, ri))

    def _partitioned_indices(self, combined_left: np.ndarray,
                             combined_right: np.ndarray, partitions: int):
        partitioner = HashPartitioner(partitions)
        l_parts = partitioner.partition(combined_left)
        r_parts = partitioner.partition(combined_right)
        # The preserved (probe) side drives output order: left for
        # INNER/LEFT, right for RIGHT (mirroring the serial dispatch).
        if self.kind == "RIGHT":
            probe_codes, build_codes = combined_right, combined_left
            probe_parts, build_parts = r_parts, l_parts
        else:
            probe_codes, build_codes = combined_left, combined_right
            probe_parts, build_parts = l_parts, r_parts
        keep = self.kind in ("LEFT", "RIGHT")
        live = [i for i in range(partitions) if len(probe_parts[i])]
        rows_moved = len(combined_left) + len(combined_right)
        part_rows = [len(probe_parts[i]) + len(build_parts[i])
                     for i in range(partitions)]
        self._record_exchange(partitions, rows_moved, part_rows)

        def make_task(i):
            p_idx, b_idx = probe_parts[i], build_parts[i]
            pc, bc = probe_codes[p_idx], build_codes[b_idx]

            def task():
                with span("partition", index=i, rows=len(p_idx) + len(b_idx)):
                    return _partition_join_task(pc, bc, p_idx, b_idx, keep)
            return task

        with span("exchange_barrier", partitions=len(live)):
            results = run_sharded(self.pool, [make_task(i) for i in live])
        if results:
            probe_g = np.concatenate([r[0] for r in results])
            build_g = np.concatenate([r[1] for r in results])
        else:
            probe_g = np.zeros(0, dtype=np.int64)
            build_g = np.zeros(0, dtype=np.int64)
        order = np.argsort(probe_g, kind="stable")
        probe_g, build_g = probe_g[order], build_g[order]
        if self.kind == "RIGHT":
            return build_g, probe_g
        return probe_g, build_g

    def _record_exchange(self, partitions: int, rows_moved: int,
                         part_rows: List[int]) -> None:
        mean = rows_moved / partitions if partitions else 0.0
        skew = (max(part_rows) / mean) if mean > 0 else 1.0
        annotate(partitions=partitions, rows_moved=rows_moved,
                 skew=round(float(skew), 3))
        if self.metrics is not None:
            self.metrics.counter("exchange.partitions").inc(partitions)
            self.metrics.counter("exchange.rows_moved").inc(rows_moved)
            self.metrics.gauge("exchange.skew").set(float(skew))

    def describe(self) -> str:
        return f"PartitionedJoin({self.kind}, partitions={self.shards})"


# ----------------------------------------------------------------------
# Repartitioned GROUP BY
# ----------------------------------------------------------------------
class ExchangeGroupedAggregateExec(Operator):
    """Hash-exchange rows on the group keys, aggregate each partition with
    the serial sort-aggregate core, and reassemble the serial group order.

    Unlike PR 8's :class:`ShardedGroupedAggregateExec` (partial states +
    merge, restricted to exact-mergeable specs), the exchange sends *all*
    rows of a group to one partition — no per-group reduction is reordered
    or split, so even float SUM/AVG and COUNT(DISTINCT) run partitioned
    bit-identically: each group's ``reduceat`` sees the same rows in the
    same order serial execution feeds it.

    Assembly: per-partition results concatenate (partition-major), then a
    stable lexsort of the merged key arrays restores the serial group
    order. Lexsort ties can only involve groups whose keys are equal or
    all-NaN per column — such rows share a factorised code, hence a
    partition, where the per-partition sort already ordered them by
    original row order (exactly the serial tie-break).
    """

    def __init__(self, agg: SortAggregateExec, pool, shards: int,
                 min_rows: int, metrics=None):
        super().__init__()
        self.agg = agg                      # the serial aggregate operator
        self.pool = pool
        self.shards = int(shards)
        self.min_rows = int(min_rows)
        self.metrics = metrics
        self.register_module("agg_op", agg)

    def forward(self, relation: Relation) -> Relation:
        agg = self.agg
        n = relation.num_rows
        partitions = self.shards if self.shards > 0 else default_shards()
        if (relation.weights is not None or partitions <= 1
                or n < max(self.min_rows, 2)):
            annotate(path="serial")
            return agg(relation)
        # Keys and aggregate arguments evaluate serially over the full
        # relation (identical UDF micro-batching to serial execution); only
        # the pure-numpy grouping work is redistributed.
        keys, agg_inputs = agg._evaluate_inputs(relation)
        device, table_name = relation.device, relation.table.name
        if not keys or any(isinstance(k.encoding, ProbabilityEncoding)
                           for k in keys):
            # Probability-encoded keys re-materialise fresh per-partition
            # domains the merge could not re-assemble bit-identically.
            annotate(path="serial")
            return agg.aggregate_evaluated(keys, agg_inputs, n, device,
                                           table_name)
        codes = factorize_key_rows([_key_array(k) for k in keys])
        parts = [idx for idx in HashPartitioner(partitions).partition(codes)
                 if len(idx)]
        if len(parts) <= 1:
            annotate(path="serial")
            return agg.aggregate_evaluated(keys, agg_inputs, n, device,
                                           table_name)
        self._record_exchange(partitions, n, [len(idx) for idx in parts])

        def make_task(i, idx):
            local_keys = [k.take(idx) for k in keys]
            local_inputs = [a.take(idx) if a is not None else None
                            for a in agg_inputs]
            rows = len(idx)

            def task():
                with span("partition", index=i, rows=rows):
                    return agg.aggregate_evaluated(local_keys, local_inputs,
                                                   rows, device, table_name)
            return task

        with span("exchange_barrier", partitions=len(parts)):
            results = run_sharded(
                self.pool, [make_task(i, idx) for i, idx in enumerate(parts)])
        with span("stitch", partitions=len(results)):
            merged = _merge_partition_groups([r.table for r in results],
                                             len(keys))
        return Relation(merged)

    def _record_exchange(self, partitions: int, rows_moved: int,
                         part_rows: List[int]) -> None:
        mean = rows_moved / partitions if partitions else 0.0
        skew = (max(part_rows) / mean) if mean > 0 else 1.0
        annotate(partitions=partitions, rows_moved=rows_moved,
                 skew=round(float(skew), 3))
        if self.metrics is not None:
            self.metrics.counter("exchange.partitions").inc(partitions)
            self.metrics.counter("exchange.rows_moved").inc(rows_moved)
            self.metrics.gauge("exchange.skew").set(float(skew))

    def describe(self) -> str:
        return (f"ExchangeGroupedAggregate(partitions={self.shards}): "
                f"{self.agg.describe()}")


def _merge_partition_groups(tables: List[Table], num_keys: int) -> Table:
    """Concatenate per-partition group results and restore serial group order."""
    first = tables[0]
    columns = []
    for i in range(first.num_columns):
        pieces = [t.columns[i] for t in tables]
        encoded = concat_encoded(pieces)
        if encoded is None:
            raise ExecutionError(
                f"cannot assemble exchange outputs of column "
                f"{pieces[0].name!r}: partitions produced different encodings")
        columns.append(Column(pieces[0].name, encoded))
    key_arrays = [_key_array(c) for c in columns[:num_keys]]
    order = np.lexsort(tuple(reversed(key_arrays)))
    return Table(first.name, [c.take(order).rename(c.name) for c in columns])


# ----------------------------------------------------------------------
# The plan transform
# ----------------------------------------------------------------------
def insert_exchanges(root, config, pool, exec_node_cls, metrics=None):
    """Rewrite a (possibly already-parallelized) tree with exchange drivers.

    Runs after :func:`~repro.core.operators.sharded.parallelize`: key-equi
    joins become :class:`PartitionedJoinExec`, and the grouped sort
    aggregates that pass stayed away from (non-mergeable specs, aggregates
    above joins) become :class:`ExchangeGroupedAggregateExec`. Soft/
    weighted pipelines decline wholesale at plan time — the stitch barrier
    cannot merge per-row weight tensors, and a plan must never discover
    that mid-flight.
    """
    from repro.core.operators.sharded import tree_has_soft
    if tree_has_soft(root):
        return root
    shards = config.shards
    min_rows = config.parallel_min_rows

    def visit(node):
        op = node.op
        children = [visit(c) for c in node._children_nodes]
        if type(op) is JoinExec and op.kind != "CROSS" and op.left_keys:
            return exec_node_cls(
                PartitionedJoinExec(op, pool, shards, min_rows, metrics),
                children)
        if type(op) is SortAggregateExec and op.group_exprs \
                and len(children) == 1:
            return exec_node_cls(
                ExchangeGroupedAggregateExec(op, pool, shards, min_rows,
                                             metrics), children)
        if all(new is old
               for new, old in zip(children, node._children_nodes)):
            return node
        return exec_node_cls(op, children)

    return visit(root)
