"""The TDP session: the ``tdp`` object of the paper's listings.

>>> import repro as tdp
>>> tdp.sql.register_df(data, "numbers", device="cuda")
>>> q = tdp.sql.spark.query("SELECT ... FROM numbers ...", device="cuda")
>>> result = q.run(toPandas=True)
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.errors import CatalogError
from repro.core.compiled_query import CompiledQuery
from repro.core.compiler import Compiler
from repro.core.config import QueryConfig, constants
from repro.core.udf import FunctionRegistry, make_udf_decorator
from repro.sql.binder import Binder
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.frame import DataFrame
from repro.storage.table import Table
from repro.tcr.tensor import Tensor, ensure_tensor


class SparkNamespace:
    """Alias namespace mirroring ``tdp.sql.spark.query`` / ``tdp.spark.query``.

    The paper routes SQL through Spark's parser/optimizer; our built-in
    front end plays that role, so ``spark.query`` is simply the entry point.
    """

    def __init__(self, session: "Session"):
        self._session = session

    def query(self, statement: str, device: str = "cpu",
              extra_config: Optional[Mapping[str, object]] = None) -> CompiledQuery:
        return self._session.compile_query(statement, device=device,
                                           extra_config=extra_config)


class SqlNamespace:
    """``tdp.sql``: registration APIs plus the planner entry points."""

    def __init__(self, session: "Session"):
        self._session = session
        self.spark = SparkNamespace(session)
        # Substrait-style plans share the same front end in this build.
        self.substrait = self.spark

    # ------------------------------------------------------------------
    # Registration (paper Example 2.1)
    # ------------------------------------------------------------------
    def register_df(self, frame: DataFrame, name: str, device: Optional[str] = None) -> Table:
        """Store a DataFrame as a named TDP table (converted + encoded)."""
        table = Table.from_frame(name, frame, device=device)
        self._session.catalog.register(name, table)
        return table

    def register_dict(self, data: Mapping[str, object], name: str,
                      device: Optional[str] = None) -> Table:
        table = Table.from_dict(name, data, device=device)
        self._session.catalog.register(name, table)
        return table

    def register_numpy(self, array: np.ndarray, name: str, column: str = "value",
                       device: Optional[str] = None) -> Table:
        """Register a (possibly multi-dimensional) numpy array as one column."""
        return self.register_tensor(ensure_tensor(array), name, column=column, device=device)

    def register_tensor(self, tensor, name: str, column: str = "value",
                        device: Optional[str] = None) -> Table:
        """Register a bare tensor as a single-column table (paper Listing 5)."""
        table = Table.from_tensor(name, ensure_tensor(tensor), column=column, device=device)
        self._session.catalog.register(name, table)
        return table

    def register_table(self, table: Table, name: Optional[str] = None) -> Table:
        self._session.catalog.register(name or table.name, table)
        return table

    def drop(self, name: str) -> None:
        self._session.catalog.drop(name)

    def tables(self):
        return self._session.catalog.names()

    def query(self, statement: str, device: str = "cpu",
              extra_config: Optional[Mapping[str, object]] = None) -> CompiledQuery:
        return self._session.compile_query(statement, device=device,
                                           extra_config=extra_config)


class Session:
    """One TDP instance: a catalog, a UDF registry, and query compilation."""

    def __init__(self):
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.sql = SqlNamespace(self)
        self.spark = self.sql.spark
        self.constants = constants
        self.udf = make_udf_decorator(self.functions)

    def compile_query(self, statement: str, device: str = "cpu",
                      extra_config: Optional[Mapping[str, object]] = None) -> CompiledQuery:
        """Parse → bind → optimize → lower (paper Example 2.2)."""
        config = QueryConfig(extra_config)
        ast = parse(statement)
        plan = Binder(self.catalog, self.functions).bind(ast)
        plan = optimize(plan, config.as_optimizer_config())
        compiler = Compiler(self.catalog, config, device)
        return compiler.compile(plan, statement)

    def reset(self) -> None:
        """Drop all registered tables and functions (test isolation)."""
        self.catalog.clear()
        self.functions.clear()
