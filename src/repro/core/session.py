"""The TDP session: the ``tdp`` object of the paper's listings.

>>> import repro as tdp
>>> tdp.sql.register_df(data, "numbers", device="cuda")
>>> q = tdp.sql.spark.query("SELECT ... FROM numbers ...", device="cuda")
>>> result = q.run(toPandas=True)
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Callable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.compiled_query import CompiledQuery
from repro.core.compiler import Compiler
from repro.core.config import QueryConfig, constants
from repro.core.indexes import IndexEntry, IndexManager
from repro.core.operators.scan import shared_scans
from repro.core.partition import ShardPool
from repro.core.telemetry import MetricsRegistry, SlowQueryLog, span
from repro.core.tensor_cache import DEFAULT_TENSOR_CACHE_BYTES, TensorCache
from repro.core.udf import FunctionRegistry, make_udf_decorator
from repro.sql.binder import Binder
from repro.sql.optimizer import optimize
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.frame import DataFrame
from repro.storage.table import Table
from repro.tcr.device import as_device
from repro.tcr.tensor import ensure_tensor


class PlanCache:
    """LRU cache of compiled queries.

    Keys include the statement text, target device, the full config
    fingerprint, and the catalog/UDF-registry versions — so any
    ``register_*``, ``drop`` or UDF (re)registration naturally invalidates
    every plan compiled before it (TQP caches lowered PyTorch programs the
    same way; repeated statements skip parse→bind→optimize→lower entirely).
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._entries: "OrderedDict[tuple, CompiledQuery]" = OrderedDict()
        # Guards entries AND the hit/miss counters: counts are bumped inside
        # the same critical section as the lookup they describe, so
        # concurrent workers can never tear the LRU order or misreport
        # stats (hits + misses always equals the number of lookups).
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Optional[CompiledQuery]:
        with self._lock:
            query = self._entries.get(key)
            if query is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return query

    def put(self, key: tuple, query: CompiledQuery) -> None:
        with self._lock:
            self._entries[key] = query
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> dict:
        # Unified stats vocabulary (see docs/OBSERVABILITY.md): hits/misses/
        # evictions are lifetime counts, size/maxsize are entry counts.
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "size": len(self._entries), "maxsize": self.maxsize}


class SparkNamespace:
    """Alias namespace mirroring ``tdp.sql.spark.query`` / ``tdp.spark.query``.

    The paper routes SQL through Spark's parser/optimizer; our built-in
    front end plays that role, so ``spark.query`` is simply the entry point.
    """

    def __init__(self, session: "Session"):
        self._session = session

    def query(self, statement: str, device: str = "cpu",
              extra_config: Optional[Mapping[str, object]] = None) -> CompiledQuery:
        return self._session.compile_query(statement, device=device,
                                           extra_config=extra_config)


class SqlNamespace:
    """``tdp.sql``: registration APIs plus the planner entry points."""

    def __init__(self, session: "Session"):
        self._session = session
        self.spark = SparkNamespace(session)
        # Substrait-style plans share the same front end in this build.
        self.substrait = self.spark

    # ------------------------------------------------------------------
    # Registration (paper Example 2.1)
    # ------------------------------------------------------------------
    def register_df(self, frame: DataFrame, name: str, device: Optional[str] = None) -> Table:
        """Store a DataFrame as a named TDP table (converted + encoded)."""
        table = Table.from_frame(name, frame, device=device)
        self._session.catalog.register(name, table)
        return table

    def register_dict(self, data: Mapping[str, object], name: str,
                      device: Optional[str] = None) -> Table:
        table = Table.from_dict(name, data, device=device)
        self._session.catalog.register(name, table)
        return table

    def register_numpy(self, array: np.ndarray, name: str, column: str = "value",
                       device: Optional[str] = None) -> Table:
        """Register a (possibly multi-dimensional) numpy array as one column."""
        return self.register_tensor(ensure_tensor(array), name, column=column, device=device)

    def register_tensor(self, tensor, name: str, column: str = "value",
                        device: Optional[str] = None) -> Table:
        """Register a bare tensor as a single-column table (paper Listing 5)."""
        table = Table.from_tensor(name, ensure_tensor(tensor), column=column, device=device)
        self._session.catalog.register(name, table)
        return table

    def register_table(self, table: Table, name: Optional[str] = None) -> Table:
        self._session.catalog.register(name or table.name, table)
        return table

    def drop(self, name: str) -> None:
        self._session.catalog.drop(name)

    def tables(self):
        return self._session.catalog.names()

    def query(self, statement: str, device: str = "cpu",
              extra_config: Optional[Mapping[str, object]] = None) -> CompiledQuery:
        return self._session.compile_query(statement, device=device,
                                           extra_config=extra_config)


# DDL statements mutate session state when run: never serve them from (or
# admit them to) the plan cache — including when wrapped in EXPLAIN.
_DDL_PREFIX = re.compile(
    r"^\s*(?:explain\s+(?:analyze\s+)?)?(create|drop|show)\b", re.IGNORECASE)


class Session:
    """One TDP instance: a catalog, a UDF registry, vector indexes, a
    materialization cache, and query compilation.

    ``tensor_cache_bytes`` budgets the session-wide inference cache
    (``session.tensor_cache``): deterministic UDF outputs and corpus
    embeddings are reused across statements and index builds. Pass 0 to
    disable it for the whole session (per query: ``extra_config=
    {"tensor_cache": False}``).
    """

    def __init__(self, plan_cache_size: int = 128,
                 tensor_cache_bytes: int = DEFAULT_TENSOR_CACHE_BYTES):
        self.catalog = Catalog()
        self.functions = FunctionRegistry()
        self.tensor_cache = TensorCache(tensor_cache_bytes)
        self.indexes = IndexManager(self.catalog, tensor_cache=self.tensor_cache)
        self.sql = SqlNamespace(self)
        self.spark = self.sql.spark
        self.constants = constants
        self.udf = make_udf_decorator(self.functions)
        self.plan_cache = PlanCache(plan_cache_size)
        # Shard workers for intra-query parallelism (sharded scans). Helper
        # threads spawn lazily on the first statement compiled with
        # ``shards != 1``; shard tasks from concurrent statements interleave
        # on the one pool.
        self.shard_pool = ShardPool()
        # Default scheduler for Session.submit (created lazily; Session.serve
        # spins up a dedicated pool per call instead).
        self._scheduler = None
        self._scheduler_lock = threading.Lock()
        # Observability: one registry unifying every subsystem's stats
        # (Session.metrics.snapshot()), plus the slow-statement ring buffer.
        self.metrics = MetricsRegistry()
        self.slow_log = SlowQueryLog()
        self._register_metric_providers()

    def _register_metric_providers(self) -> None:
        self.metrics.register_provider("plan_cache", lambda: self.plan_cache.stats)
        self.metrics.register_provider("tensor_cache", lambda: self.tensor_cache.stats)
        self.metrics.register_provider("shard_pool", lambda: self.shard_pool.stats)
        self.metrics.register_provider("indexes", self.indexes.stats)
        self.metrics.register_provider("slow_log", self.slow_log.stats)

    def compile_query(self, statement: str, device: str = "cpu",
                      extra_config: Optional[Mapping[str, object]] = None) -> CompiledQuery:
        """Parse → bind → optimize → lower (paper Example 2.2), memoised.

        Repeated compilations of the same statement against an unchanged
        catalog/UDF registry return the cached plan. Trainable queries are
        never cached: they own parameters and train/eval state that must be
        private to each compilation. The key includes the index epoch, so
        ``CREATE``/``DROP INDEX`` invalidates plans that chose (or missed)
        an ANN access path.
        """
        config = QueryConfig(extra_config)
        if config.adaptive_min_rows:
            # Resolve "auto" to the observed break-even threshold BEFORE the
            # cache key is built: the concrete value enters the fingerprint,
            # so plans compiled under different thresholds cache separately.
            config = config.with_resolved_min_rows(
                self.shard_pool.adaptive_min_rows())
        cacheable = (config.plan_cache and not config.trainable
                     and not _DDL_PREFIX.match(statement))
        # span() is the shared no-op singleton unless a trace is active
        # (telemetry knob or EXPLAIN ANALYZE), so the untraced compile path
        # pays one ContextVar read here and nothing else.
        with span("compile", statement=statement) as sp:
            key = None
            if cacheable:
                key = (statement, str(as_device(device)), config.fingerprint(),
                       self.catalog.version, self.functions.version,
                       self.indexes.epoch)
                cached = self.plan_cache.get(key)
                if cached is not None:
                    sp.set(plan_cache="hit")
                    return cached
                sp.set(plan_cache="miss")
            else:
                sp.set(plan_cache="bypass")
            query = self._compile_uncached(statement, config, device)
            if cacheable:
                self.plan_cache.put(key, query)
        return query

    def _compile_uncached(self, statement: str, config: QueryConfig,
                          device: str) -> CompiledQuery:
        with span("parse"):
            ast = parse(statement)
        with span("bind"):
            plan = Binder(self.catalog, self.functions).bind(ast)
        opt_config = config.as_optimizer_config()
        if not config.trainable:
            # The vector_index rule needs the index registry; trainable
            # compilations keep the exact differentiable pipeline.
            opt_config["indexes"] = self.indexes
        with span("optimize"):
            plan = optimize(plan, opt_config)
        compiler = Compiler(self.catalog, config, device, indexes=self.indexes,
                            tensor_cache=self.tensor_cache,
                            shard_pool=self.shard_pool, session=self)
        with span("lower"):
            return compiler.compile(plan, statement)

    # ------------------------------------------------------------------
    # Vector indexes (Python-native DDL path)
    # ------------------------------------------------------------------
    def create_vector_index(self, name: str, table: str, column: str,
                            cells: int = 16, nprobe: Optional[int] = None,
                            seed: int = 0, embedder: Optional[Callable] = None,
                            replace: bool = False) -> IndexEntry:
        """Register a vector index (same effect as ``CREATE VECTOR INDEX``).

        ``embedder`` optionally maps the column tensor to (n, d) vectors;
        without it the index binds to the two-tower model of the first
        similarity UDF that queries it (raw 2-D float columns index as-is).
        """
        return self.indexes.create(name, table, column, cells=cells,
                                   nprobe=nprobe, seed=seed, embedder=embedder,
                                   replace=replace)

    def drop_index(self, name: str, if_exists: bool = False) -> bool:
        return self.indexes.drop(name, if_exists=if_exists)

    def execute_many(self, statements: Sequence[str], device: str = "cpu",
                     extra_config: Optional[Mapping[str, object]] = None,
                     toPandas: bool = False) -> List[object]:
        """Compile (through the plan cache) and run a batch of statements.

        All statements execute against shared scans: each referenced
        table/device pair is resolved, column-selected, and transferred once
        for the whole batch.
        """
        queries = [self.compile_query(s, device=device, extra_config=extra_config)
                   for s in statements]
        with shared_scans():
            return [query.run(toPandas=toPandas) for query in queries]

    # ------------------------------------------------------------------
    # Concurrent serving (the PR 4 scheduler subsystem)
    # ------------------------------------------------------------------
    def scheduler(self, extra_config: Optional[Mapping[str, object]] = None):
        """The session's shared worker pool, created lazily on first use.

        The creating call's serving knobs (``scheduler_workers``,
        ``batch_window``, ``max_queue_depth``, ``shed_policy``) configure
        the pool; later calls reuse it as-is. Per-request knobs
        (``priority``, ``deadline``) keep applying per submission.
        """
        from repro.core.scheduler import QueryScheduler
        with self._scheduler_lock:
            if self._scheduler is None or self._scheduler.closed:
                config = QueryConfig(extra_config)
                self._scheduler = QueryScheduler(
                    self, workers=config.scheduler_workers or 4,
                    batch_window=config.batch_window,
                    max_queue_depth=config.max_queue_depth,
                    shed_policy=config.shed_policy)
            return self._scheduler

    def submit(self, statement: str, device: str = "cpu",
               extra_config: Optional[Mapping[str, object]] = None,
               toPandas: bool = False, client: Optional[str] = None):
        """Submit one statement to the session's worker pool.

        Returns a ``concurrent.futures.Future`` resolving to the same value
        ``compile_query(...).run(...)`` would produce. The pool is created
        lazily on first use and shared by all ``submit`` calls; identical
        in-flight statements coalesce into one execution and concurrent
        queries' encoder micro-batches are served by the pool's inference
        batcher (see :mod:`repro.core.scheduler`).

        ``client`` labels the submitting stream for the scheduler's
        round-robin fairness; admission control may raise
        :class:`~repro.errors.ServerOverloaded` instead of queueing.
        """
        return self.scheduler(extra_config).submit(
            statement, device=device, extra_config=extra_config,
            toPandas=toPandas, client=client)

    async def aquery(self, statement: str, device: str = "cpu",
                     extra_config: Optional[Mapping[str, object]] = None,
                     toPandas: bool = False, client: Optional[str] = None):
        """``await``-able ``query(...).run(...)`` over the worker pool.

        Bridges the scheduler's ``concurrent.futures.Future`` onto the
        running event loop without blocking it, so an asyncio server can
        keep thousands of requests in flight over a bounded thread pool.
        Results are identical to the synchronous path — same plan cache,
        tensor cache and locks (``tests/core/test_serving.py`` pins result
        identity against ``query().run()``).
        """
        import asyncio
        future = self.submit(statement, device=device,
                             extra_config=extra_config, toPandas=toPandas,
                             client=client)
        return await asyncio.wrap_future(future)

    async def aserve(self, statements: Sequence[str], device: str = "cpu",
                     extra_config: Optional[Mapping[str, object]] = None,
                     toPandas: bool = False,
                     client: Optional[str] = None) -> List[object]:
        """Run a batch of statements concurrently from async code.

        All statements are submitted to the shared pool at once (fanning
        into coalescing and inference batching) and gathered in submission
        order; the first failure re-raises after all complete.
        """
        import asyncio
        return list(await asyncio.gather(*[
            self.aquery(s, device=device, extra_config=extra_config,
                        toPandas=toPandas, client=client)
            for s in statements
        ]))

    def serve(self, statements: Sequence[str], workers: int = 4,
              device: str = "cpu",
              extra_config: Optional[Mapping[str, object]] = None,
              toPandas: bool = False, coalesce: bool = True,
              batch_inference: bool = True) -> List[object]:
        """Serve a batch of statements on ``workers`` concurrent threads.

        Results come back in submission order (exceptions re-raise in
        order). Semantically equivalent to running the statements one by
        one; throughput comes from in-flight coalescing of identical
        statements and cross-query inference batching, both of which
        preserve each statement's results.
        """
        from repro.core.scheduler import QueryScheduler
        config = QueryConfig(extra_config)
        scheduler = QueryScheduler(self, workers=workers, coalesce=coalesce,
                                   batch_inference=batch_inference,
                                   batch_window=config.batch_window,
                                   max_queue_depth=config.max_queue_depth,
                                   shed_policy=config.shed_policy)
        try:
            futures = [scheduler.submit(s, device=device,
                                        extra_config=extra_config,
                                        toPandas=toPandas)
                       for s in statements]
            return [f.result() for f in futures]
        finally:
            scheduler.shutdown()

    def reset(self) -> None:
        """Drop all registered tables, functions and indexes (test isolation)."""
        with self._scheduler_lock:
            if self._scheduler is not None:
                self._scheduler.shutdown()
                self._scheduler = None
        self.catalog.clear()
        self.functions.clear()
        self.indexes.clear()
        self.plan_cache.clear()
        self.tensor_cache.clear()
        self.slow_log.clear()
        # Fresh instruments (lifetime counters restart), same providers.
        self.metrics = MetricsRegistry()
        self._register_metric_providers()
