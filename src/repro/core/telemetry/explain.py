"""Rendering for ``EXPLAIN`` / ``EXPLAIN ANALYZE``.

``EXPLAIN`` shows the compiled physical tree; ``EXPLAIN ANALYZE`` executes
the statement under a :class:`~repro.core.telemetry.spans.QueryTrace` and
re-renders the same tree with each operator's measured wall time, row
counts, kernel-vs-fallback path, per-shard timings and cache attribution
folded in. Operator spans carry ``node=id(exec_node)`` so measurements can
be matched back to tree positions without the renderer re-walking any
execution state.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.telemetry.spans import QueryTrace, Span


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _format_extras(span_: Span, skip=("node", "op", "rows_in", "rows_out")) -> List[str]:
    parts = []
    for key, value in span_.attrs.items():
        if key in skip:
            continue
        parts.append(f"{key}={value}")
    for key, value in sorted(span_.counts.items()):
        parts.append(f"{key}={value}")
    return parts


def _detail_lines(span_: Span, indent: str) -> List[str]:
    """Non-operator child spans (shards, stitch, flushes) as nested lines."""
    lines: List[str] = []
    for child in span_.children:
        if child.name == "operator":
            continue
        parts = [f"{child.name}"]
        for key in ("index", "op"):
            if key in child.attrs:
                parts[0] = f"{child.name} {child.attrs[key]}"
                break
        stats = [f"time={_ms(child.seconds)}"]
        for key, value in child.attrs.items():
            if key in ("index", "op"):
                continue
            stats.append(f"{key}={value}")
        for key, value in sorted(child.counts.items()):
            stats.append(f"{key}={value}")
        lines.append(f"{indent}+ {parts[0]}: " + " ".join(stats))
        lines.extend(_detail_lines(child, indent + "  "))
    return lines


def render_plan(root) -> str:
    """Plain ``EXPLAIN``: the physical operator tree, one line per operator."""
    lines: List[str] = []

    def walk(node, depth: int) -> None:
        lines.append("  " * depth + node.op.describe())
        for child in node._children_nodes:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def render_analyze(root, trace: QueryTrace, statement: str = "") -> str:
    """``EXPLAIN ANALYZE``: the tree annotated with the trace's measurements."""
    by_node: Dict[int, Span] = {}
    for span_ in trace.root.walk():
        if span_.name == "operator" and "node" in span_.attrs:
            by_node[span_.attrs["node"]] = span_

    lines: List[str] = []
    header = statement or trace.statement
    if header:
        lines.append(f"EXPLAIN ANALYZE {header}")
    total = trace.seconds
    device = trace.device or trace.root.attrs.get("device", "")
    summary = f"total: {_ms(total)}"
    if device:
        summary += f"  device={device}"
    lines.append(summary)
    lines.append(_compile_line(trace))

    def walk(node, depth: int) -> None:
        indent = "  " * depth
        span_ = by_node.get(id(node))
        if span_ is None:
            lines.append(f"{indent}{node.op.describe()}  [not executed]")
        else:
            stats = []
            if "rows_in" in span_.attrs:
                stats.append(f"rows_in={span_.attrs['rows_in']}")
            if "rows_out" in span_.attrs:
                stats.append(f"rows_out={span_.attrs['rows_out']}")
            stats.append(f"time={_ms(span_.seconds)}")
            stats.extend(_format_extras(span_))
            lines.append(f"{indent}{node.op.describe()}  [" + " ".join(stats) + "]")
            lines.extend(_detail_lines(span_, indent + "  "))
        for child in node._children_nodes:
            walk(child, depth + 1)

    walk(root, 0)

    totals = trace.total_counts()
    if totals:
        lines.append("counts: " + " ".join(
            f"{key}={value}" for key, value in sorted(totals.items())))
    return "\n".join(lines)


def _compile_line(trace: QueryTrace) -> str:
    """One line summarising compilation: phase times + plan-cache verdict."""
    compile_spans = trace.find("compile")
    if not compile_spans:
        return "compile: (not traced)"
    compile_span = compile_spans[0]
    parts = [f"compile: {_ms(compile_span.seconds)}"]
    verdict = compile_span.attrs.get("plan_cache")
    for phase in ("parse", "bind", "optimize", "lower"):
        phase_spans = [c for c in compile_span.walk() if c.name == phase]
        if phase_spans:
            parts.append(f"{phase}={_ms(sum(s.seconds for s in phase_spans))}")
    if verdict:
        parts.append(f"plan_cache={verdict}")
    return "  ".join(parts)


def summarize(trace: QueryTrace, top: int = 5) -> Optional[dict]:
    """Compact dict summary (used by the slow-query log and tests)."""
    if trace is None:
        return None
    operators = [s for s in trace.root.walk() if s.name == "operator"]
    operators.sort(key=lambda s: s.seconds, reverse=True)
    return {
        "seconds": trace.seconds,
        "operators": [
            {"op": s.attrs.get("op", ""), "seconds": s.seconds,
             "rows_out": s.attrs.get("rows_out")}
            for s in operators[:top]
        ],
        "counts": trace.total_counts(),
    }
