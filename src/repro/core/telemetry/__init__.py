"""Engine-wide telemetry: trace spans, metrics, EXPLAIN ANALYZE, slow log.

The subsystems built so far (plan cache, ANN indexes, tensor cache,
concurrent scheduler, sharded scans, compiled kernels) each answer "how
often did X happen" through an ad-hoc ``stats()`` dict, but none can answer
"where did *this query's* time go". This package is that layer:

* :mod:`spans` — nestable trace spans carried via :mod:`contextvars`
  (:class:`QueryTrace`), a zero-alloc no-op when no trace is active;
* :mod:`metrics` — thread-safe counters/gauges/fixed-bucket histograms
  behind one namespaced :class:`MetricsRegistry`
  (``Session.metrics.snapshot()``);
* :mod:`explain` — the ``EXPLAIN ANALYZE`` renderer over a finished trace;
* :mod:`slowlog` — a threshold-gated ring buffer of slow statements.

Everything here is observation-only: disabling telemetry must never change
a query's result, and the disabled path must cost ~nothing (see
``benchmarks/bench_telemetry_overhead.py``).
"""

from repro.core.telemetry.metrics import (
    Counter,
    Ewma,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.core.telemetry.slowlog import SlowQueryLog
from repro.core.telemetry.spans import (
    NULL_SPAN,
    QueryTrace,
    Span,
    annotate,
    count,
    current_trace,
    span,
    tracing,
)

__all__ = [
    "Counter", "Ewma", "Gauge", "Histogram", "MetricsRegistry", "SlowQueryLog",
    "NULL_SPAN", "QueryTrace", "Span", "annotate", "count", "current_trace",
    "span", "tracing",
]
