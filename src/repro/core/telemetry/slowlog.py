"""Slow-query log: a threshold-gated ring buffer of statement summaries.

Every traced-or-not query run reports its end-to-end wall time here; only
runs at or above the threshold are retained, so the steady-state cost is a
float compare. Entries keep the statement text, latency, and — when the run
was traced — a compact trace summary (top operators by self-evident wall
time plus trace-wide cache counters), enough to triage without re-running.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import List, Optional

DEFAULT_THRESHOLD_SECONDS = 1.0
DEFAULT_CAPACITY = 128


class SlowQueryLog:
    """Fixed-capacity, thread-safe ring buffer of slow-statement records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 threshold_seconds: float = DEFAULT_THRESHOLD_SECONDS):
        self.capacity = max(int(capacity), 1)
        self.threshold_seconds = float(threshold_seconds)
        self._entries = collections.deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._observed = 0
        self._logged = 0

    def observe(self, statement: str, seconds: float, trace=None,
                threshold: Optional[float] = None) -> bool:
        """Record a finished run; returns True when it was slow enough to log.

        ``threshold`` overrides the log's default for this one observation
        (the per-query ``slow_query_seconds`` config knob).
        """
        cutoff = self.threshold_seconds if threshold is None else threshold
        with self._lock:
            self._observed += 1
            if seconds < cutoff:
                return False
            entry = {
                "statement": statement,
                "seconds": seconds,
                "logged_at": time.time(),
            }
            if trace is not None:
                entry["trace_summary"] = self._summarize(trace)
            self._entries.append(entry)
            self._logged += 1
            return True

    @staticmethod
    def _summarize(trace) -> dict:
        operators = []
        for span_ in trace.root.walk():
            if span_.name != "operator":
                continue
            operators.append({
                "op": span_.attrs.get("op", ""),
                "seconds": span_.seconds,
                "rows_out": span_.attrs.get("rows_out"),
            })
        operators.sort(key=lambda item: item["seconds"], reverse=True)
        return {
            "seconds": trace.seconds,
            "top_operators": operators[:5],
            "counts": trace.total_counts(),
        }

    def entries(self) -> List[dict]:
        """Snapshot of retained entries, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "observed": self._observed,
                "logged": self._logged,
                "retained": len(self._entries),
                "threshold_seconds": self.threshold_seconds,
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def last(self) -> Optional[dict]:
        with self._lock:
            return dict(self._entries[-1]) if self._entries else None
