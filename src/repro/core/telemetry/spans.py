"""Trace spans: lightweight, nestable, contextvar-carried timing scopes.

One :class:`QueryTrace` is created per traced execution (the ``telemetry``
config knob, or an ``EXPLAIN ANALYZE`` statement) and activated for the
duration of the run. Instrumented code calls :func:`span` (a context
manager), :func:`annotate` and :func:`count`; when no trace is active these
return/are no-ops that allocate nothing — the *only* cost on the disabled
path is one ``ContextVar.get`` — so instrumentation can stay permanently in
the execution path.

Two contextvars carry the state:

* ``_TRACE`` — the active trace (None almost always);
* ``_SPAN`` — the innermost open span, which is how nested spans find
  their parent and how :func:`annotate`/:func:`count` attribute details
  (cache hits, kernel-vs-fallback paths) to the operator that caused them.

Because both are contextvars, shard tasks — which :class:`ShardPool` runs
under a *copy* of the submitter's context — automatically nest their spans
under the sharded operator's span, while concurrent queries on scheduler
worker threads each see only their own trace: spans can never interleave
across queries. Child-list appends take the trace's lock, since shard
tasks of one query do append to a shared parent concurrently.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from typing import Dict, List, Optional

_TRACE: "contextvars.ContextVar[Optional[QueryTrace]]" = contextvars.ContextVar(
    "tdp_active_trace", default=None)
_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "tdp_current_span", default=None)


def current_trace() -> Optional["QueryTrace"]:
    """The trace activated by the current execution context, if any."""
    return _TRACE.get()


def tracing() -> bool:
    """True when a trace is active (the one check hot paths should make)."""
    return _TRACE.get() is not None


def span(name: str, **attrs) -> "Span":
    """Open a child span of the innermost active span.

    Returns the shared :data:`NULL_SPAN` singleton when no trace is active:
    ``with span(...) as sp`` then enters/exits a pre-existing object and
    ``bool(sp)`` is False, so callers can guard their attribute bookkeeping.
    """
    trace = _TRACE.get()
    if trace is None:
        return NULL_SPAN
    return Span(trace, name, attrs)


def annotate(**attrs) -> None:
    """Set attributes on the innermost open span (no-op when untraced)."""
    current = _SPAN.get()
    if current is not None:
        current.set(**attrs)


def count(**deltas) -> None:
    """Add integer deltas to the innermost open span's counters.

    Used for per-operator cache attribution: a tensor-cache hit inside an
    expression evaluation bumps ``tensor_cache_hits`` on whichever operator
    span is open, so ``EXPLAIN ANALYZE`` can say *which* operator was served
    from cache.
    """
    current = _SPAN.get()
    if current is not None:
        current.bump(**deltas)


class _NullSpan:
    """The disabled path: one shared, immutable, do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs) -> None:
        return None

    def bump(self, **deltas) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One timed scope inside a trace.

    ``attrs`` hold descriptive values (operator text, shard index, kernel
    path); ``counts`` hold additive integers (cache hits/misses). ``seconds``
    is wall time between ``__enter__`` and ``__exit__``.
    """

    __slots__ = ("trace", "name", "attrs", "counts", "start", "end",
                 "thread", "parent", "children", "_token")

    def __init__(self, trace: "QueryTrace", name: str, attrs: Optional[dict] = None):
        self.trace = trace
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.counts: Dict[str, int] = {}
        self.start = 0.0
        self.end = 0.0
        self.thread = 0
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self._token = None

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        parent = _SPAN.get()
        self.parent = parent
        self.thread = threading.get_ident()
        self.trace.attach(self, parent)
        self._token = _SPAN.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.end = time.perf_counter()
        _SPAN.reset(self._token)
        self._token = None

    def __bool__(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Annotation
    # ------------------------------------------------------------------
    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def bump(self, **deltas) -> None:
        # Counter bumps can arrive from helper threads evaluating inside
        # this span's scope; the trace lock keeps increments exact.
        with self.trace._lock:
            counts = self.counts
            for key, delta in deltas.items():
                counts[key] = counts.get(key, 0) + int(delta)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        end = self.end if self.end else time.perf_counter()
        return max(end - self.start, 0.0)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        out = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counts:
            out["counts"] = dict(self.counts)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds * 1e3:.3f}ms, attrs={self.attrs})"


class QueryTrace:
    """The structured trace of one traced query execution.

    Create, then run the query inside ``with trace.activate():``. The root
    span covers the whole execution; every :func:`span` opened inside the
    activation (including on shard-pool helper threads, whose tasks run
    under copies of the activating context) attaches beneath it.
    """

    def __init__(self, statement: str = "", device: str = ""):
        self.statement = statement
        self.device = device
        self.root = Span(self, "query", {"statement": statement} if statement else {})
        if device:
            self.root.attrs["device"] = device
        self.created_at = time.time()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------
    def activate(self):
        """Context manager making this the ambient trace (and opening root)."""
        return _TraceActivation(self)

    def attach(self, span_: Span, parent: Optional[Span]) -> None:
        if parent is None:
            if span_ is self.root:
                return
            parent = self.root
            span_.parent = parent
        with self._lock:
            parent.children.append(span_)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        return self.root.seconds

    def spans(self) -> List[Span]:
        """Every span in the trace (pre-order), root first."""
        return list(self.root.walk())

    def find(self, name: str) -> List[Span]:
        return [s for s in self.root.walk() if s.name == name]

    def total_counts(self) -> Dict[str, int]:
        """All span counters summed trace-wide (cache totals etc.)."""
        totals: Dict[str, int] = {}
        for span_ in self.root.walk():
            for key, value in span_.counts.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def to_dict(self) -> dict:
        return {"statement": self.statement, "device": self.device,
                "seconds": self.seconds, "root": self.root.to_dict()}

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def chrome_events(self) -> List[dict]:
        """Spans as Chrome ``trace_event`` complete events.

        Load the JSON written by :meth:`dump_chrome` in ``chrome://tracing``
        or https://ui.perfetto.dev to see shard/batcher concurrency laid out
        per thread. Timestamps are microseconds relative to the root span's
        start; ``tid`` is the OS thread ident that ran the span, which is
        exactly what makes shard-pool parallelism visible.
        """
        t0 = self.root.start
        events: List[dict] = []
        for span_ in self.root.walk():
            args = {str(k): v for k, v in span_.attrs.items()}
            args.update({str(k): v for k, v in span_.counts.items()})
            events.append({
                "name": span_.attrs.get("op", span_.name),
                "cat": span_.name,
                "ph": "X",
                "ts": round((span_.start - t0) * 1e6, 3),
                "dur": round(span_.seconds * 1e6, 3),
                "pid": 1,
                "tid": span_.thread,
                "args": args,
            })
        return events

    def dump_chrome(self, path: str) -> str:
        """Write the Chrome ``trace_event`` JSON file; returns the path."""
        payload = {"traceEvents": self.chrome_events(),
                   "displayTimeUnit": "ms",
                   "otherData": {"statement": self.statement,
                                 "device": self.device}}
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        return path


class _TraceActivation:
    __slots__ = ("trace", "_trace_token", "_span_token")

    def __init__(self, trace: QueryTrace):
        self.trace = trace

    def __enter__(self) -> QueryTrace:
        trace = self.trace
        self._trace_token = _TRACE.set(trace)
        trace.root.thread = threading.get_ident()
        self._span_token = _SPAN.set(trace.root)
        trace.root.start = time.perf_counter()
        return trace

    def __exit__(self, *exc) -> None:
        self.trace.root.end = time.perf_counter()
        _SPAN.reset(self._span_token)
        _TRACE.reset(self._trace_token)
