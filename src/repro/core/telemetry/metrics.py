"""Thread-safe counters, gauges and mergeable fixed-bucket histograms,
unified behind one namespaced :class:`MetricsRegistry`.

The registry serves two constituencies:

* **Existing component stats** — ``PlanCache``/``TensorCache``/
  ``ShardPool``/``IndexManager`` keep their own (already locked) counters;
  the registry *collects* them through registered providers, so one
  ``Session.metrics.snapshot()`` shows every subsystem under a stable
  namespace (``plan_cache.hits``, ``tensor_cache.evictions``, ...).

* **Registry-owned instruments** — per-query latency and queue-wait
  histograms, scheduler/batcher lifetime totals. These survive the objects
  that produce them (``Session.serve`` creates a fresh scheduler per call;
  its counts land here and keep accumulating), which is what the ROADMAP's
  SLO-aware admission control needs to read.

Histograms use *fixed* bucket boundaries so two histograms with the same
boundaries merge by adding counts — the property that lets per-worker or
per-shard observations combine without quantile sketches. Quantiles are
estimated by linear interpolation inside the owning bucket; with the
default log-spaced latency boundaries the estimate is within one bucket's
resolution, which is what an admission controller needs (not exact order
statistics).
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, List, Optional, Sequence


def _default_latency_bounds() -> List[float]:
    # Log-spaced from 10us to ~100s: four points per decade keeps relative
    # quantile error under ~50% per bucket while the list stays bisect-fast.
    bounds = []
    value = 1e-5
    while value < 100.0:
        for step in (1.0, 1.8, 3.2, 5.6):
            bounds.append(round(value * step, 10))
        value *= 10.0
    return bounds


DEFAULT_LATENCY_BOUNDS = tuple(_default_latency_bounds())


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, delta: int = 1) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Ewma:
    """Exponentially-weighted moving average of a sampled quantity.

    The serving layer uses it for encode-request inter-arrival times: the
    adaptive inference-batch window follows the observed arrival rate
    instead of a fixed 2 ms (``batch_window="auto"``). ``alpha`` is the
    weight of each new sample; the first sample seeds the average directly.
    """

    __slots__ = ("name", "alpha", "_value", "_count", "_lock")

    def __init__(self, name: str, alpha: float = 0.2):
        if not (0.0 < alpha <= 1.0):
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.name = name
        self.alpha = float(alpha)
        self._value = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, sample: float) -> float:
        """Fold one sample in; returns the updated average."""
        with self._lock:
            if self._count == 0:
                self._value = float(sample)
            else:
                self._value += self.alpha * (float(sample) - self._value)
            self._count += 1
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count


class Histogram:
    """Fixed-bucket histogram; same-boundary histograms merge exactly.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one overflow
    bucket catches everything above the last bound. ``observe`` is a bisect
    plus two adds under the lock, cheap enough for per-query recording.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min",
                 "_max", "_lock")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: List[float] = sorted(bounds if bounds is not None
                                          else DEFAULT_LATENCY_BOUNDS)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram (exact)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        with other._lock:
            counts = list(other._counts)
            count, total = other._count, other._sum
            mn, mx = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            self._min = min(self._min, mn)
            self._max = max(self._max, mx)

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by intra-bucket interpolation."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * self._count
        seen = 0
        for i, c in enumerate(self._counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                lo = max(lo, self._min if self._min != float("inf") else lo)
                hi = min(hi, self._max if self._max != float("-inf") else hi)
                if hi <= lo:
                    return hi
                frac = (rank - seen) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            seen += c
        return self._max if self._max != float("-inf") else 0.0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict:
        """Summary dict (seconds for latency histograms; see OBSERVABILITY.md)."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count,
                "min": self._min,
                "max": self._max,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }


class MetricsRegistry:
    """Namespaced metric store + collector of component ``stats()`` dicts.

    ``counter``/``gauge``/``histogram`` get-or-create instruments by name
    (dotted namespaces by convention: ``scheduler.executed``).
    ``register_provider(ns, fn)`` attaches a zero-arg callable returning a
    flat dict; ``snapshot()`` flattens everything into one
    ``{"ns.key": value}`` mapping, with histogram summaries nested under
    their metric name.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: Dict[str, Callable[[], dict]] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, bounds)
            return instrument

    # ------------------------------------------------------------------
    # Providers (existing component stats)
    # ------------------------------------------------------------------
    def register_provider(self, namespace: str, fn: Callable[[], dict]) -> None:
        with self._lock:
            self._providers[namespace] = fn

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            providers = list(self._providers.items())
        out: Dict[str, object] = {}
        for namespace, fn in providers:
            try:
                stats = fn() or {}
            except Exception:   # a dead provider must not break the snapshot
                continue
            for key, value in stats.items():
                out[f"{namespace}.{key}"] = value
        for counter in counters:
            out[counter.name] = counter.value
        for gauge in gauges:
            out[gauge.name] = gauge.value
        for histogram in histograms:
            out[histogram.name] = histogram.snapshot()
        return out
