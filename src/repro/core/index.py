"""Approximate vector index for top-k similarity search.

The paper notes (§5.1): "We are currently integrating approximate indexing
[36] into TDP for speeding up top-k queries." This module implements that
future-work item: an IVF-Flat index (k-means coarse quantiser + per-cell
exact scan, the Milvus/FAISS baseline layout) built over embedding columns.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.tcr.random import fork_generator
from repro.tcr.tensor import Tensor


def _kmeans(vectors: np.ndarray, num_cells: int, iterations: int,
            rng: np.random.Generator) -> np.ndarray:
    """Lloyd's algorithm (few iterations suffice for a coarse quantiser).

    Empty cells are reseeded from the points farthest from their assigned
    centroid (the standard FAISS repair): a cell that keeps its stale initial
    centroid forever attracts nothing, the surviving cells grow fat, and
    probe recall degrades on clustered corpora.
    """
    n = vectors.shape[0]
    centroids = vectors[rng.choice(n, size=num_cells, replace=False)].copy()
    for _ in range(iterations):
        # Squared distances via the expansion trick.
        dots = vectors @ centroids.T
        norms = (centroids ** 2).sum(axis=1)
        distances = norms[None, :] - 2.0 * dots
        assignment = distances.argmin(axis=1)
        empty = []
        for cell in range(num_cells):
            members = vectors[assignment == cell]
            if len(members):
                centroids[cell] = members.mean(axis=0)
            else:
                empty.append(cell)
        if empty:
            # Split the worst-served points: move each empty centroid onto a
            # distinct point that sits farthest from its current centroid.
            losses = distances[np.arange(n), assignment]
            farthest = np.argsort(-losses)[:len(empty)]
            for cell, point in zip(empty, farthest):
                centroids[cell] = vectors[point]
    return centroids


def candidate_count(cell_ids, probe) -> int:
    """Total candidate vectors across the probed cells."""
    return int(sum(len(cell_ids[c]) for c in probe))


class IVFFlatIndex:
    """Inverted-file index with exact (flat) scoring inside probed cells.

    Works on inner-product similarity over (approximately) normalised
    embeddings — the regime TinyCLIP similarity queries run in.
    """

    def __init__(self, num_cells: int = 16, train_iterations: int = 8, seed: int = 0):
        if num_cells < 1:
            raise ExecutionError("IVFFlatIndex needs at least one cell")
        self.num_cells = num_cells
        self.train_iterations = train_iterations
        self.seed = seed
        self._centroids: Optional[np.ndarray] = None
        self._cell_ids: list = []
        self._cell_vectors: list = []
        self._size = 0

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    @property
    def num_lists(self) -> int:
        """Number of cells actually built (<= num_cells for small corpora)."""
        return len(self._cell_ids)

    def __len__(self) -> int:
        return self._size

    def build(self, vectors: "np.ndarray | Tensor") -> "IVFFlatIndex":
        """Cluster the corpus and bucket every vector into its nearest cell."""
        if isinstance(vectors, Tensor):
            vectors = vectors.detach().data
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ExecutionError("index vectors must be (n, dim)")
        n = vectors.shape[0]
        cells = min(self.num_cells, n)
        rng = fork_generator(self.seed)
        self._centroids = _kmeans(vectors, cells, self.train_iterations, rng)
        dots = vectors @ self._centroids.T
        norms = (self._centroids ** 2).sum(axis=1)
        assignment = (norms[None, :] - 2.0 * dots).argmin(axis=1)
        self._cell_ids = []
        self._cell_vectors = []
        for cell in range(cells):
            ids = np.flatnonzero(assignment == cell)
            self._cell_ids.append(ids.astype(np.int64))
            self._cell_vectors.append(vectors[ids])
        self._size = n
        return self

    # Fan per-cell scoring out only when there is real work to split: below
    # this many candidate vectors one gemv beats a pool dispatch.
    PARALLEL_PROBE_MIN_ROWS = 2048

    def search(self, query: "np.ndarray | Tensor", k: int,
               nprobe: int = 4, pool=None) -> Tuple[np.ndarray, np.ndarray]:
        """Return (ids, scores) of the approximate top-k by inner product.

        Scoring runs per probed cell — a gemv is an independent dot product
        per row, so chunking the candidate matrix by cell and concatenating
        in probe order is bitwise identical to one gemv over the
        concatenated candidates. That makes the ``pool`` fan-out (one task
        per probed cell on the session's :class:`ShardPool`) exact by
        construction; the driver keeps the rank-order tail serial.
        """
        if not self.is_trained:
            raise ExecutionError("index must be built before searching")
        if isinstance(query, Tensor):
            query = query.detach().data
        query = np.asarray(query, dtype=np.float32).reshape(-1)
        nprobe = min(max(nprobe, 1), len(self._cell_ids))
        cell_scores = self._centroids @ query
        probe = np.argsort(-cell_scores)[:nprobe]
        candidate_ids = np.concatenate([self._cell_ids[c] for c in probe]) \
            if len(probe) else np.zeros(0, dtype=np.int64)
        if candidate_ids.size == 0:
            return candidate_ids, np.zeros(0, dtype=np.float32)
        scores = np.concatenate(self._probe_scores(query, probe, pool))
        k = min(k, len(candidate_ids))
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top])]
        return candidate_ids[top], scores[top]

    def _probe_scores(self, query: np.ndarray, probe: np.ndarray, pool) -> list:
        """Per-cell score arrays, in probe order ((0,) for empty cells)."""
        if pool is not None and len(probe) >= 2 \
                and candidate_count(self._cell_ids, probe) >= self.PARALLEL_PROBE_MIN_ROWS:
            from repro.core.partition import run_sharded

            def cell_task(c):
                return lambda: self._cell_vectors[c] @ query
            return run_sharded(pool, [cell_task(c) for c in probe])
        return [self._cell_vectors[c] @ query for c in probe]

    def recall_at_k(self, queries: np.ndarray, corpus: np.ndarray, k: int,
                    nprobe: int = 4) -> float:
        """Average overlap between approximate and exact top-k sets."""
        total = 0.0
        for query in queries:
            exact = np.argsort(-(corpus @ query))[:k]
            approx, _ = self.search(query, k, nprobe)
            total += len(set(exact.tolist()) & set(approx.tolist())) / k
        return total / len(queries)
