"""Lower optimized logical plans to physical operator trees.

This is the physical planning stage the paper describes in §2: "For each
physical operator, we can have more than one [tensor] implementation, and at
compilation time we use a mix of flags (e.g., Listing 6) and heuristics to
pick which one to use." Flags arrive through :class:`QueryConfig`; the
heuristics live in ``_pick_aggregate`` / ``_maybe_fuse_topk``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import PlanError
from repro.core.compiled_query import CompiledQuery, ExecNode
from repro.core.config import QueryConfig
from repro.core.operators import (
    DistinctExec,
    FilterExec,
    HashAggregateExec,
    JoinExec,
    LimitExec,
    ProjectExec,
    ScanExec,
    SoftAggregateExec,
    SoftFilterExec,
    SortAggregateExec,
    SortExec,
    TVFExec,
    TopKExec,
)
from repro.sql import logical
from repro.storage import types as dt
from repro.tcr.device import Device, as_device


class Compiler:
    def __init__(self, catalog, config: QueryConfig, device):
        self.catalog = catalog
        self.config = config
        self.device = as_device(device)

    def compile(self, plan: logical.LogicalPlan, sql_text: str) -> CompiledQuery:
        root = self._lower(plan)
        aggregate_outputs = _aggregate_output_slots(plan)
        return CompiledQuery(
            root=root,
            config=self.config,
            device=self.device,
            sql_text=sql_text,
            plan_text=plan.pretty(),
            output_schema=plan.schema,
            aggregate_outputs=aggregate_outputs,
        )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _lower(self, plan: logical.LogicalPlan) -> ExecNode:
        if isinstance(plan, logical.Scan):
            op = ScanExec(self.catalog, plan.table_name,
                          [name for name, _ in plan.schema], self.device)
            return ExecNode(op, [])

        if isinstance(plan, logical.TVFScan):
            child = self._lower(plan.input)
            op = TVFExec(plan.udf, plan.arg_exprs, [name for name, _ in plan.schema])
            return ExecNode(op, [child])

        if isinstance(plan, logical.Filter):
            child = self._lower(plan.input)
            if self.config.trainable and self.config.soft_filter:
                op = SoftFilterExec(plan.predicate, self.config.soft_temperature)
                return ExecNode(op, [child])
            # Split AND-conjuncts into a cascade so cheap predicates (already
            # cost-ordered by the optimizer) prune rows before UDF-bearing
            # ones run — the point of predicate reordering.
            from repro.sql.optimizer.pushdown import split_conjuncts
            node = child
            for conjunct in split_conjuncts(plan.predicate):
                node = ExecNode(FilterExec(conjunct), [node])
            return node

        if isinstance(plan, logical.Project):
            child = self._lower(plan.input)
            op = ProjectExec(plan.exprs, [name for name, _ in plan.schema])
            return ExecNode(op, [child])

        if isinstance(plan, logical.Aggregate):
            child = self._lower(plan.input)
            op = self._pick_aggregate(plan)
            return ExecNode(op, [child])

        if isinstance(plan, logical.JoinPlan):
            left = self._lower(plan.left)
            right = self._lower(plan.right)
            left_names = [name for name, _ in plan.left.schema]
            right_names = [name for name, _ in plan.right.schema]
            op = JoinExec(plan.kind, plan.left_keys, plan.right_keys, plan.residual,
                          left_names, right_names)
            return ExecNode(op, [left, right])

        if isinstance(plan, logical.Limit):
            fused = self._maybe_fuse_topk(plan)
            if fused is not None:
                return fused
            child = self._lower(plan.input)
            return ExecNode(LimitExec(plan.count, plan.offset), [child])

        if isinstance(plan, logical.Sort):
            child = self._lower(plan.input)
            return ExecNode(SortExec(plan.keys), [child])

        if isinstance(plan, logical.Distinct):
            child = self._lower(plan.input)
            return ExecNode(DistinctExec(), [child])

        raise PlanError(f"cannot lower {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Implementation choices (flags + heuristics)
    # ------------------------------------------------------------------
    def _pick_aggregate(self, plan: logical.Aggregate):
        impl = self.config.groupby_impl
        if impl == "soft" or (impl == "auto" and self.config.trainable and plan.group_exprs):
            return SoftAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)
        if impl == "hash":
            return HashAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)
        if impl == "sort":
            return SortAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)
        if impl != "auto":
            raise PlanError(f"unknown groupby_impl {impl!r}")
        # Heuristic measured in bench_ablation_operators (A2): the TQP-style
        # sort/segment algorithm dominates the unique(axis=0) hash variant on
        # this runtime at every cardinality we tested, so `auto` lowers to
        # sort; hash remains available behind the GROUPBY_IMPL flag.
        return SortAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)

    def _maybe_fuse_topk(self, plan: logical.Limit):
        if not isinstance(plan.input, logical.Sort):
            return None
        impl = self.config.topk_impl
        if impl == "sort":
            return None
        sort_plan = plan.input
        child = self._lower(sort_plan.input)
        op = TopKExec(sort_plan.keys, plan.count, plan.offset)
        return ExecNode(op, [child])


def _aggregate_output_slots(plan: logical.LogicalPlan) -> List[int]:
    """Output column indexes that carry aggregate values (for trainable runs).

    Walks down through output-preserving nodes to the Aggregate (if any) and
    maps its aggregate slots through intervening projections.
    """
    node = plan
    mapping = list(range(len(plan.schema)))
    while True:
        if isinstance(node, logical.Aggregate):
            num_groups = len(node.group_names)
            agg_slots = set(range(num_groups, num_groups + len(node.aggregates)))
            return [i for i, src in enumerate(mapping) if src in agg_slots]
        if isinstance(node, logical.Project):
            from repro.sql import bound as b
            new_mapping = []
            for out_idx, src in enumerate(mapping):
                expr = node.exprs[src] if 0 <= src < len(node.exprs) else None
                if isinstance(expr, b.BColumn):
                    new_mapping.append(expr.index)
                else:
                    new_mapping.append(-1)
            mapping = new_mapping
            node = node.input
            continue
        if isinstance(node, (logical.Filter, logical.Sort, logical.Limit, logical.Distinct)):
            node = node.input
            continue
        return []
