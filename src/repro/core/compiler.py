"""Lower optimized logical plans to physical operator trees.

This is the physical planning stage the paper describes in §2: "For each
physical operator, we can have more than one [tensor] implementation, and at
compilation time we use a mix of flags (e.g., Listing 6) and heuristics to
pick which one to use." Flags arrive through :class:`QueryConfig`; the
heuristics live in ``_pick_aggregate`` / ``_maybe_fuse_topk``.
"""

from __future__ import annotations

from typing import List

from repro.errors import PlanError
from repro.core.compiled_query import CompiledQuery, ExecNode
from repro.core.config import QueryConfig
from repro.core.operators import (
    CreateIndexExec,
    DistinctExec,
    DropIndexExec,
    FilterExec,
    FusedFilterExec,
    FusedFilterProjectExec,
    HashAggregateExec,
    IndexScanExec,
    JoinExec,
    LimitExec,
    ProjectExec,
    ScanExec,
    ShowIndexesExec,
    SoftAggregateExec,
    SoftFilterExec,
    SortAggregateExec,
    SortExec,
    TVFExec,
    TopKExec,
)
from repro.core.kernels.compiler import compile_filter, compile_projection
from repro.core.operators.compiled import (
    CompiledFilterExec,
    CompiledFusedFilterExec,
    CompiledFusedFilterProjectExec,
    CompiledPipelineExec,
    CompiledProjectExec,
)
from repro.core.operators.fused import can_substitute, substitute_columns
from repro.sql import logical
from repro.tcr.device import as_device


class Compiler:
    def __init__(self, catalog, config: QueryConfig, device, indexes=None,
                 tensor_cache=None, shard_pool=None, session=None):
        self.catalog = catalog
        self.config = config
        self.device = as_device(device)
        self.indexes = indexes          # the session's IndexManager (or None)
        self.tensor_cache = tensor_cache  # the session's TensorCache (or None)
        self.shard_pool = shard_pool    # the session's ShardPool (or None)
        self.session = session          # back-reference for telemetry (or None)

    def compile(self, plan: logical.LogicalPlan, sql_text: str) -> CompiledQuery:
        explain_mode = None
        if isinstance(plan, logical.ExplainPlan):
            # Lower the wrapped statement for real so plain EXPLAIN shows
            # the true physical tree (sharded scans, compiled kernels...).
            explain_mode = "analyze" if plan.analyze else "plan"
            inner_sql = plan.sql
            plan = plan.input
        root = self._lower(plan)
        if self._sharding:
            # Intra-query parallelism: rewrite shardable pipeline prefixes
            # (Scan → row-wise operators, plus mergeable global aggregates)
            # into partition drivers over the session's shard pool.
            from repro.core.operators.sharded import parallelize
            root = parallelize(root, self.config, self.shard_pool, ExecNode)
        if self._exchanging:
            # Exchange pass: hash-repartition key-equi joins and the grouped
            # aggregates the sharded rewrite stayed away from (non-mergeable
            # specs, aggregates above joins). Runs after parallelize so the
            # sharded drivers keep their (cheaper) partial-merge shape.
            from repro.core.operators.exchange import insert_exchanges
            metrics = self.session.metrics if self.session is not None else None
            root = insert_exchanges(root, self.config, self.shard_pool,
                                    ExecNode, metrics)
        if self._pipelining:
            # Whole-pipeline codegen: fuse maximal breaker-free
            # scan→filter→project[→aggregate] subtrees into one compiled
            # callable (sharded drivers keep their shape and gain a fused
            # per-shard body; serial chains collapse into one operator).
            root = self._fuse_pipelines(root)
        aggregate_outputs = _aggregate_output_slots(plan)
        query = CompiledQuery(
            root=root,
            config=self.config,
            device=self.device,
            sql_text=sql_text,
            plan_text=plan.pretty(),
            output_schema=plan.schema,
            aggregate_outputs=aggregate_outputs,
            tensor_cache=self.tensor_cache,
            session=self.session,
        )
        if explain_mode is not None:
            query.explain_mode = explain_mode
            query.explain_sql = inner_sql
        return query

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def _lower(self, plan: logical.LogicalPlan) -> ExecNode:
        if isinstance(plan, logical.Scan):
            op = ScanExec(self.catalog, plan.table_name,
                          [name for name, _ in plan.schema], self.device)
            return ExecNode(op, [])

        if isinstance(plan, logical.TVFScan):
            child = self._lower(plan.input)
            op = TVFExec(plan.udf, plan.arg_exprs, [name for name, _ in plan.schema])
            return ExecNode(op, [child])

        if isinstance(plan, logical.Filter):
            if self.config.trainable and self.config.soft_filter:
                child = self._lower(plan.input)
                op = SoftFilterExec(plan.predicate, self.config.soft_temperature)
                return ExecNode(op, [child])
            predicates, bottom = self._collect_filters(plan)
            return self._lower_filter_pipeline(predicates, bottom)

        if isinstance(plan, logical.Project):
            return self._lower_project(plan)

        if isinstance(plan, logical.Aggregate):
            child = self._lower(plan.input)
            op = self._pick_aggregate(plan)
            return ExecNode(op, [child])

        if isinstance(plan, logical.JoinPlan):
            left = self._lower(plan.left)
            right = self._lower(plan.right)
            left_names = [name for name, _ in plan.left.schema]
            right_names = [name for name, _ in plan.right.schema]
            op = JoinExec(plan.kind, plan.left_keys, plan.right_keys, plan.residual,
                          left_names, right_names)
            return ExecNode(op, [left, right])

        if isinstance(plan, logical.Limit):
            fused = self._maybe_fuse_topk(plan)
            if fused is not None:
                return fused
            child = self._lower(plan.input)
            return ExecNode(LimitExec(plan.count, plan.offset), [child])

        if isinstance(plan, logical.Sort):
            child = self._lower(plan.input)
            return ExecNode(SortExec(plan.keys), [child])

        if isinstance(plan, logical.Distinct):
            child = self._lower(plan.input)
            return ExecNode(DistinctExec(), [child])

        if isinstance(plan, logical.TopKSimilarity):
            if self.indexes is None:
                raise PlanError("TopKSimilarity requires a session IndexManager")
            child = self._lower(plan.input)
            op = IndexScanExec(
                self.indexes, plan, nprobe=self.config.nprobe,
                use_tensor_cache=self.config.tensor_cache,
                shard_pool=self.shard_pool if self._sharding else None)
            return ExecNode(op, [child])

        if isinstance(plan, (logical.CreateIndex, logical.DropIndex,
                             logical.ShowIndexes)):
            if self.indexes is None:
                raise PlanError("index DDL requires a session IndexManager")
            if isinstance(plan, logical.CreateIndex):
                return ExecNode(CreateIndexExec(self.indexes, plan), [])
            if isinstance(plan, logical.DropIndex):
                return ExecNode(DropIndexExec(self.indexes, plan), [])
            return ExecNode(ShowIndexesExec(self.indexes), [])

        raise PlanError(f"cannot lower {type(plan).__name__}")

    # ------------------------------------------------------------------
    # Filter/Project fusion
    # ------------------------------------------------------------------
    @property
    def _sharding(self) -> bool:
        # Trainable compilations keep the exact differentiable shape; a
        # shard count of 1 (the default) is serial execution by definition.
        return (self.config.parallel_scan and self.config.shards != 1
                and not self.config.trainable)

    @property
    def _exchanging(self) -> bool:
        # The exchange rewrite shares sharding's preconditions (a shard
        # count to partition over, exact non-trainable execution) behind
        # its own knob, which enters the plan-cache fingerprint like every
        # other flag.
        return (self.config.exchange and self.config.shards != 1
                and not self.config.trainable)

    @property
    def _fusing(self) -> bool:
        # Trainable compilations keep the one-module-per-operator shape the
        # soft/differentiable machinery assumes; everything else fuses by default.
        return self.config.fuse_operators and not self.config.trainable

    @property
    def _compiling(self) -> bool:
        # Kernel codegen detaches from autograd, so trainable compilations
        # always stay on the interpreter (gradients flow through tcr ops).
        return self.config.compile_exprs and not self.config.trainable

    @property
    def _pipelining(self) -> bool:
        # Pipeline fusion builds on the expression kernels and shares their
        # autograd caveat; both knobs must be on for whole-pipeline codegen.
        return (self.config.compile_pipelines and self.config.compile_exprs
                and not self.config.trainable)

    def _fuse_pipelines(self, node: ExecNode) -> ExecNode:
        """Post-lowering pass: attach/substitute compiled whole pipelines.

        Sharded drivers keep their operator (the partition/merge machinery
        is theirs) and gain a ``compiled_pipeline`` body run per shard;
        serial Scan→row-wise[→SortAggregate] chains are replaced by a
        :class:`CompiledPipelineExec` leaf. Anything that fails a breaker
        rule is left on the per-operator path untouched.
        """
        from repro.core.kernels.pipeline import compile_pipeline
        from repro.core.operators.sharded import _ShardedBase, _match_chain

        op = node.op
        if isinstance(op, _ShardedBase):
            # Per-shard body only: the driver still computes/merges partial
            # states itself, so the aggregate (if any) is not fused here.
            op.compiled_pipeline = compile_pipeline(op.pipeline)
            return node
        if type(op) is SortAggregateExec and len(node._children_nodes) == 1:
            chain = _match_chain(node._children_nodes[0])
            if chain is not None and chain[1]:
                scan, pipeline = chain
                compiled = compile_pipeline(pipeline, aggregate=op)
                if compiled is not None:
                    return ExecNode(
                        CompiledPipelineExec(scan, pipeline, op, compiled), [])
        chain = _match_chain(node)
        if chain is not None:
            scan, pipeline = chain
            compiled = compile_pipeline(pipeline) if len(pipeline) >= 2 else None
            if compiled is not None:
                return ExecNode(
                    CompiledPipelineExec(scan, pipeline, None, compiled), [])
            return node     # chains bottom out at the scan; nothing below
        children = [self._fuse_pipelines(c) for c in node._children_nodes]
        if all(new is old for new, old in zip(children, node._children_nodes)):
            return node
        return ExecNode(op, children)

    # Kernel-compiling operator factories: each tries to lower the expression
    # list into a vectorized kernel and silently keeps the interpreter
    # operator when any expression shape is unsupported (the plan shows the
    # choice: compiled operators describe() with a "Compiled" prefix).
    def _make_filter(self, predicate) -> FilterExec:
        if self._compiling:
            kernel = compile_filter([predicate])
            if kernel is not None:
                return CompiledFilterExec(predicate, kernel)
        return FilterExec(predicate)

    def _make_fused_filter(self, predicates) -> FusedFilterExec:
        if self._compiling:
            kernel = compile_filter(predicates)
            if kernel is not None:
                return CompiledFusedFilterExec(predicates, kernel)
        return FusedFilterExec(predicates)

    def _make_fused_filter_project(self, predicates, exprs, names) -> FusedFilterProjectExec:
        if self._compiling:
            filter_kernel = compile_filter(predicates)
            project_kernel = compile_projection(exprs, names)
            if filter_kernel is not None and project_kernel is not None:
                return CompiledFusedFilterProjectExec(
                    predicates, exprs, names, filter_kernel, project_kernel)
        return FusedFilterProjectExec(predicates, exprs, names)

    def _make_project(self, exprs, names) -> ProjectExec:
        if self._compiling:
            kernel = compile_projection(exprs, names)
            if kernel is not None:
                return CompiledProjectExec(exprs, names, kernel)
        return ProjectExec(exprs, names)

    def _collect_filters(self, plan: logical.Filter):
        """Flatten a chain of Filter nodes into its conjunct list + input.

        Conjuncts are returned in *execution* order (innermost node first):
        an inner filter guards the predicates stacked above it.
        """
        from repro.sql.optimizer.pushdown import split_conjuncts
        groups: List[List] = []
        node: logical.LogicalPlan = plan
        while isinstance(node, logical.Filter):
            groups.append(split_conjuncts(node.predicate))
            node = node.input
        predicates = [p for group in reversed(groups) for p in group]
        return predicates, node

    def _lower_filter_pipeline(self, predicates, bottom: logical.LogicalPlan) -> ExecNode:
        """Lower a conjunct list: fuse the UDF-free prefix into one pass.

        Cost ordering is the optimizer's job, so the conjunct order is kept
        as given: the leading UDF-free conjuncts evaluate as a single mask +
        gather, and everything from the first UDF-bearing conjunct on stays a
        cascade so user code still only sees pre-filtered rows.
        """
        node = self._lower(bottom)
        if not self._fusing:
            for conjunct in predicates:
                node = ExecNode(self._make_filter(conjunct), [node])
            return node
        prefix_len = 0
        while prefix_len < len(predicates) and not predicates[prefix_len].contains_udf():
            prefix_len += 1
        prefix, rest = predicates[:prefix_len], predicates[prefix_len:]
        if len(prefix) == 1:
            node = ExecNode(self._make_filter(prefix[0]), [node])
        elif prefix:
            node = ExecNode(self._make_fused_filter(prefix), [node])
        for conjunct in rest:
            node = ExecNode(self._make_filter(conjunct), [node])
        return node

    def _lower_project(self, plan: logical.Project) -> ExecNode:
        exprs = list(plan.exprs)
        names = [name for name, _ in plan.schema]
        node: logical.LogicalPlan = plan.input
        if self._fusing:
            # Project→Project: merge by inlining the inner projection.
            while isinstance(node, logical.Project) and can_substitute(exprs, node.exprs):
                exprs = [substitute_columns(e, node.exprs) for e in exprs]
                node = node.input
            # Filter→Project: one mask pass + lazy per-column gather, when no
            # conjunct carries a UDF (UDF conjuncts must see filtered rows).
            if isinstance(node, logical.Filter):
                predicates, bottom = self._collect_filters(node)
                if not any(p.contains_udf() for p in predicates):
                    child = self._lower(bottom)
                    op = self._make_fused_filter_project(predicates, exprs, names)
                    return ExecNode(op, [child])
        child = self._lower(node)
        return ExecNode(self._make_project(exprs, names), [child])

    # ------------------------------------------------------------------
    # Implementation choices (flags + heuristics)
    # ------------------------------------------------------------------
    def _pick_aggregate(self, plan: logical.Aggregate):
        impl = self.config.groupby_impl
        if impl == "soft" or (impl == "auto" and self.config.trainable and plan.group_exprs):
            return SoftAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)
        if impl == "hash":
            return HashAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)
        if impl == "sort":
            return SortAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)
        if impl != "auto":
            raise PlanError(f"unknown groupby_impl {impl!r}")
        # Heuristic measured in bench_ablation_operators (A2): the TQP-style
        # sort/segment algorithm dominates the unique(axis=0) hash variant on
        # this runtime at every cardinality we tested, so `auto` lowers to
        # sort; hash remains available behind the GROUPBY_IMPL flag.
        return SortAggregateExec(plan.group_exprs, plan.group_names, plan.aggregates)

    def _maybe_fuse_topk(self, plan: logical.Limit):
        if not isinstance(plan.input, logical.Sort):
            return None
        impl = self.config.topk_impl
        if impl == "sort":
            return None
        sort_plan = plan.input
        child = self._lower(sort_plan.input)
        op = TopKExec(sort_plan.keys, plan.count, plan.offset)
        return ExecNode(op, [child])


def _aggregate_output_slots(plan: logical.LogicalPlan) -> List[int]:
    """Output column indexes that carry aggregate values (for trainable runs).

    Walks down through output-preserving nodes to the Aggregate (if any) and
    maps its aggregate slots through intervening projections.
    """
    node = plan
    mapping = list(range(len(plan.schema)))
    while True:
        if isinstance(node, logical.Aggregate):
            num_groups = len(node.group_names)
            agg_slots = set(range(num_groups, num_groups + len(node.aggregates)))
            return [i for i, src in enumerate(mapping) if src in agg_slots]
        if isinstance(node, logical.Project):
            from repro.sql import bound as b
            new_mapping = []
            for out_idx, src in enumerate(mapping):
                expr = node.exprs[src] if 0 <= src < len(node.exprs) else None
                if isinstance(expr, b.BColumn):
                    new_mapping.append(expr.index)
                else:
                    new_mapping.append(-1)
            mapping = new_mapping
            node = node.input
            continue
        if isinstance(node, (logical.Filter, logical.Sort, logical.Limit, logical.Distinct)):
            node = node.input
            continue
        return []
