"""Compiled queries: executable operator trees that are also nn.Modules.

Paper §2: "The output of query compilation is a PyTorch model and, as such,
it can be: used in a training loop, executed on different hardware devices,
further optimized ... profiled ...". Here the compiled query is a Module of
our TCR, so ``parameters()``, ``train()/eval()`` and backprop all work on it.
"""

from __future__ import annotations

import contextlib
import time
from typing import List, Optional

import numpy as np

from repro.errors import ExecutionError
from repro.core.config import QueryConfig
from repro.core.operators.base import Operator, Relation
from repro.core.telemetry import QueryTrace, current_trace, span, tracing
from repro.storage.frame import DataFrame
from repro.storage.table import Table
from repro.tcr import ops
from repro.tcr.autograd import no_grad
from repro.tcr.nn.module import Module
from repro.tcr.tensor import Tensor


class ExecNode(Module):
    """One operator plus its input subtrees."""

    def __init__(self, op: Operator, children: List["ExecNode"]):
        super().__init__()
        self.op = op
        for i, child in enumerate(children):
            self.register_module(f"child{i}", child)
        self._children_nodes = children

    def forward(self) -> Relation:
        # Children evaluate before this operator's span opens, so operator
        # spans are siblings mirroring the tree rather than one deep nest;
        # each span contains only its operator's internal detail spans
        # (shard tasks, batcher flushes, index probes, cache counts).
        inputs = [child() for child in self._children_nodes]
        if not tracing():
            return self.op(*inputs)
        with span("operator", node=id(self), op=self.op.describe()) as sp:
            if inputs:
                sp.set(rows_in=sum(r.num_rows for r in inputs))
            result = self.op(*inputs)
            sp.set(rows_out=result.num_rows)
        return result

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.op.describe()]
        for child in self._children_nodes:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class QueryResult:
    """Materialised result of a non-trainable query."""

    def __init__(self, table: Table):
        self.table = table

    def __len__(self) -> int:
        return self.table.num_rows

    @property
    def column_names(self) -> List[str]:
        return self.table.column_names

    def column(self, name: str) -> np.ndarray:
        return self.table.column(name).decode()

    def to_frame(self) -> DataFrame:
        return self.table.to_frame()

    def scalar(self):
        """The single value of a 1x1 result (e.g. a global COUNT)."""
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {self.table.num_rows}x"
                f"{self.table.num_columns}"
            )
        return self.table.columns[0].decode()[0]

    def __repr__(self) -> str:
        return repr(self.to_frame())


class CompiledQuery(Module):
    """The artifact returned by ``tdp.sql.spark.query`` (paper Listing 2)."""

    def __init__(self, root: ExecNode, config: QueryConfig, device, sql_text: str,
                 plan_text: str, output_schema, aggregate_outputs: List[int],
                 tensor_cache=None, session=None):
        super().__init__()
        self.root = root
        self.config = config
        self.device = device
        self.sql_text = sql_text
        self.plan_text = plan_text
        self.output_schema = output_schema
        self.aggregate_outputs = aggregate_outputs
        self.tensor_cache = tensor_cache
        self.session = session          # owning Session, for telemetry sinks
        self.explain_mode = None        # None | "plan" | "analyze"
        self.explain_sql = ""           # inner statement text for EXPLAIN
        self._last_trace: Optional[QueryTrace] = None
        # Trainable queries start in training mode (soft operators active);
        # everything else starts deployed/eval (exact operators).
        self.train(config.trainable)

    def forward(self) -> Relation:
        return self.root()

    # ------------------------------------------------------------------
    # Execution API
    # ------------------------------------------------------------------
    def run(self, toPandas: bool = False):
        """Execute the query.

        Returns, in order of precedence:
          * a DataFrame when ``toPandas=True`` (paper Listing 3);
          * a differentiable Tensor for trainable queries in training mode
            (paper Listing 5 does arithmetic directly on the result);
          * a :class:`QueryResult` otherwise.

        ``EXPLAIN`` statements instead return a one-column ``plan`` relation
        describing the physical tree; ``EXPLAIN ANALYZE`` executes the inner
        statement under a trace first (see :meth:`last_trace`).
        """
        if self.explain_mode == "plan":
            return self._wrap_plan_text(self._render_plain_explain(), toPandas)
        if self.explain_mode == "analyze":
            return self._run_analyze(toPandas)
        trace = None
        if self.config.telemetry and current_trace() is None:
            # An ambient trace (e.g. this query runs inside another traced
            # scope) wins: spans join it, and last_trace() stays untouched.
            trace = QueryTrace(self.sql_text, str(self.device))
        start = time.perf_counter()
        if trace is not None:
            with trace.activate():
                result = self._execute(toPandas)
            self._last_trace = trace
        else:
            result = self._execute(toPandas)
        self._observe_run(time.perf_counter() - start, trace)
        return result

    def _execute(self, toPandas: bool):
        if self.training and self.config.trainable:
            relation = self.forward()
        else:
            with no_grad(), self._materialization_scope():
                relation = self.forward()
        if toPandas:
            return relation.table.to_frame()
        if self.config.trainable and self.training:
            return self._trainable_output(relation)
        return QueryResult(relation.table)

    def _observe_run(self, seconds: float, trace) -> None:
        session = self.session
        if session is None:
            return
        session.metrics.histogram("query.latency_seconds").observe(seconds)
        session.slow_log.observe(self.sql_text, seconds, trace,
                                 threshold=self.config.slow_query_seconds)

    # ------------------------------------------------------------------
    # Telemetry / EXPLAIN
    # ------------------------------------------------------------------
    def last_trace(self) -> Optional[QueryTrace]:
        """The structured trace of the most recent traced ``run`` (or None).

        Populated when the run itself created a trace — via the ``telemetry``
        config knob or ``EXPLAIN ANALYZE`` — not when it merely joined an
        ambient one.
        """
        return self._last_trace

    def _render_plain_explain(self) -> str:
        from repro.core.telemetry.explain import render_plan
        return (f"EXPLAIN {self.explain_sql}\n"
                f"{render_plan(self.root)}")

    def _run_analyze(self, toPandas: bool):
        from repro.core.telemetry.explain import render_analyze
        trace = QueryTrace(self.explain_sql, str(self.device))
        start = time.perf_counter()
        with trace.activate():
            if self.session is not None:
                # Re-enter the session's compile path inside the trace: the
                # compile/parse/bind/optimize/lower spans AND the plan-cache
                # verdict (hit on a warm statement) land in this trace.
                inner = self.session.compile_query(
                    self.explain_sql, device=self.device,
                    extra_config=self.config.as_mapping())
            else:
                inner = self
            with no_grad(), inner._materialization_scope():
                relation = inner.forward()
        seconds = time.perf_counter() - start
        self._last_trace = trace
        if self.session is not None:
            self.session.metrics.histogram("query.latency_seconds").observe(seconds)
            self.session.slow_log.observe(self.explain_sql, seconds, trace,
                                          threshold=self.config.slow_query_seconds)
        trace.result_rows = relation.num_rows
        text = render_analyze(inner.root, trace, statement=self.explain_sql)
        return self._wrap_plan_text(text, toPandas)

    @staticmethod
    def _wrap_plan_text(text: str, toPandas: bool):
        from repro.storage.column import Column
        lines = np.asarray(text.split("\n"), dtype=object)
        table = Table("explain", [Column.from_values("plan", lines)])
        if toPandas:
            return table.to_frame()
        return QueryResult(table)

    def _materialization_scope(self):
        """Activate the session's tensor cache for this run.

        Trainable compilations never use it (they own parameters whose state
        changes between runs), and the per-query ``tensor_cache`` flag or a
        zero session budget turns it off.
        """
        cache = self.tensor_cache
        if (cache is None or cache.max_bytes <= 0 or self.config.trainable
                or not self.config.tensor_cache):
            return contextlib.nullcontext()
        return cache.activate()

    def run_many(self, others=(), toPandas: bool = False) -> list:
        """Run this query plus ``others`` against shared scans.

        All scans of the same table/device within the batch resolve once
        (select + device transfer are paid once, not per statement). Returns
        the per-query results in order, this query's first.
        """
        from repro.core.operators.scan import shared_scans
        queries = [self, *others]
        with shared_scans():
            return [query.run(toPandas=toPandas) for query in queries]

    def _trainable_output(self, relation: Relation) -> Tensor:
        columns = relation.table.columns
        if self.aggregate_outputs:
            tensors = [columns[i].tensor for i in self.aggregate_outputs]
        else:
            tensors = [c.tensor for c in columns if c.tensor.dtype.kind == "f"]
            if not tensors:
                raise ExecutionError(
                    "trainable query produced no differentiable output column"
                )
        if len(tensors) == 1:
            return tensors[0]
        return ops.stack(tensors, dim=1)

    def explain(self) -> str:
        """Logical plan (post-optimizer) and the physical operator tree."""
        return f"== Optimized logical plan ==\n{self.plan_text}\n" \
               f"== Physical operators ==\n{self.root.pretty()}"

    def __repr__(self) -> str:
        mode = "trainable" if self.config.trainable else "inference"
        return f"CompiledQuery({self.sql_text!r}, mode={mode}, device={self.device})"
