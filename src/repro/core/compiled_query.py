"""Compiled queries: executable operator trees that are also nn.Modules.

Paper §2: "The output of query compilation is a PyTorch model and, as such,
it can be: used in a training loop, executed on different hardware devices,
further optimized ... profiled ...". Here the compiled query is a Module of
our TCR, so ``parameters()``, ``train()/eval()`` and backprop all work on it.
"""

from __future__ import annotations

import contextlib
from typing import List

import numpy as np

from repro.errors import ExecutionError
from repro.core.config import QueryConfig
from repro.core.operators.base import Operator, Relation
from repro.storage.frame import DataFrame
from repro.storage.table import Table
from repro.tcr import ops
from repro.tcr.autograd import no_grad
from repro.tcr.nn.module import Module
from repro.tcr.tensor import Tensor


class ExecNode(Module):
    """One operator plus its input subtrees."""

    def __init__(self, op: Operator, children: List["ExecNode"]):
        super().__init__()
        self.op = op
        for i, child in enumerate(children):
            self.register_module(f"child{i}", child)
        self._children_nodes = children

    def forward(self) -> Relation:
        inputs = [child() for child in self._children_nodes]
        return self.op(*inputs)

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.op.describe()]
        for child in self._children_nodes:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


class QueryResult:
    """Materialised result of a non-trainable query."""

    def __init__(self, table: Table):
        self.table = table

    def __len__(self) -> int:
        return self.table.num_rows

    @property
    def column_names(self) -> List[str]:
        return self.table.column_names

    def column(self, name: str) -> np.ndarray:
        return self.table.column(name).decode()

    def to_frame(self) -> DataFrame:
        return self.table.to_frame()

    def scalar(self):
        """The single value of a 1x1 result (e.g. a global COUNT)."""
        if self.table.num_rows != 1 or self.table.num_columns != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got {self.table.num_rows}x"
                f"{self.table.num_columns}"
            )
        return self.table.columns[0].decode()[0]

    def __repr__(self) -> str:
        return repr(self.to_frame())


class CompiledQuery(Module):
    """The artifact returned by ``tdp.sql.spark.query`` (paper Listing 2)."""

    def __init__(self, root: ExecNode, config: QueryConfig, device, sql_text: str,
                 plan_text: str, output_schema, aggregate_outputs: List[int],
                 tensor_cache=None):
        super().__init__()
        self.root = root
        self.config = config
        self.device = device
        self.sql_text = sql_text
        self.plan_text = plan_text
        self.output_schema = output_schema
        self.aggregate_outputs = aggregate_outputs
        self.tensor_cache = tensor_cache
        # Trainable queries start in training mode (soft operators active);
        # everything else starts deployed/eval (exact operators).
        self.train(config.trainable)

    def forward(self) -> Relation:
        return self.root()

    # ------------------------------------------------------------------
    # Execution API
    # ------------------------------------------------------------------
    def run(self, toPandas: bool = False):
        """Execute the query.

        Returns, in order of precedence:
          * a DataFrame when ``toPandas=True`` (paper Listing 3);
          * a differentiable Tensor for trainable queries in training mode
            (paper Listing 5 does arithmetic directly on the result);
          * a :class:`QueryResult` otherwise.
        """
        if self.training and self.config.trainable:
            relation = self.forward()
        else:
            with no_grad(), self._materialization_scope():
                relation = self.forward()
        if toPandas:
            return relation.table.to_frame()
        if self.config.trainable and self.training:
            return self._trainable_output(relation)
        return QueryResult(relation.table)

    def _materialization_scope(self):
        """Activate the session's tensor cache for this run.

        Trainable compilations never use it (they own parameters whose state
        changes between runs), and the per-query ``tensor_cache`` flag or a
        zero session budget turns it off.
        """
        cache = self.tensor_cache
        if (cache is None or cache.max_bytes <= 0 or self.config.trainable
                or not self.config.tensor_cache):
            return contextlib.nullcontext()
        return cache.activate()

    def run_many(self, others=(), toPandas: bool = False) -> list:
        """Run this query plus ``others`` against shared scans.

        All scans of the same table/device within the batch resolve once
        (select + device transfer are paid once, not per statement). Returns
        the per-query results in order, this query's first.
        """
        from repro.core.operators.scan import shared_scans
        queries = [self, *others]
        with shared_scans():
            return [query.run(toPandas=toPandas) for query in queries]

    def _trainable_output(self, relation: Relation) -> Tensor:
        columns = relation.table.columns
        if self.aggregate_outputs:
            tensors = [columns[i].tensor for i in self.aggregate_outputs]
        else:
            tensors = [c.tensor for c in columns if c.tensor.dtype.kind == "f"]
            if not tensors:
                raise ExecutionError(
                    "trainable query produced no differentiable output column"
                )
        if len(tensors) == 1:
            return tensors[0]
        return ops.stack(tensors, dim=1)

    def explain(self) -> str:
        """Logical plan (post-optimizer) and the physical operator tree."""
        return f"== Optimized logical plan ==\n{self.plan_text}\n" \
               f"== Physical operators ==\n{self.root.pretty()}"

    def __repr__(self) -> str:
        mode = "trainable" if self.config.trainable else "inference"
        return f"CompiledQuery({self.sql_text!r}, mode={mode}, device={self.device})"
