"""``repro.core`` — the TDP engine (the paper's primary contribution)."""

from repro.core.compiled_query import CompiledQuery, QueryResult
from repro.core.config import QueryConfig, constants
from repro.core.session import Session
from repro.core.tensor_cache import TensorCache
from repro.core.udf import FunctionRegistry, UdfInfo, collect_modules, parse_output_schema
from repro.core import soft

__all__ = [
    "CompiledQuery", "FunctionRegistry", "QueryConfig", "QueryResult",
    "Session", "TensorCache", "UdfInfo", "collect_modules", "constants",
    "parse_output_schema", "soft",
]
