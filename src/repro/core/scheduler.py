"""Concurrent query serving: worker pool, statement coalescing, and
cross-query inference batching.

The paper frames TDP as a *system* serving mixed AI+SQL workloads; NeurDB
and "Towards Effective Orchestration of AI x DB Workloads" both argue that
the win in concurrent AI-database serving comes from scheduling inference
*across* queries, not just caching within one. This module is that layer:

* :class:`QueryScheduler` — a worker pool behind ``Session.submit`` /
  ``Session.serve``. Statements execute exactly as ``compile_query().run()``
  would (same plan cache, same tensor cache, same locks), so results are
  identical to serialized execution.

* **Statement coalescing** — identical statements in flight at the same
  catalog/UDF/index versions share one execution: the first submission
  becomes the *leader*, later duplicates attach their futures and receive
  the leader's result object (the request-collapse technique CDNs use
  against thundering herds). This is what keeps throughput up in the
  eviction-bound regime where the working set exceeds the materialization
  cache: concurrent demand is served once even when nothing can be
  retained. DDL and trainable statements never coalesce; a registry change
  between two submissions (version stamp mismatch) disqualifies joining, so
  a follower never observes pre-DDL state submitted post-DDL.

* :class:`InferenceBatcher` — the cross-query inference scheduler. The CPU
  device profile dispatches UDFs row-at-a-time (the paper's Fig 2
  mechanism), so N concurrent similarity queries over one corpus each
  stream the same encoder micro-batches. The batcher intercepts encoder
  calls (via the tensor-cache encoder memo) and holds each request briefly;
  when every actively-encoding worker has a request pending (or a 2 ms
  window lapses), the batch flushes: identical-content requests collapse
  into **one forward pass** whose result is handed to every waiter and
  scattered back through the existing TensorCache per-slice keys — PR 3's
  slice-entry machinery extended with an in-flight rendezvous. The effect
  is a convoy: N queries advance row by row over the corpus paying one
  encode per row instead of N.

  With ``fuse_batches=True`` the flush additionally concatenates
  *different*-content requests for the same (model, device, shape) into one
  stacked forward. Stacked forwards change BLAS batch shapes, so outputs can
  differ from per-request forwards in float LSBs (exactly like an index
  build's full-batch encode vs. query-time micro-batches); it is off by
  default so concurrent serving stays bit-identical with serialized
  execution.

* **Admission control** — the serving front door (``Session.aquery``,
  ``core/server.py``) cannot let an overloaded queue grow without bound:
  unbounded queueing turns a 2x overload into unbounded p99 (every request
  waits behind the whole backlog). ``max_queue_depth`` caps the number of
  *queued* (not yet running) requests; beyond it the scheduler sheds load
  with a typed :class:`~repro.errors.ServerOverloaded` — either the new
  request (``shed_policy="reject"``) or the oldest queued request of the
  lowest priority class (``shed_policy="oldest"``). A request carrying a
  ``deadline`` hint is also shed at admission when the observed
  ``scheduler.queue_wait_seconds`` p95 already exceeds its budget, and
  dropped (``QueryDeadlineExceeded``) at dequeue if its budget lapsed while
  it waited — running a query whose client already timed out only steals
  capacity from requests that can still meet their SLO.

* **Per-client fairness + priority** — the queue is not FIFO across
  requests: it is round-robin across *clients* within a priority class
  (one greedy client submitting 100 statements cannot starve a client
  submitting 1), and strict across classes (``extra_config={"priority":
  N}``; higher dequeues first, so an interactive request overtakes a bulk
  backlog without preempting running work).

* **Adaptive batch window** — ``batch_window="auto"`` (the default) sizes
  the batcher's flush window from an EMA of encode-request inter-arrival
  times instead of the historical fixed 2 ms: busy convoys shrink the
  window toward the arrival period (less added latency), sparse traffic
  keeps a wider net. The chosen window is published as the
  ``batcher.window_seconds`` gauge in ``Session.metrics``.

Locking rules (engine-wide ordering, see ROADMAP "Concurrent serving"):
scheduler lock and batcher condition are leaves — no engine lock is
acquired while holding them, and the batcher computes forwards *outside*
its condition so waiting threads only block on the GIL-released numpy work.
Future callbacks (``set_result``/``set_exception``) always fire outside the
scheduler lock: an ``asyncio.wrap_future`` callback or user callback may
re-enter ``submit``.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from typing import List, Mapping, Optional, Sequence

from repro.core import tensor_cache as tc
from repro.core.config import QueryConfig
from repro.core.telemetry import Ewma, span, tracing
from repro.errors import QueryDeadlineExceeded, ServerOverloaded
from repro.tcr import ops
from repro.tcr.device import as_device

# Batcher registration scope. Each statement — and each shard task, which
# runs under a *copy* of the submitter's context — opens a fresh token, so
# the batcher tracks encode streams per (thread, statement) rather than per
# bare thread. Without the token, a coordinator thread helping run shard
# tasks of statement A while also mid-encode in statement B would be one
# conflated registry entry, and the shard task's ``statement_finished``
# would deregister the thread entirely — the early-flush tradeoff PR 5
# documented. A ``None`` token (direct batcher use outside the scheduler)
# falls back to the bare thread ident.
_ENCODE_SCOPE: "contextvars.ContextVar[Optional[object]]" = contextvars.ContextVar(
    "repro_encode_scope", default=None)


def new_encode_scope() -> None:
    """Open a fresh batcher registration scope in the current context."""
    _ENCODE_SCOPE.set(object())


class _EncodeRequest:
    """One pending encoder micro-batch (a worker blocked on its result)."""

    __slots__ = ("key", "model", "orig", "images", "tag", "token", "fp",
                 "cache", "done", "taken", "result", "exc")

    def __init__(self, key, model, orig, images, tag, token, fp, cache):
        self.key = key
        self.model = model
        self.orig = orig
        self.images = images
        self.tag = tag
        self.token = token
        self.fp = fp
        self.cache = cache
        self.done = False
        self.taken = False
        self.result = None
        self.exc = None


# Adaptive-window clamp (seconds) and shaping for ``window="auto"``: the
# flush deadline follows a few average inter-arrival gaps, so a convoy's
# next request reliably lands inside the window while a lone query's
# worst-case added latency stays bounded by AUTO_WINDOW_MAX.
AUTO_WINDOW_SEED = 0.002      # until enough arrivals are observed
AUTO_WINDOW_MIN = 0.0005
AUTO_WINDOW_MAX = 0.008
AUTO_WINDOW_GAPS = 4.0        # window covers ~this many average gaps
_AUTO_MIN_SAMPLES = 4         # EMA warm-up before the window moves
_AUTO_IDLE_GAP = 1.0          # gaps above this mean "no load", not "slow"


class InferenceBatcher:
    """Coalesce concurrent queries' encoder micro-batches for the same
    (model, device) into one forward pass.

    Requests rendezvous on a condition variable. A request flushes the
    pending set when every worker currently known to be encoding is blocked
    here (nothing new can arrive until someone is released) or when the
    batch window lapses — so a lone query pays zero added latency, while N
    lockstep queries pay one forward per distinct micro-batch.

    ``window`` is either a fixed number of seconds or ``"auto"``: size the
    window from the observed encode-request arrival rate (EMA of
    inter-arrival times, clamped to [AUTO_WINDOW_MIN, AUTO_WINDOW_MAX]).
    """

    def __init__(self, window=0.002, fuse: bool = False, session=None):
        self.auto_window = window == "auto"
        self.window = AUTO_WINDOW_SEED if self.auto_window else float(window)
        # Arrival-rate tracking for the adaptive window. _window_lock is a
        # leaf (never held while taking the condition or any engine lock).
        self._window_lock = threading.Lock()
        self._arrivals = Ewma("batcher.interarrival_seconds")
        self._last_arrival: Optional[float] = None
        self.fuse = bool(fuse)
        # The owning session, for mirroring lifetime counters into its
        # MetricsRegistry (read dynamically: Session.reset swaps registries).
        self._session = session
        self._cond = threading.Condition()
        self._pending: List[_EncodeRequest] = []
        self._inflight: dict = {}
        # Both sets hold (thread, statement)-scope keys (see _scope_key):
        # encode streams seen encoding, and streams currently waiting in
        # encode(). One thread serving several streams — the coordinator
        # helping with shard tasks — contributes one entry per stream.
        self._encoders: set = set()
        self._blocked: set = set()
        self.requests = 0
        self.joins = 0
        self.forwards = 0
        self.fused_forwards = 0
        self.fused_requests = 0

    # ------------------------------------------------------------------
    # Worker bookkeeping (called by QueryScheduler)
    # ------------------------------------------------------------------
    @staticmethod
    def _scope_key():
        """Registration key for the calling encode stream.

        ``(thread, statement-token)`` when a scope is open (scheduler
        statements, shard tasks); the bare thread ident otherwise, so
        direct batcher use keeps the original per-thread semantics."""
        token = _ENCODE_SCOPE.get()
        ident = threading.get_ident()
        return ident if token is None else (ident, token)

    def statement_finished(self) -> None:
        """The calling encode stream ended: stop waiting for it.

        Retires exactly the caller's (thread, statement) scope — a shard
        task finishing on a coordinator thread no longer deregisters the
        coordinator's own statement mid-encode."""
        key = self._scope_key()
        with self._cond:
            self._encoders.discard(key)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # The rendezvous
    # ------------------------------------------------------------------
    @property
    def _metrics(self):
        return self._session.metrics if self._session is not None else None

    def _observe_arrival(self) -> None:
        """Fold one encode-request arrival into the adaptive window."""
        now = time.monotonic()
        with self._window_lock:
            last = self._last_arrival
            self._last_arrival = now
            if last is None:
                return
            gap = now - last
            if gap > _AUTO_IDLE_GAP:
                # An idle stretch says nothing about the next convoy's
                # arrival rate; restart the gap chain without polluting
                # the EMA.
                return
            average = self._arrivals.observe(gap)
            if self._arrivals.count < _AUTO_MIN_SAMPLES:
                return
            window = min(max(average * AUTO_WINDOW_GAPS, AUTO_WINDOW_MIN),
                         AUTO_WINDOW_MAX)
            self.window = window
        metrics = self._metrics
        if metrics is not None:
            metrics.gauge("batcher.window_seconds").set(window)

    def encode(self, model, orig, images, tag, token, fp, cache):
        """Serve one encoder micro-batch, coalescing with concurrent
        identical requests (and optionally fusing distinct ones)."""
        if self.auto_window:
            self._observe_arrival()
        if not tracing():
            return self._encode(model, orig, images, tag, token, fp, cache)
        rows = images.shape[0] if images.ndim else 1
        # The span lands inside the requesting query's open operator span,
        # so rendezvous wait is attributed to the operator that encoded.
        with span("batcher_encode", rows=rows):
            return self._encode(model, orig, images, tag, token, fp, cache)

    def _encode(self, model, orig, images, tag, token, fp, cache):
        scope = self._scope_key()
        key = (token, str(images.device), tag.base, tag.rows_fp)
        device = str(images.device)
        batch = None
        joined = None
        with self._cond:
            self.requests += 1
            self._encoders.add(scope)
            req = self._inflight.get(key)
            if req is not None:
                # In-flight dedup: the same (model, content) is pending or
                # computing — wait for that single forward pass.
                self.joins += 1
                self._blocked.add(scope)
                try:
                    while not req.done:
                        self._cond.wait(0.05)
                finally:
                    self._blocked.discard(scope)
                joined = req
            else:
                req = _EncodeRequest(key, model, orig, images, tag, token,
                                     fp, cache)
                self._pending.append(req)
                self._inflight[key] = req
                self._blocked.add(scope)
                deadline = time.monotonic() + self.window
                try:
                    while not req.done:
                        if req.taken:
                            # Another flusher owns the batch containing us.
                            self._cond.wait(0.05)
                            continue
                        now = time.monotonic()
                        if self._flush_due() or now >= deadline:
                            batch = self._pending
                            self._pending = []
                            for r in batch:
                                r.taken = True
                            break
                        self._cond.wait(min(self.window,
                                            max(deadline - now, 1e-4)))
                finally:
                    self._blocked.discard(scope)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("batcher.requests").inc()
        if joined is not None:
            if metrics is not None:
                metrics.counter("batcher.joins").inc()
            # Cache write-back outside the condition (it takes the cache
            # lock and may copy a tensor; the rendezvous must never block
            # on it), and only when the computing request couldn't reach
            # this cache itself (e.g. its query ran with the cache off).
            if joined.exc is not None:
                raise joined.exc
            if cache is not None and fp is not None \
                    and joined.cache is not cache:
                cache.encoded_put(token, fp, tag, device,
                                  joined.result.detach())
            return joined.result
        if batch is not None:
            with span("batcher_flush", batch_size=len(batch)):
                self._run_batch(batch)
        if req.exc is not None:
            raise req.exc
        return req.result

    def _flush_due(self) -> bool:
        # Flush once everyone who could still contribute a micro-batch is
        # already waiting here (callers hold the condition).
        return bool(self._pending) and self._encoders <= self._blocked

    # ------------------------------------------------------------------
    # Execution (outside the condition: numpy releases the GIL)
    # ------------------------------------------------------------------
    def _run_batch(self, batch: List[_EncodeRequest]) -> None:
        # Counter deltas accumulate locally and publish under the condition
        # at the end: two flushers can run concurrently (a second batch
        # forms while the first computes), and unlocked `+=` would lose
        # updates.
        forwards = fused_forwards = fused_requests = 0
        try:
            groups: dict = {}
            for req in batch:
                shape = tuple(req.images.shape[1:]) if req.images.ndim else ()
                groups.setdefault((req.token, str(req.images.device), shape),
                                  []).append(req)
            for group in groups.values():
                if self.fuse and len(group) > 1:
                    # One stacked forward: a failure here legitimately
                    # poisons the whole group (it was one computation).
                    try:
                        stacked = ops.cat([r.images for r in group], dim=0)
                        forwards += 1
                        fused_forwards += 1
                        fused_requests += len(group)
                        out = group[0].orig(stacked)
                        offset = 0
                        for r in group:
                            n = r.images.shape[0]
                            r.result = out[offset:offset + n]
                            offset += n
                    except BaseException as exc:
                        for r in group:
                            r.exc = exc
                else:
                    # Independent forwards fail independently — one query's
                    # bad encode must not fail its groupmates.
                    for r in group:
                        try:
                            forwards += 1
                            r.result = r.orig(r.images)
                        except BaseException as exc:
                            r.exc = exc
            for req in batch:
                if req.exc is None and req.cache is not None \
                        and req.fp is not None:
                    try:
                        req.cache.encoded_put(req.token, req.fp, req.tag,
                                              str(req.images.device),
                                              req.result.detach())
                    except BaseException as exc:
                        req.exc = exc
        finally:
            # Publish in a finally: if anything above raised, waiters must
            # still be released (with the exception set) rather than spin
            # forever on req.done.
            with self._cond:
                self.forwards += forwards
                self.fused_forwards += fused_forwards
                self.fused_requests += fused_requests
                for req in batch:
                    if req.exc is None and req.result is None:
                        req.exc = RuntimeError(
                            "inference batch aborted before this request ran")
                    req.done = True
                    self._inflight.pop(req.key, None)
                self._cond.notify_all()
            metrics = self._metrics
            if metrics is not None:
                # Outside the condition: Counter has its own leaf lock.
                metrics.counter("batcher.forwards").inc(forwards)
                if fused_forwards:
                    metrics.counter("batcher.fused_forwards").inc(fused_forwards)
                    metrics.counter("batcher.fused_requests").inc(fused_requests)

    @property
    def stats(self) -> dict:
        with self._cond:
            return {
                "requests": self.requests, "joins": self.joins,
                "forwards": self.forwards,
                "fused_forwards": self.fused_forwards,
                "fused_requests": self.fused_requests,
                "window_seconds": self.window,
                "auto_window": self.auto_window,
            }


class _Job:
    __slots__ = ("statement", "device", "extra_config", "toPandas", "future",
                 "key", "stamp", "followers", "submitted", "client",
                 "priority", "deadline")

    def __init__(self, statement, device, extra_config, toPandas, future, key,
                 client=None, priority=0, deadline=None):
        self.statement = statement
        self.device = device
        self.extra_config = extra_config
        self.toPandas = toPandas
        self.future = future
        self.key = key
        self.stamp = None
        self.followers: List[Future] = []
        self.submitted = time.monotonic()
        self.client = client
        self.priority = priority
        self.deadline = deadline


# Minimum queue-wait observations before the histogram's p95 is trusted for
# deadline-aware admission (a handful of samples predicts nothing).
_PREDICT_MIN_SAMPLES = 16


class QueryScheduler:
    """Worker pool serving one session's statements concurrently.

    ``submit`` returns a ``concurrent.futures.Future``; ``shutdown`` drains
    the pool. Statements run through the ordinary ``Session.compile_query``
    → ``CompiledQuery.run`` path (plan cache, tensor cache, locks), so a
    scheduled statement's result is the result serialized execution would
    produce.

    The ready queue is priority-strict and client-fair: jobs dequeue from
    the highest priority class first, round-robin across the clients inside
    it. ``max_queue_depth`` bounds the queued backlog; over it, admission
    sheds load according to ``shed_policy`` (see the module docstring).
    """

    def __init__(self, session, workers: int = 4, coalesce: bool = True,
                 batch_inference: bool = True, fuse_batches: bool = False,
                 batch_window="auto", max_queue_depth: Optional[int] = None,
                 shed_policy: str = "reject"):
        self.session = session
        self.workers = max(1, int(workers))
        self.coalesce = bool(coalesce)
        self.max_queue_depth = (None if max_queue_depth is None
                                else max(1, int(max_queue_depth)))
        if shed_policy not in ("reject", "oldest"):
            raise ValueError(
                f"shed_policy must be 'reject' or 'oldest', got {shed_policy!r}")
        self.shed_policy = shed_policy
        self.batcher = (InferenceBatcher(window=batch_window, fuse=fuse_batches,
                                         session=session)
                        if batch_inference else None)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        # priority -> OrderedDict[client, deque[_Job]]; dict order inside a
        # priority class is the round-robin rotation.
        self._queues: dict = {}
        self._depth = 0
        self._inflight: dict = {}
        self.closed = False
        self.executed = 0
        self.coalesced = 0
        self.admitted = 0
        self.shed = 0
        self.deadline_missed = 0
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"tdp-serve-{i}")
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, statement: str, device: str = "cpu",
               extra_config: Optional[Mapping[str, object]] = None,
               toPandas: bool = False, client: Optional[str] = None) -> Future:
        """Admit one statement into the ready queue.

        ``client`` labels the submitting stream for round-robin fairness
        (``None`` pools into one shared anonymous stream). Raises
        :class:`ServerOverloaded` when admission control sheds the request;
        a queued request displaced later (``shed_policy="oldest"``) or
        expiring in the queue (``deadline``) receives the typed exception
        through its future instead.
        """
        config = QueryConfig(extra_config)   # validate at submission time
        priority = config.priority
        deadline = config.deadline
        key = None
        # toPandas results are mutable DataFrames a client may edit in
        # place: those never coalesce (each caller gets its own run), so
        # serving stays observably equivalent to serialized execution.
        if self.coalesce and not config.trainable and not toPandas \
                and not _ddl_statement(statement):
            key = (statement, str(as_device(device)), config.fingerprint())
        future: Future = Future()
        job = _Job(statement, device, extra_config, toPandas, future, key,
                   client=client, priority=priority, deadline=deadline)
        metrics = self.session.metrics
        # Deadline-aware admission reads the queue-wait histogram *before*
        # taking the scheduler lock (the estimate may be a submission stale;
        # admission is a heuristic, the dequeue-time check is the backstop).
        predicted_wait = None
        if deadline is not None:
            hist = metrics.histogram("scheduler.queue_wait_seconds")
            if hist.count >= _PREDICT_MIN_SAMPLES:
                predicted_wait = hist.quantile(0.95)
        shed_reason = None
        victim: Optional[_Job] = None
        with self._lock:
            if self.closed:
                raise RuntimeError("scheduler is shut down")
            if deadline is not None and predicted_wait is not None \
                    and self._depth >= self.workers \
                    and predicted_wait > deadline:
                shed_reason = "predicted_wait"
            elif self.max_queue_depth is not None \
                    and self._depth >= self.max_queue_depth:
                if self.shed_policy == "oldest":
                    victim = self._evict_oldest_locked(priority)
                if victim is None:
                    shed_reason = "queue_full"
            if shed_reason is not None:
                self.shed += 1
            else:
                self._enqueue_locked(job)
                self.admitted += 1
                self._ready.notify()
        # Future callbacks and metric increments happen outside the lock.
        if victim is not None:
            metrics.counter("scheduler.shed").inc()
            victim.future.set_exception(ServerOverloaded(
                f"request displaced from the queue by a newer submission "
                f"(shed_policy='oldest', max_queue_depth="
                f"{self.max_queue_depth})", reason="displaced"))
        if shed_reason is not None:
            metrics.counter("scheduler.shed").inc()
            if shed_reason == "predicted_wait":
                raise ServerOverloaded(
                    f"observed queue wait p95 ({predicted_wait:.3f}s) exceeds "
                    f"the request deadline ({deadline:.3f}s)",
                    reason=shed_reason)
            raise ServerOverloaded(
                f"ready queue is full ({self.max_queue_depth} queued "
                f"requests)", reason=shed_reason)
        metrics.counter("scheduler.admitted").inc()
        return future

    def map(self, statements: Sequence[str], device: str = "cpu",
            extra_config: Optional[Mapping[str, object]] = None,
            toPandas: bool = False, client: Optional[str] = None) -> List[object]:
        """Submit a batch and collect results in submission order."""
        futures = [self.submit(s, device=device, extra_config=extra_config,
                               toPandas=toPandas, client=client)
                   for s in statements]
        return [f.result() for f in futures]

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            # Workers drain the remaining backlog, then exit on empty.
            self._ready.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()

    @property
    def queue_depth(self) -> int:
        """Number of admitted jobs not yet picked up by a worker."""
        with self._lock:
            return self._depth

    @property
    def stats(self) -> dict:
        # Snapshot under the same lock that increments the counters, so a
        # reader can never observe a torn (executed, coalesced) pair — the
        # stat-tear class PR 4 fixed in the caches.
        with self._lock:
            out = {"executed": self.executed, "coalesced": self.coalesced,
                   "workers": self.workers, "depth": self._depth,
                   "admitted": self.admitted, "shed": self.shed,
                   "deadline_missed": self.deadline_missed}
        if self.batcher is not None:
            out["batcher"] = self.batcher.stats
        return out

    # ------------------------------------------------------------------
    # Ready queue (all helpers hold self._lock)
    # ------------------------------------------------------------------
    def _enqueue_locked(self, job: _Job) -> None:
        clients = self._queues.setdefault(job.priority, OrderedDict())
        queue = clients.get(job.client)
        if queue is None:
            queue = clients[job.client] = deque()
        queue.append(job)
        self._depth += 1

    def _dequeue_locked(self) -> Optional[_Job]:
        """Highest priority class first; round-robin across its clients."""
        while True:
            if self._depth:
                priority = max(self._queues)
                clients = self._queues[priority]
                client = next(iter(clients))
                queue = clients[client]
                job = queue.popleft()
                # Rotate the client to the back of its class: the next
                # dequeue at this priority serves a different client.
                clients.move_to_end(client)
                if not queue:
                    del clients[client]
                if not clients:
                    del self._queues[priority]
                self._depth -= 1
                return job
            if self.closed:
                return None
            self._ready.wait()

    def _evict_oldest_locked(self, new_priority: int) -> Optional[_Job]:
        """Displace the oldest queued job of the lowest priority class.

        Returns ``None`` (caller rejects the *new* request instead) when
        everything queued outranks the incoming priority — load shedding
        must never displace higher-priority work for lower.
        """
        if not self._depth:
            return None
        lowest = min(self._queues)
        if lowest > new_priority:
            return None
        clients = self._queues[lowest]
        # Deques are FIFO per client, so each head is that client's oldest.
        client = min(clients, key=lambda c: clients[c][0].submitted)
        queue = clients[client]
        job = queue.popleft()
        if not queue:
            del clients[client]
        if not clients:
            del self._queues[lowest]
        self._depth -= 1
        return job

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _version_stamp(self) -> tuple:
        session = self.session
        return (session.catalog.version, session.functions.version,
                session.indexes.epoch)

    def _worker(self) -> None:
        while True:
            with self._lock:
                job = self._dequeue_locked()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        if not job.future.set_running_or_notify_cancel():
            return
        metrics = self.session.metrics
        # Every dequeued job observes queue wait (coalesced ones included):
        # the histogram's count equals total jobs dequeued, which the
        # admission-control consumer reads against executed + coalesced.
        waited = time.monotonic() - job.submitted
        metrics.histogram("scheduler.queue_wait_seconds").observe(waited)
        if job.deadline is not None and waited > job.deadline:
            # The budget lapsed in the queue: drop rather than execute.
            with self._lock:
                self.deadline_missed += 1
            metrics.counter("scheduler.deadline_missed").inc()
            job.future.set_exception(QueryDeadlineExceeded(
                f"queued for {waited:.3f}s, past the {job.deadline:.3f}s "
                f"deadline"))
            return
        if job.key is not None:
            with self._lock:
                leader = self._inflight.get(job.key)
                if leader is not None and leader.stamp == self._version_stamp():
                    # Coalesce: ride the in-flight execution. The follower
                    # receives the leader's result object, exactly as a
                    # second serialized run would receive an equal result.
                    leader.followers.append(job.future)
                    self.coalesced += 1
                    metrics.counter("scheduler.coalesced").inc()
                    return
                job.stamp = self._version_stamp()
                self._inflight[job.key] = job
        try:
            result = self._execute(job)
        except BaseException as exc:
            self._finish(job, None, exc)
        else:
            self._finish(job, result, None)

    def _execute(self, job: _Job):
        scope = (tc.batching(self.batcher) if self.batcher is not None
                 else contextlib.nullcontext())
        try:
            with scope:
                if self.batcher is not None:
                    # Fresh per-statement registration scope: shard tasks
                    # copy it and then shadow it with their own (see
                    # InferenceBatcher._scope_key).
                    new_encode_scope()
                query = self.session.compile_query(
                    job.statement, device=job.device,
                    extra_config=job.extra_config)
                return query.run(toPandas=job.toPandas)
        finally:
            if self.batcher is not None:
                self.batcher.statement_finished()

    def _finish(self, job: _Job, result, exc) -> None:
        followers: List[Future] = []
        with self._lock:
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            followers = job.followers
            self.executed += 1
        self.session.metrics.counter("scheduler.executed").inc()
        for future in (job.future, *followers):
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)


def _ddl_statement(statement: str) -> bool:
    from repro.core.session import _DDL_PREFIX
    return _DDL_PREFIX.match(statement) is not None
