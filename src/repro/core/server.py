"""Asyncio HTTP/JSON serving front door over the query scheduler.

The embedded engine becomes a servable system here: a single-threaded
asyncio accept loop parses HTTP/1.1 requests, admits statements into the
session's :class:`~repro.core.scheduler.QueryScheduler` (which owns the
worker threads, admission control, per-client fairness and priority/SLO
dequeue), and bridges each ``concurrent.futures.Future`` back onto the
event loop with ``asyncio.wrap_future`` — so thousands of in-flight
requests ride on a bounded thread pool and the accept loop never blocks on
query execution.

Protocol (JSON request/response bodies; see docs/SERVING.md):

========  =================  ==============================================
method    path               effect
========  =================  ==============================================
POST      /query             run a statement to completion, return columns
POST      /submit            enqueue, return ``{"query_id": N}``
GET       /result/<id>       poll: pending / done (with columns) / error
POST      /explain           EXPLAIN (or EXPLAIN ANALYZE) a statement
GET       /metrics           ``Session.metrics.snapshot()``
GET       /health            liveness + queue depth
========  =================  ==============================================

Request bodies for the POST endpoints: ``{"statement": "...", "device":
"cpu", "extra_config": {...}}`` — ``extra_config`` accepts every engine
knob including the serving hints ``priority`` and ``deadline``.

**Per-client state.** Each client is identified by the ``x-tdp-client``
header (falling back to the connection's peer address), keyed into the
scheduler's round-robin fairness and into a per-client table of pending
``/submit`` futures. ``/result`` ids are scoped per client: one client can
never read (or guess) another's results.

**Backpressure.** When admission control sheds a request the server
answers ``503`` with a typed body ``{"error": {"type": "ServerOverloaded",
"reason": "queue_full" | "predicted_wait" | "displaced"}}``; a deadline
that lapses in the queue answers ``504 QueryDeadlineExceeded``. Clients
are expected to back off and retry — the point of shedding is that the
answer arrives *now*, not after the backlog.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import QueryDeadlineExceeded, ServerOverloaded, TdpError

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_SERVER_NAME = "tdp-serve"


class _ClientState:
    """Book-keeping for one logical client (may span connections)."""

    __slots__ = ("client_id", "next_query_id", "pending", "submitted",
                 "completed")

    def __init__(self, client_id: str):
        self.client_id = client_id
        self.next_query_id = 1
        # query_id -> (Future, monotonic submit time). Entries leave when the
        # result is delivered once — or when the TTL sweep evicts a result
        # the client abandoned (see TdpServer._evict_stale).
        self.pending: Dict[int, Tuple[object, float]] = {}
        self.submitted = 0
        self.completed = 0


def _json_default(value):
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


def _result_payload(result) -> dict:
    """JSON shape of one finished statement result."""
    from repro.core.compiled_query import QueryResult
    from repro.storage.frame import DataFrame
    if isinstance(result, QueryResult):
        columns = {name: np.asarray(result.column(name)).tolist()
                   for name in result.column_names}
        return {"columns": columns, "rows": len(result)}
    if isinstance(result, DataFrame):
        columns = {name: np.asarray(result[name]).tolist()
                   for name in result.columns}
        rows = len(next(iter(columns.values()))) if columns else 0
        return {"columns": columns, "rows": rows}
    return {"value": result}


class TdpServer:
    """One listening socket serving one :class:`Session`.

    The server owns a dedicated scheduler (its worker pool is the serving
    capacity; ``Session.submit``'s lazy pool stays untouched for embedded
    callers). ``port=0`` binds an ephemeral port, exposed as ``self.port``
    after :meth:`start` — tests bind 0 and read it back.
    """

    def __init__(self, session, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, max_queue_depth: Optional[int] = 64,
                 shed_policy: str = "reject", batch_window="auto",
                 default_device: str = "cpu",
                 max_pending_per_client: int = 64,
                 result_ttl_seconds: float = 300.0):
        from repro.core.scheduler import QueryScheduler
        self.session = session
        self.host = host
        self.port = port
        self.default_device = default_device
        # /submit hygiene: a client that never polls its results must not
        # grow an unbounded pending table (futures retain whole result
        # sets). The cap sheds new submits with a typed 503; the TTL sweep
        # reclaims results the client abandoned entirely.
        self.max_pending_per_client = int(max_pending_per_client)
        self.result_ttl_seconds = float(result_ttl_seconds)
        self.results_evicted = 0
        self.scheduler = QueryScheduler(
            session, workers=workers, max_queue_depth=max_queue_depth,
            shed_policy=shed_policy, batch_window=batch_window)
        self._clients: Dict[str, _ClientState] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.scheduler.shutdown()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        peer_id = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                client_id = headers.get("x-tdp-client", peer_id)
                status, payload = await self._dispatch(
                    method, path, body, client_id)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except ValueError as exc:
            # Oversized/garbled framing (readline limit, bad content-length).
            try:
                await self._write_response(
                    writer, 400, _error_body("BadRequest", str(exc)), False)
            except ConnectionError:
                pass
        except _BadRequest as exc:
            try:
                await self._write_response(
                    writer, 400, _error_body("BadRequest", str(exc)), False)
            except ConnectionError:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, dict, bytes]]:
        try:
            line = await reader.readline()
        except ValueError:
            raise _BadRequest("request line too long")
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                raise _BadRequest("headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    async def _write_response(self, writer: asyncio.StreamWriter, status: int,
                              payload: dict, keep_alive: bool) -> None:
        body = json.dumps(payload, default=_json_default).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout",
                  405: "Method Not Allowed"}.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"server: {_SERVER_NAME}\r\n"
                f"content-type: application/json\r\n"
                f"content-length: {len(body)}\r\n"
                f"connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                f"\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes,
                        client_id: str) -> Tuple[int, dict]:
        try:
            if method == "POST" and path == "/query":
                return await self._post_query(body, client_id)
            if method == "POST" and path == "/submit":
                return self._post_submit(body, client_id)
            if method == "GET" and path.startswith("/result/"):
                return await self._get_result(path, client_id)
            if method == "POST" and path == "/explain":
                return await self._post_explain(body, client_id)
            if method == "GET" and path == "/metrics":
                return 200, _sanitize(self.session.metrics.snapshot())
            if method == "GET" and path == "/health":
                return 200, {"status": "ok",
                             "queue_depth": self.scheduler.queue_depth,
                             "clients": len(self._clients),
                             "results_evicted": self.results_evicted}
            if path in ("/query", "/submit", "/explain", "/metrics", "/health"):
                return 405, _error_body("MethodNotAllowed",
                                        f"{method} not allowed on {path}")
            return 404, _error_body("NotFound", f"unknown path {path}")
        except ServerOverloaded as exc:
            return 503, _error_body("ServerOverloaded", str(exc),
                                    reason=exc.reason)
        except QueryDeadlineExceeded as exc:
            return 504, _error_body("QueryDeadlineExceeded", str(exc))
        except _BadRequest as exc:
            return 400, _error_body("BadRequest", str(exc))
        except (ValueError, KeyError, TypeError, TdpError) as exc:
            return 400, _error_body(type(exc).__name__, str(exc))
        except Exception as exc:     # noqa: BLE001 — the loop must survive
            return 500, _error_body(type(exc).__name__, str(exc))

    def _parse_statement_body(self, body: bytes) -> Tuple[str, str, Optional[dict]]:
        try:
            payload = json.loads(body.decode() or "{}")
        except ValueError as exc:
            raise _BadRequest(f"invalid JSON body: {exc}")
        if not isinstance(payload, dict) or "statement" not in payload:
            raise ValueError('body must be a JSON object with a "statement" key')
        statement = payload["statement"]
        if not isinstance(statement, str) or not statement.strip():
            raise ValueError('"statement" must be a non-empty string')
        device = payload.get("device", self.default_device)
        extra_config = payload.get("extra_config")
        if extra_config is not None and not isinstance(extra_config, dict):
            raise ValueError('"extra_config" must be a JSON object')
        return statement, device, extra_config

    def _client(self, client_id: str) -> _ClientState:
        state = self._clients.get(client_id)
        if state is None:
            state = self._clients[client_id] = _ClientState(client_id)
        return state

    def _submit(self, body: bytes, client_id: str):
        statement, device, extra_config = self._parse_statement_body(body)
        state = self._client(client_id)
        future = self.scheduler.submit(statement, device=device,
                                       extra_config=extra_config,
                                       client=client_id)
        state.submitted += 1
        return state, future

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _post_query(self, body: bytes, client_id: str) -> Tuple[int, dict]:
        state, future = self._submit(body, client_id)
        result = await asyncio.wrap_future(future)
        state.completed += 1
        return 200, _result_payload(result)

    def _evict_stale(self, state: _ClientState) -> None:
        """Reclaim pending entries the client abandoned (older than the TTL).

        Undelivered futures are cancelled (a no-op once running/done) so a
        queued statement whose client walked away does not consume a worker.
        """
        if self.result_ttl_seconds <= 0 or not state.pending:
            return
        now = time.monotonic()
        stale = [qid for qid, (_, born) in state.pending.items()
                 if now - born > self.result_ttl_seconds]
        for qid in stale:
            future, _ = state.pending.pop(qid)
            if not future.done():
                future.cancel()
            self.results_evicted += 1

    def _post_submit(self, body: bytes, client_id: str) -> Tuple[int, dict]:
        state = self._client(client_id)
        self._evict_stale(state)
        if len(state.pending) >= self.max_pending_per_client:
            # Shed before scheduler.submit: work a client cannot collect
            # must never occupy the queue or a worker.
            raise ServerOverloaded(
                f"client {client_id!r} has {len(state.pending)} undelivered "
                f"results (cap {self.max_pending_per_client}); poll "
                f"GET /result/<id> before submitting more",
                reason="too_many_pending")
        state, future = self._submit(body, client_id)
        query_id = state.next_query_id
        state.next_query_id += 1
        state.pending[query_id] = (future, time.monotonic())
        return 202, {"query_id": query_id, "client": client_id}

    async def _get_result(self, path: str, client_id: str) -> Tuple[int, dict]:
        try:
            query_id = int(path[len("/result/"):])
        except ValueError:
            return 400, _error_body("BadRequest", f"bad result id in {path}")
        state = self._client(client_id)
        self._evict_stale(state)
        entry = state.pending.get(query_id)
        if entry is None:
            return 404, _error_body(
                "NotFound", f"no pending query {query_id} for this client "
                            f"(results are delivered once)")
        future, _ = entry
        if not future.done():
            return 200, {"status": "pending", "query_id": query_id}
        del state.pending[query_id]
        state.completed += 1
        exc = future.exception()
        if exc is not None:
            if isinstance(exc, ServerOverloaded):
                return 503, _error_body("ServerOverloaded", str(exc),
                                        reason=exc.reason,
                                        status="error", query_id=query_id)
            if isinstance(exc, QueryDeadlineExceeded):
                return 504, _error_body("QueryDeadlineExceeded", str(exc),
                                        status="error", query_id=query_id)
            return 400, _error_body(type(exc).__name__, str(exc),
                                    status="error", query_id=query_id)
        payload = _result_payload(future.result())
        payload["status"] = "done"
        payload["query_id"] = query_id
        return 200, payload

    async def _post_explain(self, body: bytes, client_id: str) -> Tuple[int, dict]:
        statement, device, extra_config = self._parse_statement_body(body)
        if not statement.lstrip().lower().startswith("explain"):
            statement = f"EXPLAIN {statement}"
        state = self._client(client_id)
        future = self.scheduler.submit(statement, device=device,
                                       extra_config=extra_config,
                                       client=client_id)
        state.submitted += 1
        result = await asyncio.wrap_future(future)
        state.completed += 1
        lines = [str(v) for v in np.asarray(result.column("plan"))]
        return 200, {"plan": lines}


class _BadRequest(Exception):
    """Protocol-level violation: answer 400 and close the connection."""


def _error_body(kind: str, message: str, **extra) -> dict:
    body = {"error": {"type": kind, "message": message, **extra}}
    body.update({k: v for k, v in extra.items() if k in ("status", "query_id")})
    return body


def _sanitize(value):
    """Make a metrics snapshot JSON-encodable (numpy scalars, infinities)."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and (value != value or value in
                                     (float("inf"), float("-inf"))):
        return None
    return value
