"""Partition-driver layer for intra-query parallel execution (sharded scans).

"Query Processing on Tensor Computation Runtimes" (He et al.) shows that
data-parallel partitioning is how a tensor-runtime engine saturates
multi-core hardware; PR 4 parallelized *across* statements, this layer
parallelizes *within* one: a statement's base-table rows split into K
contiguous shards, the row-wise pipeline prefix runs per shard, and results
stitch back in shard order.

Two invariants make sharded execution bit-identical with serial execution:

* **Deterministic stitch order** — shards are contiguous row ranges and the
  driver concatenates their outputs in range order, so every downstream
  operator sees exactly the rows (and row order) serial execution produces.

* **Micro-batch alignment** — within a shard, UDFs still dispatch at the
  device profile's ``exec_batch_rows`` granularity, and shard boundaries are
  rounded to multiples of it. The set of kernel invocation shapes is then
  *identical* to serial execution's, which is what keeps float outputs
  bitwise equal (stacked BLAS calls of a different batch shape can flip
  LSBs — the same reason the PR 4 inference batcher never reshapes a
  request).

The :class:`ShardPool` is the worker side: a small set of daemon helper
threads shared by the whole session, plus *submitter helping* — the thread
that submits a shard batch also drains the queue until its batch completes.
Shard tasks are leaves (they never wait on other shard tasks or on the
pool), so scheduler workers running whole statements can submit shard
batches concurrently without deadlock: pool primitives stay leaf-level in
the PR 4 lock order, and the submitter always makes progress on its own
tasks even when every helper is busy with another query's shards.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.operators.base import Relation
from repro.errors import ExecutionError
from repro.storage.column import Column, concat_encoded
from repro.storage.table import Table
from repro.tcr.autograd import no_grad


def default_shards() -> int:
    """Shard count for ``shards=0`` (auto): one per available core."""
    return max(os.cpu_count() or 1, 1)


def plan_shards(num_rows: int, shards: int, min_rows: int,
                align: int = 1) -> List[Tuple[int, int]]:
    """Split ``[0, num_rows)`` into at most ``shards`` contiguous ranges.

    Returns a single full range (serial execution) when the input is too
    small to be worth splitting (``num_rows < min_rows``) or cannot be split
    without changing kernel shapes: with ``align > 1`` (a UDF-bearing
    pipeline on a device that micro-batches at that granularity) every
    boundary lands on an ``align`` multiple, so per-shard micro-batching
    reproduces serial execution's exact invocation sequence.
    """
    if num_rows <= 0:
        return [(0, 0)]
    if shards <= 1 or num_rows < max(min_rows, 2):
        return [(0, num_rows)]
    align = max(int(align), 1)
    if align > 1 and num_rows <= align:
        # Serial execution would run one un-split kernel; any partition
        # would change its shape.
        return [(0, num_rows)]
    chunk = -(-num_rows // shards)                 # ceil division
    chunk = -(-chunk // align) * align             # round up to alignment
    bounds = []
    start = 0
    while start < num_rows:
        stop = min(start + chunk, num_rows)
        bounds.append((start, stop))
        start = stop
    return bounds


# ----------------------------------------------------------------------
# Stitching shard outputs back into one relation
# ----------------------------------------------------------------------
def _concat_columns(pieces: Sequence[Column], base_rows: Optional[int]) -> Column:
    """Concatenate one output column's shard pieces in shard order.

    Encodings must agree across pieces (they do by construction: every
    shard runs the same operator pipeline over slices of the same base
    columns, so dictionary/probability encodings are the *same object* and
    computed columns are all plain). Lineage is stitched too, so the
    materialization cache sees the concatenated column as the same row
    subset serial execution would have produced.
    """
    first = pieces[0]
    encoded = concat_encoded(pieces)
    if encoded is None:
        raise ExecutionError(
            f"cannot stitch shard outputs of column {first.name!r}: "
            f"shards produced different encodings"
        )
    lineage = None
    parts = [p.lineage for p in pieces]
    if all(p is not None for p in parts):
        bases = {p[0] for p in parts}
        if len(bases) == 1 and all(p[1] is not None for p in parts):
            rows = np.concatenate([p[1] for p in parts])
            if (base_rows is not None and rows.size == base_rows
                    and rows.size > 0 and rows[0] == 0
                    and rows[-1] == base_rows - 1
                    and np.array_equal(rows, np.arange(base_rows))):
                rows = None            # full coverage: this *is* the base column
            lineage = (bases.pop(), rows)
    return Column(first.name, encoded, lineage)


def stitch_relations(pieces: Sequence[Relation],
                     base_rows: Optional[int] = None) -> Relation:
    """Merge per-shard output relations in shard order (the deterministic
    merge barrier). ``base_rows`` is the pre-shard input cardinality, used
    to recognise full-coverage outputs for cache lineage."""
    pieces = [p for p in pieces if p is not None]
    if not pieces:
        raise ExecutionError("stitch_relations needs at least one shard output")
    if len(pieces) == 1:
        return pieces[0]
    if any(p.weights is not None for p in pieces):
        raise ExecutionError("sharded execution does not support soft row weights")
    first = pieces[0].table
    columns = []
    for idx in range(first.num_columns):
        columns.append(_concat_columns([p.table.columns[idx] for p in pieces],
                                       base_rows))
    return Relation(Table(first.name, columns))


# ----------------------------------------------------------------------
# The shard worker pool
# ----------------------------------------------------------------------
class _ShardTask:
    __slots__ = ("fn", "ctx", "batch", "index", "result", "exc", "claimed")

    def __init__(self, fn, ctx, batch, index):
        self.fn = fn
        self.ctx = ctx
        self.batch = batch
        self.index = index
        self.result = None
        self.exc = None
        self.claimed = False


class _ShardBatch:
    __slots__ = ("remaining",)

    def __init__(self, count: int):
        self.remaining = count


class ShardPool:
    """Daemon helper threads + submitter-helping execution of shard tasks.

    ``run(fns)`` executes every callable (each under its own copy of the
    submitter's :mod:`contextvars` context, so the active tensor cache,
    inference batcher and shared-scan memo propagate to helper threads) and
    returns their results in order, re-raising the first exception by shard
    order after the whole batch has settled.

    Tasks are required to be leaves: they must not submit to or wait on the
    pool. Under that contract the pool cannot deadlock — helpers only ever
    block on an empty queue, and a submitter stuck waiting always finds its
    own unclaimed tasks to execute.
    """

    # Rough fixed cost of dispatching one shard batch (task creation,
    # context copy, queue signalling) — the break-even numerator for the
    # adaptive min-rows threshold.
    DISPATCH_COST_S = 2e-4
    _EMA_WEIGHT = 0.2

    def __init__(self, workers: Optional[int] = None,
                 idle_timeout: float = 5.0):
        self.workers = default_shards() if workers is None else max(int(workers), 0)
        self.idle_timeout = float(idle_timeout)
        self._cond = threading.Condition()
        self._queue: "deque[_ShardTask]" = deque()
        self._threads: List[threading.Thread] = []
        self.batches = 0
        self.tasks_run = 0
        self.helper_tasks = 0
        # Observed per-row pipeline cost (seconds/row EMA) feeding the
        # "auto" parallel_min_rows resolution.
        self._cost_lock = threading.Lock()
        self._per_row_cost: Optional[float] = None

    # ------------------------------------------------------------------
    # Adaptive sharding threshold
    # ------------------------------------------------------------------
    def observe_pipeline(self, rows: int, seconds: float) -> None:
        """Fold one pipeline execution into the per-row cost EMA."""
        if rows <= 0 or seconds <= 0:
            return
        cost = seconds / rows
        with self._cost_lock:
            if self._per_row_cost is None:
                self._per_row_cost = cost
            else:
                self._per_row_cost += self._EMA_WEIGHT * (cost - self._per_row_cost)

    def adaptive_min_rows(self, default: int = 64) -> int:
        """Break-even sharding threshold from the observed per-row cost.

        The raw break-even point (dispatch cost / per-row cost) is rounded
        *up* to a power of two and clamped to [16, 65536]: quantizing keeps
        the resolved value — which enters plan-cache fingerprints — in a
        handful of buckets instead of one per observation, so the cache
        does not churn as the EMA drifts.
        """
        with self._cost_lock:
            cost = self._per_row_cost
        if cost is None or cost <= 0:
            return int(default)
        raw = self.DISPATCH_COST_S / cost
        threshold = 16
        while threshold < raw and threshold < 65536:
            threshold <<= 1
        return threshold

    # ------------------------------------------------------------------
    def _spawn_helpers(self, wanted: int) -> None:
        # Callers hold the condition. Helper threads are created lazily and
        # capped at the pool size; a 1-core box gets one helper and the
        # submitter does most of the work itself.
        while len(self._threads) < min(wanted, self.workers):
            thread = threading.Thread(target=self._helper, daemon=True,
                                      name=f"tdp-shard-{len(self._threads)}")
            self._threads.append(thread)
            thread.start()

    def _helper(self) -> None:
        # Helpers retire after a few idle seconds (and respawn on the next
        # batch): long-lived processes creating many sessions must not
        # accumulate parked threads.
        me = threading.current_thread()
        idle_since = time.monotonic()
        while True:
            with self._cond:
                while not self._queue:
                    if time.monotonic() - idle_since > self.idle_timeout:
                        try:
                            self._threads.remove(me)
                        except ValueError:
                            pass
                        return
                    self._cond.wait(min(self.idle_timeout, 1.0))
                task = self._queue.popleft()
                task.claimed = True
                self.helper_tasks += 1
            self._run_task(task)
            idle_since = time.monotonic()

    def _run_task(self, task: _ShardTask) -> None:
        try:
            task.result = task.ctx.run(task.fn)
        except BaseException as exc:          # reported to the submitter
            task.exc = exc
        with self._cond:
            task.batch.remaining -= 1
            self.tasks_run += 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def run(self, fns: Sequence[Callable[[], object]]) -> List[object]:
        """Execute ``fns`` (possibly in parallel), results in input order."""
        if not fns:
            return []
        if len(fns) == 1:
            return [fns[0]()]
        batch = _ShardBatch(len(fns))
        tasks = [_ShardTask(fn, contextvars.copy_context(), batch, i)
                 for i, fn in enumerate(fns)]
        with self._cond:
            self.batches += 1
            self._queue.extend(tasks)
            self._spawn_helpers(len(fns) - 1)
            self._cond.notify_all()
        # Submitter helping: drain the queue (any query's tasks — shard work
        # from concurrent statements interleaves) until this batch settles.
        while True:
            with self._cond:
                if batch.remaining == 0:
                    break
                if self._queue:
                    task = self._queue.popleft()
                    task.claimed = True
                else:
                    self._cond.wait(0.05)
                    continue
            self._run_task(task)
        for task in tasks:
            if task.exc is not None:
                raise task.exc
        return [task.result for task in tasks]

    @property
    def stats(self) -> dict:
        with self._cond:
            return {"workers": self.workers, "threads": len(self._threads),
                    "batches": self.batches, "tasks": self.tasks_run,
                    "helper_tasks": self.helper_tasks}


def run_sharded(pool: Optional[ShardPool], fns: Sequence[Callable[[], object]]
                ) -> List[object]:
    """Run shard thunks through ``pool`` (serially when no pool is wired).

    Shard execution always happens inside the engine's inference scope, so
    each thunk is wrapped in ``no_grad()`` here: the grad flag is
    thread-local (not a contextvar) and helper threads would otherwise
    default to recording autograd graphs.
    """
    wrapped = [_no_grad_thunk(fn) for fn in fns]
    if pool is None:
        return [fn() for fn in wrapped]
    return pool.run(wrapped)


def _no_grad_thunk(fn):
    def run():
        with no_grad():
            return fn()
    return run
