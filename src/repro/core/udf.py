"""UDF/TVF registration (paper §3, "ML within SQL").

``@tdp_udf("Digit float, Size float")`` registers a Python function whose
body runs on the tensor runtime. Unlike classic DB UDFs there is no context
switch: the function's tensor ops become part of the compiled query's tensor
program, and any ``nn.Module`` the function closes over contributes trainable
parameters to the query (discovered automatically for
``CompiledQuery.parameters()``).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import UdfError
from repro.storage import types as dt
from repro.storage.column import Column
from repro.storage.encodings import EncodedTensor, PlainEncoding
from repro.tcr.nn.module import Module
from repro.tcr.tensor import Tensor


def parse_output_schema(schema_text: str) -> List[Tuple[str, dt.DataType]]:
    """Parse ``"Digit float, Size float"`` (or just ``"float"``) declarations."""
    schema: List[Tuple[str, dt.DataType]] = []
    parts = [p.strip() for p in schema_text.split(",") if p.strip()]
    if not parts:
        raise UdfError(f"empty UDF schema {schema_text!r}")
    for i, part in enumerate(parts):
        tokens = part.split()
        if len(tokens) == 1:
            name, type_name = f"col{i}", tokens[0]
        elif len(tokens) == 2:
            name, type_name = tokens
        else:
            raise UdfError(f"bad UDF schema fragment {part!r}")
        try:
            data_type = dt.parse_sql_type(type_name)
        except ValueError as exc:
            raise UdfError(str(exc)) from None
        schema.append((name, data_type))
    return schema


def collect_modules(func: Callable) -> List[Module]:
    """Find ``nn.Module`` instances the function can see (closure + globals).

    This is how a compiled query learns which parameters it owns: the CNNs in
    Listing 4 are module-level globals referenced by ``parse_mnist_grid``.
    """
    modules: List[Module] = []
    seen = set()

    def _add(value):
        if isinstance(value, Module) and id(value) not in seen:
            seen.add(id(value))
            modules.append(value)

    if func.__closure__:
        for cell in func.__closure__:
            try:
                _add(cell.cell_contents)
            except ValueError:
                continue
    code = getattr(func, "__code__", None)
    if code is not None:
        for name in code.co_names:
            if name in func.__globals__:
                _add(func.__globals__[name])
    return modules


ANN_METRICS = ("inner_product", "cosine")


@dataclasses.dataclass
class UdfInfo:
    """Registry entry for one user-defined (table-valued) function."""

    name: str
    func: Callable
    output_schema: List[Tuple[str, dt.DataType]]
    modules: List[Module]
    encoded_io: bool = False     # pass/accept EncodedTensor instead of Tensor
    # Declared ANN contract: set to "inner_product"/"cosine" when the UDF's
    # scores are monotone in that metric over its model's embedding space.
    # Only declared UDFs are eligible for vector-index acceleration — the
    # optimizer cannot infer monotonicity from an arbitrary function body.
    ann_metric: Optional[str] = None
    # Deterministic (parameter-frozen) UDFs may serve repeated evaluations
    # from the session's materialization cache; grad-enabled invocations
    # always bypass it regardless. Declare deterministic=False for functions
    # whose output depends on more than (inputs, module parameters).
    deterministic: bool = True
    # Registration stamp (set by FunctionRegistry.register): cache keys carry
    # it so re-registering a name can never hit entries of the old function.
    version: int = 0

    @property
    def is_table_valued(self) -> bool:
        return len(self.output_schema) > 1

    def invoke(self, args: Sequence[object]) -> List[Column]:
        """Call the function and normalise its results to engine columns."""
        try:
            result = self.func(*args)
        except Exception as exc:
            raise UdfError(f"UDF {self.name!r} raised: {exc}") from exc
        outputs = list(result) if isinstance(result, (tuple, list)) else [result]
        if len(outputs) != len(self.output_schema):
            raise UdfError(
                f"UDF {self.name!r} returned {len(outputs)} columns but declared "
                f"{len(self.output_schema)}"
            )
        columns: List[Column] = []
        for (col_name, _), value in zip(self.output_schema, outputs):
            if isinstance(value, EncodedTensor):
                columns.append(Column(col_name, value))
            elif isinstance(value, Tensor):
                columns.append(Column(col_name, EncodedTensor(value, PlainEncoding())))
            else:
                columns.append(Column.from_values(col_name, value))
        return columns

    def parameters(self):
        for module in self.modules:
            yield from module.parameters()

    def __repr__(self) -> str:
        cols = ", ".join(f"{n} {t}" for n, t in self.output_schema)
        return f"UdfInfo({self.name!r}, [{cols}], modules={len(self.modules)})"


class FunctionRegistry:
    """Session-scoped registry the binder resolves function names against.

    Thread-safe: registration (including the version stamp and the encoder
    memo install) happens under a re-entrant lock, so concurrent
    re-registration can neither tear the version counter nor double-wrap a
    model's ``encode_image``.
    """

    def __init__(self):
        self._functions: Dict[str, UdfInfo] = {}
        self._lock = threading.RLock()
        # Monotonic change counter mirroring Catalog.version: registering or
        # replacing a UDF invalidates cached plans that may reference it.
        self.version = 0

    def register(self, info: UdfInfo, replace: bool = True) -> None:
        key = info.name.lower()
        with self._lock:
            if not replace and key in self._functions:
                raise UdfError(f"function {info.name!r} already registered")
            self._functions[key] = info
            self.version += 1
            info.version = self.version
            if info.deterministic:
                # Two-tower models behind deterministic UDFs get a cache-aware
                # encode_image memo, so query-time evaluation and index builds
                # share corpus embeddings (see repro.core.tensor_cache).
                from repro.core.tensor_cache import install_encoder_memo
                for module in info.modules:
                    if hasattr(module, "encode_image") or hasattr(module, "encode_text"):
                        install_encoder_memo(module)

    def lookup(self, name: str) -> Optional[UdfInfo]:
        with self._lock:
            return self._functions.get(name.lower())

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._functions)

    def clear(self) -> None:
        with self._lock:
            self._functions.clear()
            self.version += 1


def make_udf_decorator(registry: FunctionRegistry):
    """Build a ``tdp_udf`` decorator bound to one session's registry."""

    def tdp_udf(schema_text: str, name: Optional[str] = None,
                modules: Optional[Sequence[Module]] = None,
                encoded_io: bool = False, ann: Optional[str] = None,
                deterministic: bool = True):
        output_schema = parse_output_schema(schema_text)
        if ann is not None and ann not in ANN_METRICS:
            raise UdfError(
                f"unknown ann metric {ann!r}; valid: {list(ANN_METRICS)}"
            )

        def decorate(func: Callable) -> Callable:
            found = list(modules) if modules is not None else collect_modules(func)
            info = UdfInfo(
                name=name or func.__name__,
                func=func,
                output_schema=output_schema,
                modules=found,
                encoded_io=encoded_io,
                ann_metric=ann,
                deterministic=deterministic,
            )
            registry.register(info)
            func.udf_info = info
            return func

        return decorate

    return tdp_udf
