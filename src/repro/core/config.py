"""Compilation flags and constants (paper Listing 6 uses ``tdp.constants``)."""

from __future__ import annotations

from typing import Mapping, Optional


class constants:
    """Namespace of extra_config keys, mirroring ``tdp.constants`` in the paper."""

    TRAINABLE = "trainable"
    # Operator implementation choices ("auto" lets heuristics decide).
    GROUPBY_IMPL = "groupby_impl"          # auto | sort | hash | soft
    JOIN_IMPL = "join_impl"                # auto | lookup | sortmerge
    TOPK_IMPL = "topk_impl"                # auto | sort | partition
    # Optimizer control.
    DISABLE_RULES = "disable_rules"        # iterable of {fold, pushdown, prune, vector_index}
    # Soft-operator hyperparameters.
    SOFT_FILTER = "soft_filter"            # relax WHERE into row weights
    SOFT_TEMPERATURE = "soft_temperature"  # sigmoid sharpness for soft filters
    # Execution-speed subsystem.
    PLAN_CACHE = "plan_cache"              # reuse compiled plans across calls
    FUSE_OPERATORS = "fuse_operators"      # collapse Filter/Project pipelines
    TENSOR_CACHE = "tensor_cache"          # reuse UDF/embedding materializations
    # Vector-index subsystem.
    NPROBE = "nprobe"                      # per-query IVF probe-width hint
    # Intra-query parallelism (sharded scans).
    PARALLEL_SCAN = "parallel_scan"        # enable the sharded-scan rewrite
    SHARDS = "shards"                      # shard count (1 = serial, 0 = auto)
    PARALLEL_MIN_ROWS = "parallel_min_rows"  # don't shard smaller inputs ("auto" adapts)
    EXCHANGE = "exchange"                  # hash-repartition joins/grouped aggregates
    # Expression codegen (TQP-style kernel compilation).
    COMPILE_EXPRS = "compile_exprs"        # compile Filter/Project expression kernels
    COMPILE_PIPELINES = "compile_pipelines"  # fuse whole scan→filter→project→agg subtrees
    # Observability.
    TELEMETRY = "telemetry"                # trace every run (EXPLAIN ANALYZE forces it)
    SLOW_QUERY_SECONDS = "slow_query_seconds"  # slow-log threshold (None = session default)
    # Serving / admission control (the scheduler front door).
    SCHEDULER_WORKERS = "scheduler_workers"  # worker-pool size (None = scheduler default)
    BATCH_WINDOW = "batch_window"          # inference-batch flush window ("auto" adapts)
    MAX_QUEUE_DEPTH = "max_queue_depth"    # queued-request cap (None = unbounded)
    SHED_POLICY = "shed_policy"            # reject | oldest (what to drop when full)
    PRIORITY = "priority"                  # dequeue priority class (higher runs sooner)
    DEADLINE = "deadline"                  # per-request SLO budget in seconds (None = no SLO)


_DEFAULTS = {
    constants.TRAINABLE: False,
    constants.GROUPBY_IMPL: "auto",
    constants.JOIN_IMPL: "auto",
    constants.TOPK_IMPL: "auto",
    constants.DISABLE_RULES: (),
    constants.SOFT_FILTER: False,
    constants.SOFT_TEMPERATURE: 25.0,
    constants.PLAN_CACHE: True,
    constants.FUSE_OPERATORS: True,
    constants.TENSOR_CACHE: True,
    constants.NPROBE: None,
    constants.PARALLEL_SCAN: True,
    constants.SHARDS: 1,
    constants.PARALLEL_MIN_ROWS: 64,
    constants.EXCHANGE: True,
    constants.COMPILE_EXPRS: True,
    constants.COMPILE_PIPELINES: True,
    constants.TELEMETRY: False,
    constants.SLOW_QUERY_SECONDS: None,
    constants.SCHEDULER_WORKERS: None,
    constants.BATCH_WINDOW: "auto",
    constants.MAX_QUEUE_DEPTH: None,
    constants.SHED_POLICY: "reject",
    constants.PRIORITY: 0,
    constants.DEADLINE: None,
}

_SHED_POLICIES = ("reject", "oldest")


class QueryConfig:
    """Validated view over the user's ``extra_config`` dict."""

    def __init__(self, extra_config: Optional[Mapping[str, object]] = None):
        merged = dict(_DEFAULTS)
        if extra_config:
            for key, value in extra_config.items():
                if key not in _DEFAULTS:
                    raise ValueError(
                        f"unknown config key {key!r}; valid keys: {sorted(_DEFAULTS)}"
                    )
                merged[key] = value
        self._values = merged

    def __getitem__(self, key: str):
        return self._values[key]

    @property
    def trainable(self) -> bool:
        return bool(self._values[constants.TRAINABLE])

    @property
    def groupby_impl(self) -> str:
        return str(self._values[constants.GROUPBY_IMPL])

    @property
    def join_impl(self) -> str:
        return str(self._values[constants.JOIN_IMPL])

    @property
    def topk_impl(self) -> str:
        return str(self._values[constants.TOPK_IMPL])

    @property
    def disable_rules(self):
        return tuple(self._values[constants.DISABLE_RULES])

    @property
    def soft_filter(self) -> bool:
        return bool(self._values[constants.SOFT_FILTER])

    @property
    def soft_temperature(self) -> float:
        return float(self._values[constants.SOFT_TEMPERATURE])

    @property
    def plan_cache(self) -> bool:
        return bool(self._values[constants.PLAN_CACHE])

    @property
    def fuse_operators(self) -> bool:
        return bool(self._values[constants.FUSE_OPERATORS])

    @property
    def tensor_cache(self) -> bool:
        return bool(self._values[constants.TENSOR_CACHE])

    @property
    def nprobe(self) -> Optional[int]:
        value = self._values[constants.NPROBE]
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"nprobe must be an integer, got {value!r}")
        if value < 1:
            raise ValueError(f"nprobe must be >= 1, got {value}")
        return value

    @property
    def parallel_scan(self) -> bool:
        return bool(self._values[constants.PARALLEL_SCAN])

    @property
    def shards(self) -> int:
        """Shard count for intra-query parallelism: 1 = serial execution,
        0 = one shard per available core, N = exactly N shards."""
        value = self._values[constants.SHARDS]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"shards must be an integer, got {value!r}")
        if value < 0 or value > 256:
            raise ValueError(f"shards must be in [0, 256], got {value}")
        return value

    @property
    def parallel_min_rows(self) -> int:
        value = self._values[constants.PARALLEL_MIN_ROWS]
        if value == "auto":
            # Unresolved adaptive threshold: the session resolves "auto" to a
            # concrete observed value (see Session.compile_query) before plan
            # construction; this static default only serves direct callers.
            return int(_DEFAULTS[constants.PARALLEL_MIN_ROWS])
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"parallel_min_rows must be an integer or 'auto', got {value!r}")
        if value < 0:
            raise ValueError(f"parallel_min_rows must be >= 0, got {value}")
        return value

    @property
    def adaptive_min_rows(self) -> bool:
        return self._values[constants.PARALLEL_MIN_ROWS] == "auto"

    def with_resolved_min_rows(self, value: int) -> "QueryConfig":
        """Copy with ``parallel_min_rows`` pinned to a concrete observed value.

        The resolved value (not the "auto" marker) enters ``fingerprint()``,
        so plans compiled under different observed thresholds cache as
        distinct entries and a threshold shift cannot resurrect a plan whose
        sharding decision no longer matches.
        """
        resolved = QueryConfig.__new__(QueryConfig)
        resolved._values = dict(self._values)
        resolved._values[constants.PARALLEL_MIN_ROWS] = int(value)
        return resolved

    @property
    def exchange(self) -> bool:
        """Hash-repartitioned joins and grouped aggregates (shards > 1)."""
        return bool(self._values[constants.EXCHANGE])

    @property
    def compile_exprs(self) -> bool:
        return bool(self._values[constants.COMPILE_EXPRS])

    @property
    def compile_pipelines(self) -> bool:
        return bool(self._values[constants.COMPILE_PIPELINES])

    @property
    def telemetry(self) -> bool:
        return bool(self._values[constants.TELEMETRY])

    @property
    def slow_query_seconds(self) -> Optional[float]:
        value = self._values[constants.SLOW_QUERY_SECONDS]
        if value is None:
            return None
        threshold = float(value)
        if threshold < 0:
            raise ValueError(f"slow_query_seconds must be >= 0, got {value!r}")
        return threshold

    # ------------------------------------------------------------------
    # Serving / admission control
    # ------------------------------------------------------------------
    @property
    def scheduler_workers(self) -> Optional[int]:
        value = self._values[constants.SCHEDULER_WORKERS]
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"scheduler_workers must be an integer, got {value!r}")
        if value < 1 or value > 64:
            raise ValueError(f"scheduler_workers must be in [1, 64], got {value}")
        return value

    @property
    def batch_window(self):
        """Inference-batch flush window: seconds, or ``"auto"`` to size it
        from the observed encode-request arrival rate (clamped EMA)."""
        value = self._values[constants.BATCH_WINDOW]
        if value == "auto":
            return "auto"
        window = float(value)
        if not (0.0 <= window <= 1.0):
            raise ValueError(
                f"batch_window must be 'auto' or seconds in [0, 1], got {value!r}")
        return window

    @property
    def max_queue_depth(self) -> Optional[int]:
        value = self._values[constants.MAX_QUEUE_DEPTH]
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"max_queue_depth must be an integer, got {value!r}")
        if value < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {value}")
        return value

    @property
    def shed_policy(self) -> str:
        value = self._values[constants.SHED_POLICY]
        if value not in _SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {_SHED_POLICIES}, got {value!r}")
        return str(value)

    @property
    def priority(self) -> int:
        value = self._values[constants.PRIORITY]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"priority must be an integer, got {value!r}")
        if value < -100 or value > 100:
            raise ValueError(f"priority must be in [-100, 100], got {value}")
        return value

    @property
    def deadline(self) -> Optional[float]:
        value = self._values[constants.DEADLINE]
        if value is None:
            return None
        deadline = float(value)
        if deadline <= 0:
            raise ValueError(f"deadline must be > 0 seconds, got {value!r}")
        return deadline

    def as_mapping(self) -> dict:
        """The effective flag values as a plain ``extra_config``-shaped dict.

        EXPLAIN ANALYZE re-compiles its inner statement under the outer
        statement's exact configuration; this round-trips it.
        """
        return dict(self._values)

    def fingerprint(self) -> tuple:
        """Hashable digest of every flag, for plan-cache keys."""
        return tuple(sorted((k, repr(v)) for k, v in self._values.items()))

    def as_optimizer_config(self) -> dict:
        return {"disable_rules": self.disable_rules}
