"""Synthetic datasets backing every experiment in the paper's evaluation."""

from repro.datasets import fonts
from repro.datasets.adult import (
    LABEL_COL,
    NUM_FEATURE_COLS,
    AdultDataset,
    make_adult,
    train_test_split,
)
from repro.datasets.attachments import (
    LOGO_NAMES,
    PHOTO_SUBJECTS,
    VENDORS,
    AttachmentDataset,
    make_attachments,
)
from repro.datasets.bags import Bag, laplace_counts, make_bags
from repro.datasets.digits import (
    IMAGE_SIZE,
    LARGE,
    SIZE_NAMES,
    SMALL,
    DigitDataset,
    make_digits,
    render_digit,
)
from repro.datasets.documents import (
    DocumentDataset,
    make_documents,
    render_dataframe_image,
)
from repro.datasets.iris import FEATURES as IRIS_FEATURES
from repro.datasets.iris import SPECIES as IRIS_SPECIES
from repro.datasets.iris import make_iris
from repro.datasets.mnist_grid import (
    GRID_SIZE,
    GRID_TILES,
    NUM_GROUPS,
    MnistGridDataset,
    group_index,
    make_grids,
    tiles_of,
)

__all__ = [
    "AdultDataset", "AttachmentDataset", "Bag", "DigitDataset",
    "DocumentDataset", "GRID_SIZE", "GRID_TILES", "IMAGE_SIZE",
    "IRIS_FEATURES", "IRIS_SPECIES", "LABEL_COL", "LARGE", "LOGO_NAMES",
    "MnistGridDataset", "NUM_FEATURE_COLS", "NUM_GROUPS", "PHOTO_SUBJECTS",
    "SIZE_NAMES", "SMALL", "VENDORS", "fonts", "group_index",
    "laplace_counts", "make_adult", "make_attachments", "make_bags",
    "make_digits", "make_documents", "make_grids", "make_iris",
    "render_dataframe_image", "render_digit", "tiles_of", "train_test_split",
]
