"""MNISTGrid: 3x3 grids of small/large digits (paper Example 3.1, Fig 1).

Each grid concatenates nine 28x28 digit tiles into one 84x84 image. The
supervision signal for trainable queries is the 20-element vector of counts
grouped by (digit 0-9, size small/large), flattened digit-major to match the
dense output order of the soft group-by.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.datasets.digits import IMAGE_SIZE, render_digit

GRID_TILES = 3                           # 3x3 tiles per grid
GRID_SIZE = GRID_TILES * IMAGE_SIZE      # 84
NUM_GROUPS = 10 * 2                      # (digit, size) combinations


@dataclasses.dataclass
class MnistGridDataset:
    """grids: (n, 1, 84, 84); counts: (n, 20); per-tile labels for analysis."""
    grids: np.ndarray
    counts: np.ndarray
    tile_digits: np.ndarray              # (n, 9)
    tile_sizes: np.ndarray               # (n, 9)

    def __len__(self) -> int:
        return self.grids.shape[0]


def group_index(digit: int, size: int) -> int:
    """Flattened (digit-major) index of a (digit, size) group."""
    return digit * 2 + size


def make_grids(n: int, rng: Optional[np.random.Generator] = None) -> MnistGridDataset:
    rng = rng or np.random.default_rng(0)
    grids = np.zeros((n, 1, GRID_SIZE, GRID_SIZE), dtype=np.float32)
    counts = np.zeros((n, NUM_GROUPS), dtype=np.float32)
    tile_digits = np.zeros((n, GRID_TILES * GRID_TILES), dtype=np.int64)
    tile_sizes = np.zeros((n, GRID_TILES * GRID_TILES), dtype=np.int64)
    for i in range(n):
        for tile in range(GRID_TILES * GRID_TILES):
            digit = int(rng.integers(0, 10))
            size = int(rng.integers(0, 2))
            r, c = divmod(tile, GRID_TILES)
            image = render_digit(digit, size, rng)
            grids[i, 0, r * IMAGE_SIZE:(r + 1) * IMAGE_SIZE,
                  c * IMAGE_SIZE:(c + 1) * IMAGE_SIZE] = image
            counts[i, group_index(digit, size)] += 1.0
            tile_digits[i, tile] = digit
            tile_sizes[i, tile] = size
    return MnistGridDataset(grids, counts, tile_digits, tile_sizes)


def tiles_of(grid: np.ndarray) -> np.ndarray:
    """Split one (1, 84, 84) grid into (9, 1, 28, 28) tiles (row-major)."""
    tiles = grid.reshape(1, GRID_TILES, IMAGE_SIZE, GRID_TILES, IMAGE_SIZE)
    tiles = tiles.transpose(1, 3, 0, 2, 4)
    return tiles.reshape(GRID_TILES * GRID_TILES, 1, IMAGE_SIZE, IMAGE_SIZE)
