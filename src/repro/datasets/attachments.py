"""Synthetic email-attachment images (paper §5.1, Fig 2).

Three visually distinct classes — photographs (with dog/cat/mountain/beach
subjects), receipts (white pages with text lines and a vendor-coloured
header band), and flat company logos — each paired with a natural-language
caption. TinyCLIP trains contrastively on (image, caption) pairs so the
multimodal queries ("receipt", "dog", "KFC Receipt") have signal to latch
onto at its 25x25 downsampled resolution.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.fonts import paste, render_text

IMAGE_HEIGHT = 200
IMAGE_WIDTH = 300

PHOTO_SUBJECTS = ["dog", "cat", "mountain", "beach"]
VENDORS = ["KFC", "STARBUCKS", "WALMART", "TARGET", "DINER"]
LOGO_NAMES = ["ACME", "GLOBEX", "INITECH", "UMBRELLA", "STARK"]

# Vendor header-band colours (visible even at 25x25): RGB in [0, 1].
_VENDOR_COLORS = {
    "KFC": (0.85, 0.10, 0.10),
    "STARBUCKS": (0.05, 0.45, 0.25),
    "WALMART": (0.15, 0.35, 0.80),
    "TARGET": (0.90, 0.25, 0.25),
    "DINER": (0.85, 0.65, 0.10),
}
_LOGO_COLORS = [
    (0.95, 0.35, 0.05), (0.10, 0.60, 0.90), (0.55, 0.10, 0.70),
    (0.95, 0.80, 0.05), (0.10, 0.75, 0.45),
]
_SUBJECT_COLORS = {
    "dog": (0.48, 0.30, 0.14),       # brown blob
    "cat": (0.55, 0.55, 0.58),       # grey blob
    "mountain": (0.42, 0.42, 0.46),  # grey triangle
    "beach": (0.93, 0.85, 0.60),     # sand
}


@dataclasses.dataclass
class AttachmentDataset:
    images: np.ndarray          # (n, 3, 200, 300) float32 in [0, 1]
    labels: np.ndarray          # object array: photograph / receipt / logo
    subjects: np.ndarray        # object array: dog / KFC / ACME / ...
    captions: List[str]

    def __len__(self) -> int:
        return self.images.shape[0]


def _coords(h: int, w: int) -> Tuple[np.ndarray, np.ndarray]:
    return np.meshgrid(np.arange(h), np.arange(w), indexing="ij")


def _photo(subject: str, rng: np.random.Generator) -> np.ndarray:
    h, w = IMAGE_HEIGHT, IMAGE_WIDTH
    rr, cc = _coords(h, w)
    img = np.zeros((3, h, w), dtype=np.float32)
    horizon = int(h * rng.uniform(0.4, 0.6))
    if subject in ("dog", "cat"):
        sky = np.array([0.55, 0.75, 0.95]) * rng.uniform(0.85, 1.1)
        ground = np.array([0.25, 0.55, 0.20]) * rng.uniform(0.85, 1.1)
    elif subject == "mountain":
        sky = np.array([0.60, 0.78, 0.95]) * rng.uniform(0.85, 1.1)
        ground = np.array([0.35, 0.45, 0.30]) * rng.uniform(0.85, 1.1)
    else:  # beach
        sky = np.array([0.55, 0.78, 0.95]) * rng.uniform(0.85, 1.1)
        ground = np.array(_SUBJECT_COLORS["beach"]) * rng.uniform(0.9, 1.05)
    for ch in range(3):
        img[ch, :horizon] = sky[ch]
        img[ch, horizon:] = ground[ch]
    if subject == "beach":
        # Strip of sea between sky and sand.
        sea_top = int(horizon * 0.8)
        sea = np.array([0.10, 0.40, 0.75]) * rng.uniform(0.9, 1.1)
        for ch in range(3):
            img[ch, sea_top:horizon] = sea[ch]
    if subject == "mountain":
        peak_c = int(w * rng.uniform(0.3, 0.7))
        peak_r = int(h * rng.uniform(0.12, 0.3))
        slope = rng.uniform(0.7, 1.3)
        mask = (rr >= peak_r) & (rr <= horizon) & \
               (np.abs(cc - peak_c) <= slope * (rr - peak_r))
        color = np.array(_SUBJECT_COLORS["mountain"]) * rng.uniform(0.9, 1.1)
        for ch in range(3):
            img[ch][mask] = color[ch]
        # Snow cap.
        cap = mask & (rr <= peak_r + (horizon - peak_r) * 0.25)
        for ch in range(3):
            img[ch][cap] = 0.95
    if subject in ("dog", "cat"):
        # Elliptical body + smaller head blob in the subject colour.
        color = np.array(_SUBJECT_COLORS[subject]) * rng.uniform(0.85, 1.1)
        body_r = int(h * rng.uniform(0.62, 0.78))
        body_c = int(w * rng.uniform(0.3, 0.7))
        ry, rx = int(h * 0.13), int(w * 0.13)
        body = ((rr - body_r) / ry) ** 2 + ((cc - body_c) / rx) ** 2 <= 1.0
        head = ((rr - (body_r - ry)) / (ry * 0.6)) ** 2 + \
               ((cc - (body_c + rx)) / (rx * 0.45)) ** 2 <= 1.0
        for ch in range(3):
            img[ch][body | head] = color[ch]
        if subject == "dog":
            # Dogs get floppy darker ears — extra texture contrast vs cats.
            ear = ((rr - (body_r - int(1.5 * ry))) / (ry * 0.5)) ** 2 + \
                  ((cc - (body_c + rx)) / (rx * 0.25)) ** 2 <= 1.0
            for ch in range(3):
                img[ch][ear] = color[ch] * 0.5
    img += rng.normal(0, 0.02, img.shape).astype(np.float32)
    return np.clip(img, 0.0, 1.0)


def _receipt(vendor: str, rng: np.random.Generator) -> np.ndarray:
    h, w = IMAGE_HEIGHT, IMAGE_WIDTH
    page = np.full((h, w), rng.uniform(0.93, 0.99), dtype=np.float32)
    ink = np.zeros((h, w), dtype=np.float32)
    # Vendor name centred near the top.
    title = render_text(vendor, scale=2)
    paste(ink, title, 26, max(4, (w - title.shape[1]) // 2))
    # Item lines: NAME .... PRICE
    items = ["BURGER", "FRIES", "COLA", "COFFEE", "WRAP", "SALAD", "PIE"]
    top = 56
    for _ in range(int(rng.integers(4, 8))):
        name = items[int(rng.integers(0, len(items)))]
        price = f"{rng.uniform(0.5, 19.99):.2f}"
        line = render_text(f"{name}  ${price}", scale=1)
        paste(ink, line, top, 20)
        top += 14
    paste(ink, render_text(f"TOTAL ${rng.uniform(5, 60):.2f}", scale=2), top + 6, 20)
    img = np.stack([page, page, page])
    img = img * (1.0 - np.stack([ink, ink, ink]) * 0.9)
    # Vendor-coloured header band (brand identity surviving downsampling).
    band_color = _VENDOR_COLORS[vendor]
    for ch in range(3):
        img[ch, :18, :] = band_color[ch] * rng.uniform(0.9, 1.05)
    img += rng.normal(0, 0.015, img.shape).astype(np.float32)
    return np.clip(img, 0.0, 1.0)


def _logo(name: str, rng: np.random.Generator) -> np.ndarray:
    h, w = IMAGE_HEIGHT, IMAGE_WIDTH
    bg = np.asarray(_LOGO_COLORS[int(rng.integers(0, len(_LOGO_COLORS)))])
    fg = 1.0 - bg  # complementary
    img = np.zeros((3, h, w), dtype=np.float32)
    for ch in range(3):
        img[ch] = bg[ch] * rng.uniform(0.9, 1.05)
    rr, cc = _coords(h, w)
    shape_kind = rng.integers(0, 3)
    center_r, center_c = h // 2, w // 2
    radius = int(min(h, w) * rng.uniform(0.28, 0.38))
    if shape_kind == 0:
        mask = (rr - center_r) ** 2 + (cc - center_c) ** 2 <= radius ** 2
    elif shape_kind == 1:
        mask = (np.abs(rr - center_r) <= radius) & (np.abs(cc - center_c) <= radius)
    else:
        mask = (np.abs(rr - center_r) + np.abs(cc - center_c)) <= radius
    for ch in range(3):
        img[ch][mask] = fg[ch]
    text = render_text(name[:4], scale=3)
    ink = np.zeros((h, w), dtype=np.float32)
    paste(ink, text, center_r - text.shape[0] // 2,
          max(0, center_c - text.shape[1] // 2))
    for ch in range(3):
        img[ch] = img[ch] * (1 - ink) + bg[ch] * ink
    img += rng.normal(0, 0.01, img.shape).astype(np.float32)
    return np.clip(img, 0.0, 1.0)


def make_attachments(n_photos: int = 100, n_receipts: int = 50, n_logos: int = 50,
                     rng: Optional[np.random.Generator] = None) -> AttachmentDataset:
    """Build the Fig 2 dataset (defaults: 100 photos / 50 receipts / 50 logos)."""
    rng = rng or np.random.default_rng(0)
    images, labels, subjects, captions = [], [], [], []
    for i in range(n_photos):
        subject = PHOTO_SUBJECTS[i % len(PHOTO_SUBJECTS)]
        images.append(_photo(subject, rng))
        labels.append("photograph")
        subjects.append(subject)
        captions.append(f"a photo of a {subject}")
    for i in range(n_receipts):
        vendor = VENDORS[i % len(VENDORS)]
        images.append(_receipt(vendor, rng))
        labels.append("receipt")
        subjects.append(vendor)
        captions.append(f"a receipt from {vendor}")
    for i in range(n_logos):
        name = LOGO_NAMES[i % len(LOGO_NAMES)]
        images.append(_logo(name, rng))
        labels.append("logo")
        subjects.append(name)
        captions.append(f"company logo of {name}")
    order = rng.permutation(len(images))
    stacked = np.stack(images).astype(np.float32)[order]
    return AttachmentDataset(
        images=stacked,
        labels=np.asarray(labels, dtype=object)[order],
        subjects=np.asarray(subjects, dtype=object)[order],
        captions=[captions[i] for i in order],
    )
