"""A built-in 5x7 bitmap font and text rasteriser.

This replaces the external rendering stacks the paper uses
(``dataframe_image`` for document tables; handwriting data for MNIST): text
and tables are rasterised from these glyphs, and the OCR pipeline
(:mod:`repro.ml.models.ocr`) recognises them back from pixels via template
matching, closing the image→table loop entirely inside the repo.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

# Each glyph is 7 rows x 5 columns; '#' = ink.
_GLYPHS = {
    "0": ["#####", "#...#", "#..##", "#.#.#", "##..#", "#...#", "#####"],
    "1": ["..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."],
    "2": ["#####", "....#", "....#", "#####", "#....", "#....", "#####"],
    "3": ["#####", "....#", "....#", ".####", "....#", "....#", "#####"],
    "4": ["#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"],
    "5": ["#####", "#....", "#....", "#####", "....#", "....#", "#####"],
    "6": ["#####", "#....", "#....", "#####", "#...#", "#...#", "#####"],
    "7": ["#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."],
    "8": ["#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"],
    "9": ["#####", "#...#", "#...#", "#####", "....#", "....#", "#####"],
    "A": [".###.", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"],
    "B": ["####.", "#...#", "#...#", "####.", "#...#", "#...#", "####."],
    "C": [".####", "#....", "#....", "#....", "#....", "#....", ".####"],
    "D": ["####.", "#...#", "#...#", "#...#", "#...#", "#...#", "####."],
    "E": ["#####", "#....", "#....", "####.", "#....", "#....", "#####"],
    "F": ["#####", "#....", "#....", "####.", "#....", "#....", "#...."],
    "G": [".####", "#....", "#....", "#.###", "#...#", "#...#", ".###."],
    "H": ["#...#", "#...#", "#...#", "#####", "#...#", "#...#", "#...#"],
    "I": [".###.", "..#..", "..#..", "..#..", "..#..", "..#..", ".###."],
    "J": ["..###", "...#.", "...#.", "...#.", "...#.", "#..#.", ".##.."],
    "K": ["#...#", "#..#.", "#.#..", "##...", "#.#..", "#..#.", "#...#"],
    "L": ["#....", "#....", "#....", "#....", "#....", "#....", "#####"],
    "M": ["#...#", "##.##", "#.#.#", "#.#.#", "#...#", "#...#", "#...#"],
    "N": ["#...#", "##..#", "#.#.#", "#..##", "#...#", "#...#", "#...#"],
    "O": [".###.", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."],
    "P": ["####.", "#...#", "#...#", "####.", "#....", "#....", "#...."],
    "Q": [".###.", "#...#", "#...#", "#...#", "#.#.#", "#..#.", ".##.#"],
    "R": ["####.", "#...#", "#...#", "####.", "#.#..", "#..#.", "#...#"],
    "S": [".####", "#....", "#....", ".###.", "....#", "....#", "####."],
    "T": ["#####", "..#..", "..#..", "..#..", "..#..", "..#..", "..#.."],
    "U": ["#...#", "#...#", "#...#", "#...#", "#...#", "#...#", ".###."],
    "V": ["#...#", "#...#", "#...#", "#...#", "#...#", ".#.#.", "..#.."],
    "W": ["#...#", "#...#", "#...#", "#.#.#", "#.#.#", "##.##", "#...#"],
    "X": ["#...#", "#...#", ".#.#.", "..#..", ".#.#.", "#...#", "#...#"],
    "Y": ["#...#", "#...#", ".#.#.", "..#..", "..#..", "..#..", "..#.."],
    "Z": ["#####", "....#", "...#.", "..#..", ".#...", "#....", "#####"],
    ".": [".....", ".....", ".....", ".....", ".....", ".##..", ".##.."],
    "-": [".....", ".....", ".....", "#####", ".....", ".....", "....."],
    ":": [".....", ".##..", ".##..", ".....", ".##..", ".##..", "....."],
    "/": ["....#", "....#", "...#.", "..#..", ".#...", "#....", "#...."],
    "$": ["..#..", ".####", "#.#..", ".###.", "..#.#", "####.", "..#.."],
    " ": [".....", ".....", ".....", ".....", ".....", ".....", "....."],
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5
CHARSET = "".join(sorted(_GLYPHS))
# Characters that may appear inside numeric table cells (OCR's charset).
NUMERIC_CHARSET = "0123456789.- "


def glyph(char: str, scale: int = 1) -> np.ndarray:
    """Rasterise one character to a float array in [0, 1] (1 = ink)."""
    char = char.upper()
    rows = _GLYPHS.get(char)
    if rows is None:
        rows = _GLYPHS[" "]
    bitmap = np.array([[1.0 if c == "#" else 0.0 for c in row] for row in rows],
                      dtype=np.float32)
    if scale > 1:
        bitmap = np.repeat(np.repeat(bitmap, scale, axis=0), scale, axis=1)
    return bitmap


def glyph_atlas(charset: Iterable[str] = CHARSET, scale: int = 1
                ) -> Dict[str, np.ndarray]:
    """Template dictionary used by the OCR matcher."""
    return {c: glyph(c, scale) for c in charset}


def render_text(text: str, scale: int = 1, spacing: int = 1) -> np.ndarray:
    """Rasterise a text line to a (7*scale, n*(5+spacing)*scale) array."""
    if not text:
        return np.zeros((GLYPH_HEIGHT * scale, 0), dtype=np.float32)
    pitch = (GLYPH_WIDTH + spacing) * scale
    height = GLYPH_HEIGHT * scale
    out = np.zeros((height, pitch * len(text)), dtype=np.float32)
    for i, char in enumerate(text):
        out[:, i * pitch:i * pitch + GLYPH_WIDTH * scale] = glyph(char, scale)
    return out


def char_pitch(scale: int = 1, spacing: int = 1) -> int:
    return (GLYPH_WIDTH + spacing) * scale


def paste(canvas: np.ndarray, patch: np.ndarray, top: int, left: int,
          value: float = 1.0) -> None:
    """Blend a glyph patch onto a canvas at (top, left) (in-place, clipped)."""
    h, w = patch.shape
    h = min(h, canvas.shape[0] - top)
    w = min(w, canvas.shape[1] - left)
    if h <= 0 or w <= 0:
        return
    region = canvas[top:top + h, left:left + w]
    canvas[top:top + h, left:left + w] = np.maximum(region, patch[:h, :w] * value)
