"""Synthetic Iris-like dataset (3 Gaussian species clusters, 4 features).

Used as the tabular payload rendered into document images for the OCR
experiment (paper §5.2 renders Iris dataframes with ``dataframe_image``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.storage.frame import DataFrame

FEATURES = ["SepalLength", "SepalWidth", "PetalLength", "PetalWidth"]
SPECIES = ["setosa", "versicolor", "virginica"]

# Cluster means/stds chosen near the classic dataset's per-species statistics.
_MEANS = {
    "setosa": [5.0, 3.4, 1.5, 0.2],
    "versicolor": [5.9, 2.8, 4.3, 1.3],
    "virginica": [6.6, 3.0, 5.6, 2.0],
}
_STDS = {
    "setosa": [0.35, 0.38, 0.17, 0.10],
    "versicolor": [0.52, 0.31, 0.47, 0.20],
    "virginica": [0.64, 0.32, 0.55, 0.27],
}


def make_iris(n: int = 150, rng: Optional[np.random.Generator] = None) -> DataFrame:
    rng = rng or np.random.default_rng(0)
    per_species = n // len(SPECIES)
    columns = {feat: [] for feat in FEATURES}
    species_col = []
    for species in SPECIES:
        means = np.asarray(_MEANS[species])
        stds = np.asarray(_STDS[species])
        samples = rng.normal(means, stds, size=(per_species, 4)).clip(0.1, 9.9)
        for j, feat in enumerate(FEATURES):
            columns[feat].extend(np.round(samples[:, j], 1))
        species_col.extend([species] * per_species)
    frame = DataFrame({feat: np.asarray(vals, dtype=np.float32)
                       for feat, vals in columns.items()})
    frame["Species"] = np.asarray(species_col, dtype=object)
    return frame
