"""Synthetic handwritten-style digits (the MNIST substitute).

Each sample rasterises a digit glyph with random geometric and photometric
perturbations — scale, translation, shear, stroke thickening, blur, noise —
giving visually separable classes with substantial intra-class variation,
which is the property the MNISTGrid learning experiments rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.datasets.fonts import glyph

IMAGE_SIZE = 28
SMALL, LARGE = 0, 1
SIZE_NAMES = ("Small", "Large")
# Target glyph heights (pixels) for the two size classes.
_SIZE_RANGES = {SMALL: (10, 14), LARGE: (20, 26)}


def _resize_nearest(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    rows = (np.arange(out_h) * image.shape[0] / out_h).astype(int)
    cols = (np.arange(out_w) * image.shape[1] / out_w).astype(int)
    return image[rows][:, cols]


def _shear(image: np.ndarray, amount: float) -> np.ndarray:
    h, w = image.shape
    out = np.zeros_like(image)
    shifts = (amount * (np.arange(h) - h / 2)).astype(int)
    for r in range(h):
        out[r] = np.roll(image[r], shifts[r])
    return out


def _blur3(image: np.ndarray) -> np.ndarray:
    padded = np.pad(image, 1)
    acc = np.zeros_like(image)
    for dr in (0, 1, 2):
        for dc in (0, 1, 2):
            acc += padded[dr:dr + image.shape[0], dc:dc + image.shape[1]]
    return acc / 9.0


def _thicken(image: np.ndarray) -> np.ndarray:
    padded = np.pad(image, 1)
    out = image.copy()
    for dr, dc in ((0, 1), (2, 1), (1, 0), (1, 2)):
        out = np.maximum(out, padded[dr:dr + image.shape[0], dc:dc + image.shape[1]])
    return out


def render_digit(digit: int, size_class: int, rng: np.random.Generator,
                 image_size: int = IMAGE_SIZE) -> np.ndarray:
    """One (image_size, image_size) float image in [0, 1]."""
    lo, hi = _SIZE_RANGES[size_class]
    target_h = int(rng.integers(lo, hi + 1))
    target_w = max(4, int(target_h * 5 / 7 * rng.uniform(0.85, 1.15)))
    base = glyph(str(digit))
    img = _resize_nearest(base, target_h, target_w)
    if rng.random() < 0.5:
        img = _thicken(img)
    img = _shear(img, rng.uniform(-0.15, 0.15))
    canvas = np.zeros((image_size, image_size), dtype=np.float32)
    margin_r = image_size - target_h
    margin_c = image_size - img.shape[1]
    top = int(rng.integers(0, max(margin_r, 1)))
    left = int(rng.integers(0, max(margin_c, 1)))
    canvas[top:top + target_h, left:left + img.shape[1]] = img
    canvas = _blur3(canvas)
    canvas *= rng.uniform(0.8, 1.0)
    canvas += rng.normal(0.0, 0.05, canvas.shape).astype(np.float32)
    return np.clip(canvas, 0.0, 1.0).astype(np.float32)


@dataclasses.dataclass
class DigitDataset:
    """images: (n, 1, 28, 28); digits/sizes: (n,) int labels."""
    images: np.ndarray
    digits: np.ndarray
    sizes: np.ndarray

    def __len__(self) -> int:
        return self.images.shape[0]


def make_digits(n: int, rng: Optional[np.random.Generator] = None,
                size_class: Optional[int] = None) -> DigitDataset:
    """Sample ``n`` digits uniformly over classes (and sizes unless fixed)."""
    rng = rng or np.random.default_rng(0)
    digits = rng.integers(0, 10, size=n)
    if size_class is None:
        sizes = rng.integers(0, 2, size=n)
    else:
        sizes = np.full(n, size_class, dtype=np.int64)
    images = np.stack([
        render_digit(int(d), int(s), rng)[None, :, :]
        for d, s in zip(digits, sizes)
    ])
    return DigitDataset(images.astype(np.float32), digits.astype(np.int64),
                        sizes.astype(np.int64))
