"""Synthetic Adult-Income-like census data (paper §5.3).

The real 1994 census extract is not shipped in this offline environment, so
we generate census-shaped records whose binary income label follows a noisy
ground-truth logistic model over the numeric features. What the LLP
experiments measure — how aggregation granularity dilutes instance-level
supervision — depends only on the feature/label joint being learnable by a
linear classifier, which this generator guarantees by construction.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.storage.frame import DataFrame

NUM_FEATURE_COLS = [
    "age", "education_num", "hours_per_week", "capital_gain", "capital_loss",
]
LABEL_COL = "income_gt_50k"

# Ground-truth logistic weights over standardised features.
_TRUE_WEIGHTS = np.array([0.9, 1.3, 0.8, 1.1, -0.6], dtype=np.float64)
_TRUE_BIAS = -0.4
_LABEL_NOISE = 0.08          # fraction of labels flipped (keeps Bayes error > 0)


@dataclasses.dataclass
class AdultDataset:
    frame: DataFrame
    features: np.ndarray     # standardised (n, 5) float32
    labels: np.ndarray       # (n,) int64 in {0, 1}

    def __len__(self) -> int:
        return self.labels.shape[0]


def make_adult(n: int, rng: Optional[np.random.Generator] = None) -> AdultDataset:
    rng = rng or np.random.default_rng(0)
    age = rng.normal(38.5, 13.0, n).clip(17, 90)
    education = rng.normal(10.0, 2.5, n).clip(1, 16).round()
    hours = rng.normal(40.0, 12.0, n).clip(1, 99)
    # Capital gains/losses are zero-inflated and heavy-tailed, as in the census.
    gain = np.where(rng.random(n) < 0.08, rng.exponential(12000, n), 0.0).clip(0, 99999)
    loss = np.where(rng.random(n) < 0.05, rng.exponential(1800, n), 0.0).clip(0, 4356)
    raw = np.stack([age, education, hours, gain, loss], axis=1)

    standardized = _standardize(raw)
    logits = standardized @ _TRUE_WEIGHTS + _TRUE_BIAS
    probs = 1.0 / (1.0 + np.exp(-logits))
    labels = (rng.random(n) < probs).astype(np.int64)
    flips = rng.random(n) < _LABEL_NOISE
    labels[flips] = 1 - labels[flips]

    frame = DataFrame({
        "age": age.astype(np.float32),
        "education_num": education.astype(np.float32),
        "hours_per_week": hours.astype(np.float32),
        "capital_gain": gain.astype(np.float32),
        "capital_loss": loss.astype(np.float32),
        LABEL_COL: labels,
    })
    return AdultDataset(frame, standardized.astype(np.float32), labels)


def _standardize(raw: np.ndarray) -> np.ndarray:
    mean = raw.mean(axis=0, keepdims=True)
    std = raw.std(axis=0, keepdims=True)
    return (raw - mean) / np.maximum(std, 1e-6)


def train_test_split(dataset: AdultDataset, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[Tuple[np.ndarray, np.ndarray],
                                Tuple[np.ndarray, np.ndarray]]:
    rng = rng or np.random.default_rng(1)
    n = len(dataset)
    order = rng.permutation(n)
    cut = int(n * (1.0 - test_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return ((dataset.features[train_idx], dataset.labels[train_idx]),
            (dataset.features[test_idx], dataset.labels[test_idx]))
