"""Document images: dataframes rendered as table pictures (paper §5.2).

Replaces the ``dataframe_image`` dependency: each document is a grayscale
raster of a header row plus N data rows of numeric cells, drawn with the
built-in bitmap font at scale 2. The OCR pipeline re-extracts the numbers
from pixels, so the image→table loop is closed without external models.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.datasets.fonts import paste, render_text
from repro.datasets.iris import FEATURES, make_iris
from repro.storage.frame import DataFrame

FONT_SCALE = 2
ROW_HEIGHT = 22                  # pixels between text baselines
COLUMN_WIDTH = 64                # pixels per table column
MARGIN_TOP = 12
MARGIN_LEFT = 14


@dataclasses.dataclass
class DocumentDataset:
    images: np.ndarray           # (n, 1, H, W) float32, white=1 ink=0
    timestamps: np.ndarray       # object array of "YYYY:MM:DD" strings
    truth: List[DataFrame]       # ground-truth table content per document

    def __len__(self) -> int:
        return self.images.shape[0]


def render_dataframe_image(frame: DataFrame,
                           columns: Optional[List[str]] = None) -> np.ndarray:
    """Rasterise a numeric dataframe to a (1, H, W) grayscale image."""
    columns = columns or frame.columns
    n_rows = len(frame)
    height = MARGIN_TOP + (n_rows + 1) * ROW_HEIGHT + MARGIN_TOP
    width = MARGIN_LEFT + len(columns) * COLUMN_WIDTH + MARGIN_LEFT
    ink = np.zeros((height, width), dtype=np.float32)
    # Header: first 5 chars of each column name.
    for j, name in enumerate(columns):
        text = render_text(name[:5].upper(), scale=FONT_SCALE)
        paste(ink, text, MARGIN_TOP, MARGIN_LEFT + j * COLUMN_WIDTH)
    # Cells: fixed "D.D" formatting so every value is OCR-recoverable.
    for i in range(n_rows):
        top = MARGIN_TOP + (i + 1) * ROW_HEIGHT
        for j, name in enumerate(columns):
            value = float(frame[name][i])
            text = render_text(f"{value:.1f}", scale=FONT_SCALE)
            paste(ink, text, top, MARGIN_LEFT + j * COLUMN_WIDTH)
    page = 1.0 - ink * 0.95
    return page[None, :, :].astype(np.float32)


def make_documents(n: int = 100, rows_per_doc: int = 10,
                   rng: Optional[np.random.Generator] = None) -> DocumentDataset:
    """Render ``n`` documents of Iris rows with unique timestamps.

    Timestamp ``"2022:08:10"`` is always present (document 0) so the paper's
    Listing 8 query works verbatim.
    """
    rng = rng or np.random.default_rng(0)
    iris = make_iris(150, rng)
    images, timestamps, truth = [], [], []
    month, day = 8, 10
    for i in range(n):
        idx = rng.choice(len(iris), size=rows_per_doc, replace=False)
        sample = DataFrame({name: iris[name][idx] for name in FEATURES})
        images.append(render_dataframe_image(sample, FEATURES))
        timestamps.append(f"2022:{month:02d}:{day:02d}")
        truth.append(sample)
        day += 1
        if day > 28:
            day = 1
            month += 1
    return DocumentDataset(
        images=np.stack(images).astype(np.float32),
        timestamps=np.asarray(timestamps, dtype=object),
        truth=truth,
    )
