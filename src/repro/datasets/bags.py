"""LLP bag construction and the Laplace mechanism (paper §5.3, §5.4).

Following the LLP protocol of [42]: shuffle instances, partition into bags of
a fixed size, and supervise only with per-bag class counts. For Label-DP
(paper §5.4, following [31]) the counts are perturbed with Laplace noise of
scale 1/eps before training.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np


@dataclasses.dataclass
class Bag:
    features: np.ndarray      # (bag_size, d)
    counts: np.ndarray        # (num_classes,) float — possibly noisy


def make_bags(features: np.ndarray, labels: np.ndarray, bag_size: int,
              num_classes: int = 2,
              rng: Optional[np.random.Generator] = None) -> List[Bag]:
    """Partition instances into bags with exact per-bag label counts."""
    if bag_size < 1:
        raise ValueError(f"bag_size must be >= 1, got {bag_size}")
    rng = rng or np.random.default_rng(0)
    n = features.shape[0]
    order = rng.permutation(n)
    usable = (n // bag_size) * bag_size
    bags: List[Bag] = []
    for start in range(0, usable, bag_size):
        idx = order[start:start + bag_size]
        counts = np.bincount(labels[idx], minlength=num_classes).astype(np.float32)
        bags.append(Bag(features[idx], counts))
    return bags


def laplace_counts(bags: List[Bag], epsilon: float,
                   rng: Optional[np.random.Generator] = None) -> List[Bag]:
    """Label-DP: add Laplace(1/eps) noise to every bag's count vector.

    One individual's label switches affect each count by at most 1, so noise
    of scale 1/epsilon per count gives epsilon-label-DP per released count
    (the mechanism of [31]).
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    rng = rng or np.random.default_rng(0)
    scale = 1.0 / epsilon
    noisy: List[Bag] = []
    for bag in bags:
        noise = rng.laplace(0.0, scale, size=bag.counts.shape).astype(np.float32)
        noisy.append(Bag(bag.features, bag.counts + noise))
    return noisy
