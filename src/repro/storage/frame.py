"""A minimal DataFrame for ingestion and result marshalling.

The paper registers pandas dataframes (``tdp.sql.register_df``) and returns
results ``toPandas=True``. pandas is not available in this environment, so
this small frame plays that interop role: an ordered mapping of column name
to 1-d numpy array (object arrays for strings, nested ndarray for tensors).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import TdpError


def _as_column_array(values) -> np.ndarray:
    array = np.asarray(values)
    if array.dtype.kind in ("U", "S"):
        array = array.astype(object)
    return array


class DataFrame:
    """Column-oriented frame: ``DataFrame({"a": [1, 2], "b": ["x", "y"]})``."""

    def __init__(self, data: Optional[Mapping[str, Sequence]] = None):
        self._columns: Dict[str, np.ndarray] = {}
        self._length = 0
        if data:
            for name, values in data.items():
                self[name] = values

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_records(records: Iterable[Mapping[str, object]]) -> "DataFrame":
        records = list(records)
        if not records:
            return DataFrame()
        names = list(records[0].keys())
        return DataFrame({name: [rec[name] for rec in records] for name in names})

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    @property
    def columns(self) -> List[str]:
        return list(self._columns.keys())

    @property
    def shape(self) -> tuple:
        return (self._length, len(self._columns))

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        if name not in self._columns:
            raise KeyError(f"no column {name!r}; have {self.columns}")
        return self._columns[name]

    def __setitem__(self, name: str, values) -> None:
        array = _as_column_array(values)
        if self._columns and array.shape[0] != self._length:
            raise TdpError(
                f"column {name!r} has {array.shape[0]} rows; frame has {self._length}"
            )
        if not self._columns:
            self._length = array.shape[0]
        self._columns[name] = array

    def row(self, index: int) -> Dict[str, object]:
        return {name: col[index] for name, col in self._columns.items()}

    def itertuples(self):
        for i in range(self._length):
            yield tuple(col[i] for col in self._columns.values())

    def to_dict(self) -> Dict[str, list]:
        return {name: col.tolist() for name, col in self._columns.items()}

    # ------------------------------------------------------------------
    # Convenience operations
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> "DataFrame":
        return DataFrame({name: col[:n] for name, col in self._columns.items()})

    def select(self, names: Sequence[str]) -> "DataFrame":
        return DataFrame({name: self[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        return DataFrame({mapping.get(name, name): col for name, col in self._columns.items()})

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        column = self[by]
        if ascending:
            order = np.argsort(column, kind="stable")
        else:
            # Reversing a stable ascending argsort would emit ties in
            # reverse input order; stable-argsort the reversed array and map
            # the positions back instead, keeping ties in input order.
            order = (len(column) - 1 - np.argsort(column[::-1], kind="stable"))[::-1]
        return DataFrame({name: col[order] for name, col in self._columns.items()})

    def equals(self, other: "DataFrame", rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        if self.columns != other.columns or len(self) != len(other):
            return False
        for name in self.columns:
            a, b = self[name], other[name]
            if a.dtype.kind in "fc" or b.dtype.kind in "fc":
                if not np.allclose(a.astype(float), b.astype(float), rtol=rtol, atol=atol):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def __repr__(self) -> str:
        if not self._columns:
            return "DataFrame(empty)"
        names = self.columns
        widths = {}
        shown = min(self._length, 10)
        rendered = {}
        for name in names:
            col = self._columns[name]
            if col.ndim > 1:
                cells = [f"<tensor {col[i].shape}>" for i in range(shown)]
            elif col.dtype.kind == "f":
                cells = [f"{v:.4g}" for v in col[:shown]]
            else:
                cells = [str(v) for v in col[:shown]]
            rendered[name] = cells
            widths[name] = max([len(name)] + [len(c) for c in cells])
        header = "  ".join(name.rjust(widths[name]) for name in names)
        lines = [header]
        for i in range(shown):
            lines.append("  ".join(rendered[name][i].rjust(widths[name]) for name in names))
        if self._length > shown:
            lines.append(f"... ({self._length} rows total)")
        return "\n".join(lines)
