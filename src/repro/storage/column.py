"""Columns: named encoded tensors with logical types.

Paper §2 (Storage Model): "TDP stores relational data in a columnar format,
where each column is a PyTorch tensor" — including 2-d tensors (a vector per
row), 3-d (grayscale images) and 4-d (RGB images) columns.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.storage import types as dt
from repro.storage.encodings import (
    CharCodeEncoding,
    DatetimeEncoding,
    DictionaryEncoding,
    EncodedTensor,
    Encoding,
    PlainEncoding,
    ProbabilityEncoding,
    RunLengthEncoding,
)
from repro.tcr import ops
from repro.tcr.tensor import Tensor


# Process-unique identity tokens: the engine's materialization cache keys on
# "which stored tensor is this" rather than raw id() (which aliases after
# garbage collection). Tokens are assigned lazily on first use and live on
# the object itself, so a token is never reused for different data.
_IDENTITY_COUNTER = itertools.count(1)
_IDENTITY_LOCK = threading.Lock()


def identity_token(obj) -> Optional[int]:
    """Get-or-assign a process-unique identity token on ``obj``.

    Returns None for objects that cannot carry attributes. Assignment is
    locked so two threads first-touching the same tensor agree on one token
    (an overwrite race would orphan cache entries keyed under the loser).
    """
    token = getattr(obj, "_cache_token", None)
    if token is None:
        with _IDENTITY_LOCK:
            token = getattr(obj, "_cache_token", None)
            if token is None:
                token = next(_IDENTITY_COUNTER)
                try:
                    obj._cache_token = token
                except AttributeError:
                    return None
    return token


def concat_encoded(columns: Sequence["Column"]) -> Optional[EncodedTensor]:
    """Concatenate column pieces row-wise into one :class:`EncodedTensor`.

    Stateless encodings (plain) may differ by object; stateful ones
    (dictionary/probability) must be the *same object* for their codes to
    concatenate directly — pieces that each built their own dictionary
    (e.g. per-shard ``UPPER(...)`` outputs or string-literal broadcasts)
    are instead decoded and re-encoded over the union, which preserves the
    logical values exactly. Returns None only when no sound combination
    exists. Shared by the shard stitcher and the tensor cache's slice
    assembly so the compatibility rule cannot drift between them.
    """
    encoding = columns[0].encoding
    compatible = all(
        column.encoding is encoding
        or (isinstance(column.encoding, PlainEncoding)
            and isinstance(encoding, PlainEncoding))
        for column in columns[1:]
    )
    if compatible:
        return EncodedTensor(ops.cat([c.tensor for c in columns], dim=0), encoding)
    if all(isinstance(c.encoding, DictionaryEncoding) for c in columns):
        values = np.concatenate([c.decode() for c in columns])
        return DictionaryEncoding.encode(list(values),
                                         device=columns[0].device)
    return None


class Column:
    """A named column stored as an :class:`EncodedTensor`.

    ``lineage`` records row provenance for the materialization cache: when a
    column is a row gather of a stored base column it carries
    ``(base identity token, row indices)`` — ``rows=None`` meaning "all rows
    of that base". Columns whose carrier is freshly computed have no lineage.
    """

    __slots__ = ("name", "encoded", "lineage")

    def __init__(self, name: str, encoded: EncodedTensor,
                 lineage: Optional[Tuple[int, Optional[np.ndarray]]] = None):
        self.name = name
        self.encoded = encoded
        self.lineage = lineage

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_values(name: str, values, device=None) -> "Column":
        """Build a column, picking the natural encoding for the value kind.

        Strings → order-preserving dictionary; everything numeric/bool (any
        rank) → plain. Existing tensors/encoded tensors pass through.
        """
        if isinstance(values, Column):
            return Column(name, values.encoded, values.lineage)
        if isinstance(values, EncodedTensor):
            return Column(name, values.to(device) if device is not None else values)
        if isinstance(values, Tensor):
            return Column(name, EncodedTensor(values.to(device=device), PlainEncoding()))
        array = np.asarray(values)
        if array.dtype.kind in ("U", "S", "O"):
            return Column(name, DictionaryEncoding.encode(list(array), device=device))
        if array.dtype.kind == "M":
            return Column(name, DatetimeEncoding.encode(array, device=device))
        return Column(name, PlainEncoding.encode(array, device=device))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tensor(self) -> Tensor:
        return self.encoded.tensor

    @property
    def encoding(self) -> Encoding:
        return self.encoded.encoding

    @property
    def num_rows(self) -> int:
        return self.encoded.num_rows

    @property
    def device(self):
        return self.encoded.device

    @property
    def data_type(self) -> dt.DataType:
        enc = self.encoding
        if isinstance(enc, (DictionaryEncoding, CharCodeEncoding)):
            return dt.STRING
        if isinstance(enc, DatetimeEncoding):
            # Datetimes bind as strings (comparisons against ISO literals);
            # execution dispatches on the encoding, not the logical kind.
            return dt.STRING
        if isinstance(enc, ProbabilityEncoding):
            return dt.prob_type(enc.num_classes)
        if isinstance(enc, RunLengthEncoding):
            return dt.dtype_to_data_type(self.tensor.dtype)
        row_shape = self.tensor.shape[1:]
        if row_shape:
            return dt.tensor_type(row_shape)
        return dt.dtype_to_data_type(self.tensor.dtype)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def decode(self) -> np.ndarray:
        """Logical values as a numpy array (strings for dictionary columns)."""
        return self.encoded.decode()

    def materialize(self) -> "Column":
        """Decompress RLE columns to plain (other encodings pass through).

        Deliberately not memoised on the instance: a resident decoded copy
        would outlive every cache budget. Callers that fan one column out
        into many slices (the shard driver's ``shard_slices``) materialize
        once up front instead.
        """
        if isinstance(self.encoding, RunLengthEncoding):
            return Column(self.name, PlainEncoding.encode(self.decode(), device=self.device))
        return self

    def take(self, indices) -> "Column":
        """Row-gather preserving the encoding (differentiable for float data)."""
        col = self.materialize()
        idx = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        gathered = ops.getitem(col.tensor, idx)
        lineage = None
        if idx.ndim == 1 and idx.dtype.kind in "iu":
            base = col.lineage
            if base is None:
                token = identity_token(col.tensor)
                base = (token, None) if token is not None else None
            if base is not None:
                base_token, base_rows = base
                rows = idx if base_rows is None else base_rows[idx]
                lineage = (base_token, rows)
        return Column(self.name, EncodedTensor(gathered, col.encoding), lineage)

    def slice_rows(self, start: int, stop: int) -> "Column":
        """Contiguous row range ``[start, stop)`` as a zero-copy view.

        The shard driver slices every scan column this way: a contiguous
        slice of a C-contiguous carrier is a numpy view (``take`` with the
        equivalent ``arange`` would gather a copy per shard). Lineage is
        recorded exactly as ``take(np.arange(start, stop))`` would record
        it, so materialization-cache keys agree between the two paths.
        """
        col = self.materialize()
        sliced = ops.getitem(col.tensor, slice(start, stop))
        lineage = None
        base = col.lineage
        if base is None:
            token = identity_token(col.tensor)
            base = (token, None) if token is not None else None
        if base is not None:
            base_token, base_rows = base
            rows = (np.arange(start, stop) if base_rows is None
                    else base_rows[start:stop])
            lineage = (base_token, rows)
        return Column(self.name, EncodedTensor(sliced, col.encoding), lineage)

    def rename(self, name: str) -> "Column":
        return Column(name, self.encoded, self.lineage)

    def to(self, device) -> "Column":
        # A device transfer keeps logical content: remember the source
        # identity so per-device copies share cached materializations.
        lineage = self.lineage
        if lineage is None:
            token = identity_token(self.tensor)
            lineage = (token, None) if token is not None else None
        return Column(self.name, self.encoded.to(device), lineage)

    def with_tensor(self, tensor: Tensor) -> "Column":
        """Replace the carrier tensor, keeping name and encoding."""
        return Column(self.name, EncodedTensor(tensor, self.encoding))

    def to_char_codes(self) -> "Column":
        """Re-encode a string column as a padded char-code matrix (lossless)."""
        if isinstance(self.encoding, CharCodeEncoding):
            return self
        if not isinstance(self.encoding, DictionaryEncoding):
            raise ValueError("to_char_codes requires a string column")
        return Column(self.name, CharCodeEncoding.from_dictionary(self.encoded))

    def to_dictionary(self) -> "Column":
        """Re-encode a char-code string column as sorted-dictionary codes.

        Lineage is preserved: the carrier changes representation, not the
        logical row values, so materialization-cache keys stay valid.
        """
        if isinstance(self.encoding, DictionaryEncoding):
            return self
        if not isinstance(self.encoding, CharCodeEncoding):
            raise ValueError("to_dictionary requires a string column")
        return Column(self.name, self.encoding.to_dictionary(self.tensor),
                      self.lineage)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, type={self.data_type}, rows={self.num_rows})"
