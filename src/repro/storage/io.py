"""CSV and NPZ input/output for frames and tables."""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional

import numpy as np

from repro.errors import TdpError
from repro.storage.frame import DataFrame
from repro.storage.table import Table


def _infer_column(values: List[str]) -> np.ndarray:
    """Infer int → float → string for a parsed CSV column.

    Empty fields are NULLs: a numeric column with missing values becomes
    float with NaN holes (int64 cannot represent NULL); an all-empty column
    is all-NaN float; string columns keep empty strings as-is.
    """
    present = [v for v in values if v != ""]
    if not present:
        return np.full(len(values), np.nan, dtype=np.float32)
    try:
        ints = [int(v) for v in present]
    except ValueError:
        ints = None
    if ints is not None:
        if len(present) == len(values):
            return np.asarray(ints, dtype=np.int64)
        # Int column with NULL holes: float64 keeps values exact up to 2^53
        # (float32 would corrupt ids above 2^24 — the DistinctExec bug class).
        out = np.full(len(values), np.nan, dtype=np.float64)
        out[np.asarray([v != "" for v in values])] = ints
        return out
    try:
        return np.asarray([float(v) if v != "" else np.nan for v in values],
                          dtype=np.float32)
    except ValueError:
        pass
    return np.asarray(values, dtype=object)


def read_csv(path: str) -> DataFrame:
    """Read a CSV file with a header row into a DataFrame."""
    if not os.path.exists(path):
        raise TdpError(f"no CSV file at {path}")
    with open(path, newline="") as f:
        reader = csv.reader(f)
        rows = list(reader)
    if not rows:
        return DataFrame()
    header, body = rows[0], rows[1:]
    frame = DataFrame()
    for i, name in enumerate(header):
        # Rows shorter than the header (including blank lines) are padded
        # with empty fields, which _infer_column treats as NULLs.
        frame[name] = _infer_column([row[i] if i < len(row) else "" for row in body])
    return frame


def write_csv(frame: DataFrame, path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(frame.columns)
        for row in frame.itertuples():
            writer.writerow(row)


def save_table(table: Table, path: str) -> None:
    """Persist a table's decoded columns as an .npz archive."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    for col in table.columns:
        values = col.decode()
        if values.dtype == object:
            values = values.astype(str)
        arrays[col.name] = values
    np.savez(path, **arrays)


def load_table(path: str, name: Optional[str] = None, device=None) -> Table:
    if not os.path.exists(path):
        raise TdpError(f"no table archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        data = {key: archive[key] for key in archive.files}
    table_name = name or os.path.splitext(os.path.basename(path))[0]
    return Table.from_dict(table_name, data, device=device)
