"""Catalog: the session's registry of named tables."""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.errors import CatalogError
from repro.storage.table import Table


class Catalog:
    """Case-insensitive table registry (re-registration replaces, which the
    paper's training loop relies on when it re-registers ``MNIST_Grid`` each
    iteration).

    Thread-safe: a re-entrant lock guards the name maps and the version
    counter, so concurrent ``register``/``drop``/``get`` calls from scheduler
    workers can never tear the registry or skip a version bump. Tables
    themselves are immutable, so a ``get`` that races a ``register`` returns
    either the old or the new snapshot — never a mix.
    """

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._display: Dict[str, str] = {}
        self._lock = threading.RLock()
        # Monotonic change counter: plan caches key on it so any
        # register/drop/clear invalidates every cached plan.
        self.version = 0

    def register(self, name: str, table: Table, replace: bool = True) -> None:
        key = name.lower()
        with self._lock:
            if not replace and key in self._tables:
                raise CatalogError(f"table {name!r} already registered")
            self._tables[key] = table
            self._display[key] = name
            self.version += 1

    def get(self, name: str) -> Table:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(
                    f"unknown table {name!r}; registered: {self.names()}")
            return self._tables[key]

    def drop(self, name: str) -> None:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            del self._tables[key]
            del self._display[key]
            self.version += 1

    def names(self) -> List[str]:
        with self._lock:
            return [self._display[k] for k in self._tables]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._tables

    def clear(self) -> None:
        with self._lock:
            self._tables.clear()
            self._display.clear()
            self.version += 1
