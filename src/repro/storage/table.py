"""Tables: ordered collections of equally-long columns on one device."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import CatalogError, ShapeError
from repro.storage.column import Column
from repro.storage.frame import DataFrame
from repro.storage.encodings import EncodedTensor, PlainEncoding
from repro.tcr.device import as_device
from repro.tcr.tensor import Tensor


class Table:
    """A named relation whose columns are encoded tensors."""

    def __init__(self, name: str, columns: Sequence[Column]):
        self.name = name
        # Columns live in a list: positional access is the engine's fast path,
        # and join outputs may legitimately carry duplicate names (e.g. both
        # sides of `e.dept = d.dept`). Name lookup raises only on ambiguity.
        self._columns: List[Column] = []
        self._lower: Dict[str, List[int]] = {}
        num_rows = None
        for col in columns:
            if num_rows is None:
                num_rows = col.num_rows
            elif col.num_rows != num_rows:
                raise ShapeError(
                    f"column {col.name!r} has {col.num_rows} rows, expected {num_rows}"
                )
            self._lower.setdefault(col.name.lower(), []).append(len(self._columns))
            self._columns.append(col)
        self._num_rows = num_rows or 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_frame(name: str, frame: DataFrame, device=None) -> "Table":
        columns = [
            Column.from_values(col_name, frame[col_name], device=device)
            for col_name in frame.columns
        ]
        return Table(name, columns)

    @staticmethod
    def from_dict(name: str, data: Mapping[str, object], device=None) -> "Table":
        columns = [Column.from_values(k, v, device=device) for k, v in data.items()]
        return Table(name, columns)

    @staticmethod
    def from_tensor(name: str, tensor: Tensor, column: str = "value", device=None) -> "Table":
        """Wrap a bare tensor as a single-column table (register_tensor API)."""
        if device is not None:
            tensor = tensor.to(device=device)
        return Table(name, [Column(column, EncodedTensor(tensor, PlainEncoding()))])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return [col.name for col in self._columns]

    @property
    def columns(self) -> List[Column]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def device(self):
        for col in self._columns:
            return col.device
        return as_device("cpu")

    @property
    def schema(self) -> Dict[str, object]:
        return {col.name: col.data_type for col in self._columns}

    def has_column(self, name: str) -> bool:
        return name.lower() in self._lower

    def column(self, name: str) -> Column:
        positions = self._lower.get(name.lower())
        if not positions:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}; columns: {self.column_names}"
            )
        if len(positions) > 1:
            raise CatalogError(f"column name {name!r} is ambiguous in table {self.name!r}")
        return self._columns[positions[0]]

    def column_at(self, index: int) -> Column:
        return self._columns[index]

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def take(self, indices) -> "Table":
        return Table(self.name, [col.take(indices) for col in self._columns])

    def slice_rows(self, start: int, stop: int) -> "Table":
        """Contiguous row range ``[start, stop)`` (zero-copy column views)."""
        return Table(self.name, [col.slice_rows(start, stop) for col in self._columns])

    def select(self, names: Sequence[str]) -> "Table":
        return Table(self.name, [self.column(n) for n in names])

    def with_columns(self, columns: Sequence[Column], name: Optional[str] = None) -> "Table":
        return Table(name or self.name, list(columns))

    def to(self, device) -> "Table":
        return Table(self.name, [col.to(device) for col in self._columns])

    def head(self, n: int = 5) -> "Table":
        idx = np.arange(min(n, self._num_rows))
        return self.take(idx)

    def to_frame(self) -> DataFrame:
        frame = DataFrame()
        for col in self._columns:
            frame[col.name] = col.decode()
        return frame

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}: {c.data_type}" for c in self._columns)
        return f"Table({self.name!r}, rows={self.num_rows}, columns=[{cols}])"
