"""``repro.storage`` — columnar tensor storage (paper §2, Storage Model)."""

from repro.storage.catalog import Catalog
from repro.storage.column import Column
from repro.storage.encodings import (
    DictionaryEncoding,
    EncodedTensor,
    Encoding,
    PEEncoding,
    PlainEncoding,
    ProbabilityEncoding,
    RunLengthEncoding,
)
from repro.storage.frame import DataFrame
from repro.storage.io import load_table, read_csv, save_table, write_csv
from repro.storage.table import Table
from repro.storage import types

__all__ = [
    "Catalog", "Column", "DataFrame", "DictionaryEncoding", "EncodedTensor",
    "Encoding", "PEEncoding", "PlainEncoding", "ProbabilityEncoding",
    "RunLengthEncoding", "Table", "load_table", "read_csv", "save_table",
    "types", "write_csv",
]
