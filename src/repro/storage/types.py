"""Logical data types for columns (shared by storage and the SQL binder)."""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class DataType:
    """A logical column type.

    ``kind`` is one of:
      * ``int`` / ``float`` / ``bool`` — scalar columns
      * ``string`` — dictionary-encoded text
      * ``tensor`` — multi-dimensional rows (images, embeddings);
        ``row_shape`` holds the per-row shape
      * ``prob`` — Probability-Encoded column; ``num_classes`` holds the
        domain size
    """

    kind: str
    row_shape: Tuple[int, ...] = ()
    num_classes: Optional[int] = None

    def __post_init__(self):
        valid = {"int", "float", "bool", "string", "tensor", "prob"}
        if self.kind not in valid:
            raise ValueError(f"unknown type kind {self.kind!r}")

    @property
    def is_numeric(self) -> bool:
        return self.kind in ("int", "float")

    @property
    def is_scalar(self) -> bool:
        return self.kind in ("int", "float", "bool", "string")

    def __str__(self) -> str:
        if self.kind == "tensor":
            return f"tensor{list(self.row_shape)}"
        if self.kind == "prob":
            return f"prob[{self.num_classes}]"
        return self.kind


INT = DataType("int")
FLOAT = DataType("float")
BOOL = DataType("bool")
STRING = DataType("string")


def tensor_type(row_shape: Tuple[int, ...]) -> DataType:
    return DataType("tensor", row_shape=tuple(row_shape))


def prob_type(num_classes: int) -> DataType:
    return DataType("prob", num_classes=num_classes)


_SQL_TYPE_NAMES = {
    "int": INT, "integer": INT, "bigint": INT, "long": INT, "smallint": INT,
    "float": FLOAT, "double": FLOAT, "real": FLOAT, "decimal": FLOAT, "numeric": FLOAT,
    "bool": BOOL, "boolean": BOOL,
    "string": STRING, "varchar": STRING, "text": STRING, "char": STRING,
    "timestamp": STRING, "date": STRING,
    "tensor": DataType("tensor"),
}


def parse_sql_type(name: str) -> DataType:
    """Map a SQL type name (as used in ``@tdp_udf`` schemas) to a DataType."""
    base = name.strip().lower().split("(")[0]
    if base not in _SQL_TYPE_NAMES:
        raise ValueError(f"unknown SQL type {name!r}")
    return _SQL_TYPE_NAMES[base]


def dtype_to_data_type(dtype: np.dtype, row_shape: Tuple[int, ...] = ()) -> DataType:
    if row_shape:
        return tensor_type(row_shape)
    kind = np.dtype(dtype).kind
    if kind in "iu":
        return INT
    if kind == "f":
        return FLOAT
    if kind == "b":
        return BOOL
    if kind in ("U", "O", "S"):
        return STRING
    raise ValueError(f"unsupported numpy dtype {dtype}")
