"""Probability Encoding (PE): structured class-probability columns.

Paper §2 introduces PE as an encoding that "attaches structured information
to numerical data"; §3/§4 use it as the bridge between neural UDF outputs and
differentiable relational operators. A PE column is an (n, k) float tensor
whose rows are probability vectors over an explicit class ``domain``. The
soft group-by/count operators consume PE columns directly (pure matmuls, so
gradients flow); at inference, ``decode`` collapses to argmax over the domain.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import EncodingError
from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.tcr import ops
from repro.tcr.tensor import Tensor, ensure_tensor


class ProbabilityEncoding(Encoding):
    """Encoding for (n, k) probability tensors over a fixed class domain."""

    name = "probability"

    def __init__(self, domain: Optional[Sequence] = None, num_classes: Optional[int] = None):
        if domain is not None:
            self.domain = np.asarray(list(domain))
            self.num_classes = len(self.domain)
        elif num_classes is not None:
            self.domain = np.arange(num_classes)
            self.num_classes = num_classes
        else:
            raise EncodingError("ProbabilityEncoding needs a domain or num_classes")
        if self.num_classes < 1:
            raise EncodingError("ProbabilityEncoding needs at least one class")

    def validate(self, tensor: Tensor) -> None:
        if tensor.ndim != 2:
            raise EncodingError(
                f"PE column must be a 2-d (rows x classes) tensor, got shape {tensor.shape}"
            )
        if tensor.shape[1] != self.num_classes:
            raise EncodingError(
                f"PE column has {tensor.shape[1]} classes but domain has {self.num_classes}"
            )

    def decode(self, tensor: Tensor) -> np.ndarray:
        """Collapse probabilities to hard domain values (argmax)."""
        idx = tensor.detach().data.argmax(axis=1)
        return self.domain[idx]

    def hard_codes(self, tensor: Tensor) -> np.ndarray:
        """Argmax class indices (0..k-1) without mapping through the domain."""
        return tensor.detach().data.argmax(axis=1)

    @staticmethod
    def encode(values, domain: Optional[Sequence] = None, logits: Optional[bool] = None,
               device=None) -> EncodedTensor:
        """Encode a (n, k) score tensor as a PE column.

        Args:
            values: tensor/array of shape (n, k). Raw neural network outputs
                are fine: when ``logits`` is None we auto-detect — rows that
                already sum to ~1 with non-negative entries pass through,
                anything else goes through a softmax (the paper's
                differentiable argmax proxy).
            domain: class labels; defaults to ``range(k)``.
            logits: force (True) or skip (False) the softmax.
        """
        tensor = ensure_tensor(values, device=device)
        if tensor.ndim != 2:
            raise EncodingError(f"PE expects (rows, classes), got shape {tensor.shape}")
        data = tensor.detach().data
        if logits is None:
            row_sums = data.sum(axis=1)
            is_prob = bool(np.all(data >= -1e-6) and np.allclose(row_sums, 1.0, atol=1e-4))
            logits = not is_prob
        if logits:
            tensor = ops.softmax(tensor, dim=1)
        encoding = ProbabilityEncoding(
            domain=domain if domain is not None else list(range(tensor.shape[1]))
        )
        return EncodedTensor(tensor, encoding)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ProbabilityEncoding)
            and self.num_classes == other.num_classes
            and bool(np.all(self.domain == other.domain))
        )

    def __hash__(self) -> int:
        return hash((type(self), self.num_classes))

    def __repr__(self) -> str:
        return f"ProbabilityEncoding(num_classes={self.num_classes})"


# The paper's listings spell this ``PEEncoding`` (Listing 4).
PEEncoding = ProbabilityEncoding
