"""Plain encoding: the tensor stores logical values directly."""

from __future__ import annotations

import numpy as np

from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.tcr.tensor import Tensor, ensure_tensor


class PlainEncoding(Encoding):
    """Identity encoding for numeric, boolean and multi-dimensional data."""

    name = "plain"

    def decode(self, tensor: Tensor) -> np.ndarray:
        return tensor.detach().data

    @staticmethod
    def encode(values, device=None) -> EncodedTensor:
        tensor = ensure_tensor(values, device=device)
        return EncodedTensor(tensor, PlainEncoding())
