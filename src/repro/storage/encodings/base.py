"""Encoding metadata attached to stored tensors.

The paper (§2, Data Encoding): "TDP does not use PyTorch tensors directly,
but rather provides its own *encoded tensors* abstraction, i.e., tensors with
attached metadata describing how data is stored in them." Operators consult
the encoding to pick an execution strategy (e.g. string comparisons run on
dictionary codes; group-by on PE columns uses soft aggregation).
"""

from __future__ import annotations


from repro.errors import EncodingError
from repro.tcr.tensor import Tensor


class Encoding:
    """Base class for column encodings."""

    name = "base"

    def decode(self, tensor: Tensor):
        """Return the logical values stored in ``tensor`` (numpy array)."""
        raise NotImplementedError

    def validate(self, tensor: Tensor) -> None:
        """Check that ``tensor`` is a structurally valid carrier for this encoding."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class EncodedTensor:
    """A tensor plus its encoding — the storage engine's unit of data.

    This is deliberately a thin pair: the tensor flows through TCR operators
    (so autograd and device placement keep working), while the encoding rides
    along as metadata that engine operators can dispatch on.
    """

    __slots__ = ("tensor", "encoding")

    def __init__(self, tensor: Tensor, encoding: Encoding):
        if not isinstance(tensor, Tensor):
            raise EncodingError(f"EncodedTensor expects a Tensor, got {type(tensor).__name__}")
        encoding.validate(tensor)
        self.tensor = tensor
        self.encoding = encoding

    @property
    def num_rows(self) -> int:
        return self.tensor.shape[0] if self.tensor.ndim else 1

    @property
    def device(self):
        return self.tensor.device

    def decode(self):
        return self.encoding.decode(self.tensor)

    def to(self, device) -> "EncodedTensor":
        return EncodedTensor(self.tensor.to(device=device), self.encoding)

    def __repr__(self) -> str:
        return f"EncodedTensor(shape={self.tensor.shape}, encoding={self.encoding!r})"
