"""Column encodings (paper §2, "Data Encoding")."""

from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.storage.encodings.charcodes import CharCodeEncoding
from repro.storage.encodings.datetime import DatetimeEncoding
from repro.storage.encodings.dictionary import DictionaryEncoding
from repro.storage.encodings.plain import PlainEncoding
from repro.storage.encodings.probability import PEEncoding, ProbabilityEncoding
from repro.storage.encodings.runlength import RunLengthEncoding

__all__ = [
    "CharCodeEncoding",
    "DatetimeEncoding",
    "DictionaryEncoding",
    "EncodedTensor",
    "Encoding",
    "PEEncoding",
    "PlainEncoding",
    "ProbabilityEncoding",
    "RunLengthEncoding",
]
