"""Char-code string encoding: the carrier *is* the padded code-point matrix.

Where :class:`DictionaryEncoding` stores integer codes into a sorted
dictionary, this encoding stores each row's string directly as a row of the
``(num_rows, max_len)`` uint32 zero-padded matrix — the paper's tensor-native
string representation, useful when values are near-unique and a dictionary
would be as large as the data. The round-trip to dictionary form is lossless
(the engine's string codec never stores NUL, so padding is unambiguous), and
expression evaluation normalises char-code columns to dictionary form on
first touch so every string kernel applies unchanged.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import EncodingError
from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.storage.encodings.dictionary import (
    DictionaryEncoding,
    _codepoints_to_strings,
    _strings_to_codepoints,
)
from repro.tcr.tensor import Tensor


class CharCodeEncoding(Encoding):
    """Strings stored as one zero-padded char-code row per table row."""

    name = "charcode"

    def validate(self, tensor: Tensor) -> None:
        if tensor.ndim != 2:
            raise EncodingError("char-code column must be a 2-d code-point tensor")
        if tensor.dtype.kind not in "iu":
            raise EncodingError("char codes must be integers")

    def decode(self, tensor: Tensor) -> np.ndarray:
        return _codepoints_to_strings(tensor.detach().data)

    @staticmethod
    def encode(values: Iterable[str], device=None) -> EncodedTensor:
        values = ["" if v is None else str(v) for v in values]
        matrix = _strings_to_codepoints(values)
        return EncodedTensor(Tensor(matrix, device=device), CharCodeEncoding())

    # ------------------------------------------------------------------
    # Lossless round-trip to the dictionary representation
    # ------------------------------------------------------------------
    def to_dictionary(self, tensor: Tensor) -> EncodedTensor:
        """Re-encode a char-code carrier as sorted-dictionary codes.

        Zero padding sorts below every code point, so the lexicographically
        sorted unique rows are exactly the sorted distinct strings; the
        unique-inverse is therefore the code vector.
        """
        matrix = tensor.detach().data
        device = tensor.device
        if matrix.shape[0] == 0:
            return DictionaryEncoding.encode([], device=device)
        uniques, inverse = np.unique(matrix, axis=0, return_inverse=True)
        dictionary = Tensor(np.ascontiguousarray(uniques, dtype=np.uint32),
                            device=device)
        return EncodedTensor(
            Tensor(inverse.reshape(-1).astype(np.int64), device=device),
            DictionaryEncoding(dictionary))

    @staticmethod
    def from_dictionary(encoded: EncodedTensor) -> EncodedTensor:
        """Expand dictionary codes into the row-wise char-code matrix."""
        if not isinstance(encoded.encoding, DictionaryEncoding):
            raise EncodingError("from_dictionary expects a dictionary-encoded tensor")
        codes = encoded.tensor.detach().data
        matrix = encoded.encoding.dictionary.detach().data[codes]
        return EncodedTensor(Tensor(np.ascontiguousarray(matrix),
                                    device=encoded.device), CharCodeEncoding())
