"""Order-preserving dictionary encoding for string columns.

Paper §2: strings use "order-preserving dictionary encoding ... where the
dictionary itself is a 2-dimensional plain tensor, storing one string-vector
per row". We store each distinct string as a row of unicode code points
(padded with zeros) in a ``uint32`` tensor; because the dictionary is built
from the *sorted* distinct strings, integer code comparisons agree with
lexicographic string comparisons, so range predicates and ORDER BY run
directly on the codes without decoding.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.tcr.tensor import Tensor


def _strings_to_codepoints(strings: Sequence[str]) -> np.ndarray:
    """Pack strings into a (n, max_len) uint32 code-point matrix."""
    max_len = max((len(s) for s in strings), default=1) or 1
    out = np.zeros((len(strings), max_len), dtype=np.uint32)
    for i, s in enumerate(strings):
        for j, ch in enumerate(s):
            out[i, j] = ord(ch)
    return out


def _codepoints_to_strings(matrix: np.ndarray) -> np.ndarray:
    strings = []
    for row in matrix:
        chars = [chr(int(c)) for c in row if c != 0]
        strings.append("".join(chars))
    return np.asarray(strings, dtype=object)


class DictionaryEncoding(Encoding):
    """Sorted-dictionary string encoding; the carrier tensor holds int64 codes."""

    name = "dictionary"

    def __init__(self, dictionary: Tensor):
        if dictionary.ndim != 2:
            raise EncodingError("dictionary must be a 2-d code-point tensor")
        self.dictionary = dictionary
        self._strings = _codepoints_to_strings(dictionary.data)

    @property
    def cardinality(self) -> int:
        return self.dictionary.shape[0]

    @property
    def strings(self) -> np.ndarray:
        return self._strings

    def validate(self, tensor: Tensor) -> None:
        if tensor.ndim != 1:
            raise EncodingError("dictionary-encoded column must be a 1-d code tensor")
        if tensor.dtype.kind not in "iu":
            raise EncodingError("dictionary codes must be integers")

    def decode(self, tensor: Tensor) -> np.ndarray:
        codes = tensor.detach().data
        if codes.size and (codes.min() < 0 or codes.max() >= self.cardinality):
            raise EncodingError("dictionary code out of range during decode")
        return self._strings[codes]

    def code_for(self, value: str) -> Optional[int]:
        """Exact-match lookup; None when the value is absent from the dictionary."""
        idx = np.searchsorted(self._strings.astype(str), value)
        if idx < self.cardinality and self._strings[idx] == value:
            return int(idx)
        return None

    def range_for(self, value: str, side: str = "left") -> int:
        """Binary-search boundary so inequality predicates run on codes."""
        return int(np.searchsorted(self._strings.astype(str), value, side=side))

    def prefix_range(self, prefix: str) -> Tuple[int, int]:
        """Code range [lo, hi) of strings starting with ``prefix`` (LIKE 'p%')."""
        lo = self.range_for(prefix, "left")
        hi = self.range_for(prefix + "￿", "right")
        return lo, hi

    @staticmethod
    def encode(values: Iterable[str], device=None) -> EncodedTensor:
        values = ["" if v is None else str(v) for v in values]
        uniques = sorted(set(values))
        if not uniques:
            uniques = [""]
        index = {s: i for i, s in enumerate(uniques)}
        codes = np.fromiter((index[v] for v in values), dtype=np.int64, count=len(values))
        dictionary = Tensor(_strings_to_codepoints(uniques), device=device)
        encoding = DictionaryEncoding(dictionary)
        return EncodedTensor(Tensor(codes, device=device), encoding)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DictionaryEncoding)
            and self._strings.shape == other._strings.shape
            and bool(np.all(self._strings == other._strings))
        )

    def __hash__(self) -> int:
        return hash((type(self), self.cardinality))

    def __repr__(self) -> str:
        return f"DictionaryEncoding(cardinality={self.cardinality})"
