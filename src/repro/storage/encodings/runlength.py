"""Run-length encoding (extension beyond the paper's three encodings).

The paper notes TDP "for the moment" ships plain/dictionary/PE; RLE is the
natural next compressed format for sorted analytic columns, so we provide it
as a documented extension with metadata-aware fast paths (COUNT/SUM without
materialisation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.tcr.tensor import Tensor


class RunLengthEncoding(Encoding):
    """Carrier tensor holds run *values*; run lengths live in the metadata."""

    name = "runlength"

    def __init__(self, run_lengths: Tensor):
        if run_lengths.ndim != 1:
            raise EncodingError("run lengths must be a 1-d tensor")
        if run_lengths.dtype.kind not in "iu":
            raise EncodingError("run lengths must be integers")
        if run_lengths.data.size and run_lengths.data.min() <= 0:
            raise EncodingError("run lengths must be positive")
        self.run_lengths = run_lengths

    @property
    def logical_length(self) -> int:
        return int(self.run_lengths.data.sum())

    def validate(self, tensor: Tensor) -> None:
        if tensor.shape[0] != self.run_lengths.shape[0]:
            raise EncodingError(
                f"{tensor.shape[0]} run values vs {self.run_lengths.shape[0]} run lengths"
            )

    def decode(self, tensor: Tensor) -> np.ndarray:
        return np.repeat(tensor.detach().data, self.run_lengths.data, axis=0)

    def sum_fast(self, tensor: Tensor) -> float:
        """SUM without decompression: dot(values, lengths)."""
        return float((tensor.detach().data * self.run_lengths.data).sum())

    @staticmethod
    def encode(values, device=None) -> EncodedTensor:
        array = np.asarray(values)
        if array.ndim != 1:
            raise EncodingError("RLE supports 1-d columns")
        if array.size == 0:
            return EncodedTensor(
                Tensor(array, device=device),
                RunLengthEncoding(Tensor(np.zeros(0, dtype=np.int64), device=device)),
            )
        change = np.empty(array.size, dtype=bool)
        change[0] = True
        change[1:] = array[1:] != array[:-1]
        starts = np.flatnonzero(change)
        lengths = np.diff(np.append(starts, array.size)).astype(np.int64)
        run_values = array[starts]
        return EncodedTensor(
            Tensor(run_values, device=device),
            RunLengthEncoding(Tensor(lengths, device=device)),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RunLengthEncoding)
            and self.run_lengths.shape == other.run_lengths.shape
            and bool(np.all(self.run_lengths.data == other.run_lengths.data))
        )

    def __hash__(self) -> int:
        return hash((type(self), self.run_lengths.shape))

    def __repr__(self) -> str:
        return f"RunLengthEncoding(runs={self.run_lengths.shape[0]})"
