"""Datetime encoding: int64 epoch-nanosecond carrier.

Dates and timestamps are stored as the paper stores them — plain integer
tensors (epoch nanoseconds) — so temporal comparisons, sorts and group-bys
run as ordinary int64 tensor ops. ``decode`` restores ``datetime64[ns]``;
comparisons against ISO string literals go through
``repro.core.kernels.dates`` in both the interpreter and compiled kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncodingError
from repro.storage.encodings.base import EncodedTensor, Encoding
from repro.tcr.tensor import Tensor


class DatetimeEncoding(Encoding):
    """1-d int64 epoch-nanosecond carrier for datetime columns."""

    name = "datetime"

    def validate(self, tensor: Tensor) -> None:
        if tensor.ndim != 1:
            raise EncodingError("datetime column must be a 1-d tensor")
        if tensor.dtype.kind != "i":
            raise EncodingError("datetime carrier must be signed integers")

    def decode(self, tensor: Tensor) -> np.ndarray:
        return tensor.detach().data.astype("datetime64[ns]")

    @staticmethod
    def encode(values, device=None) -> EncodedTensor:
        array = np.asarray(values).astype("datetime64[ns]")
        return EncodedTensor(Tensor(array.astype(np.int64), device=device),
                             DatetimeEncoding())
