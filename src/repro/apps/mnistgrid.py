"""MNISTGrid trainable-query application (paper §3, §4, §5.5).

Builds the ``parse_mnist_grid`` TVF of Listing 4 (einops tiling + two CNN
parsers + PE encoding), the trainable query of Listing 6, and the training
loop of Listing 5.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core.compiled_query import CompiledQuery
from repro.core.session import Session
from repro.datasets.digits import SIZE_NAMES
from repro.datasets.mnist_grid import MnistGridDataset
from repro.ml.models.cnn import CNN
from repro.storage.encodings import PEEncoding
from repro.tcr import optim
from repro.tcr.autograd import no_grad
from repro.tcr.einops import rearrange
from repro.tcr.tensor import Tensor

GRID_TABLE = "MNIST_Grid"
QUERY = (
    "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) "
    "GROUP BY Digit, Size"
)
BATCHED_QUERY = (
    "SELECT GridId, Digit, Size, COUNT(*) FROM parse_mnist_batch(MNIST_Grid) "
    "GROUP BY GridId, Digit, Size"
)


@dataclasses.dataclass
class MnistGridApp:
    session: Session
    query: CompiledQuery
    digit_parser: CNN
    size_parser: CNN

    def register_grid(self, grid: np.ndarray) -> None:
        """Register one (1, 84, 84) grid as the MNIST_Grid table."""
        self.session.sql.register_tensor(Tensor(grid), GRID_TABLE)

    def predict_counts(self, grid: np.ndarray) -> Tensor:
        self.register_grid(grid)
        return self.query.run()


def build_app(session: Session, trainable: bool = True,
              digit_parser: Optional[CNN] = None,
              size_parser: Optional[CNN] = None) -> MnistGridApp:
    """Register the TVF (Listing 4) and compile the query (Listing 6)."""
    digit_parser = digit_parser or CNN(num_classes=10)
    size_parser = size_parser or CNN(num_classes=2)

    @session.udf("Digit float, Size float", name="parse_mnist_grid",
                 modules=[digit_parser, size_parser])
    def parse_mnist_grid(mnist_grid: Tensor):
        # Break up the grid into a batch of 9 tiles/images (Listing 4).
        tiles = rearrange(
            mnist_grid,
            "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2", h1=3, w1=3,
        )
        return (
            PEEncoding.encode(digit_parser(tiles)),
            PEEncoding.encode(size_parser(tiles), domain=list(SIZE_NAMES)),
        )

    # The paper registers data (Listing 1) before compiling (Listing 2); the
    # binder needs the table's schema, so start from an empty placeholder grid.
    session.sql.register_tensor(
        Tensor(np.zeros((1, 84, 84), dtype=np.float32)), GRID_TABLE
    )
    import repro.core.config as config_mod
    extra = {config_mod.constants.TRAINABLE: True} if trainable else None
    query = session.spark.query(QUERY, extra_config=extra)
    return MnistGridApp(session, query, digit_parser, size_parser)


def build_batched_app(session: Session, batch_size: int = 8,
                      digit_parser: Optional[CNN] = None,
                      size_parser: Optional[CNN] = None) -> MnistGridApp:
    """Batched variant: one step trains on ``batch_size`` grids at once.

    The TVF tiles a (B, 84, 84) batch into 9B rows and emits an extra
    ``GridId`` column; grouping by (GridId, Digit, Size) yields per-grid soft
    counts in one differentiable query. The paper trains one grid per
    iteration (Listing 5) for 40,000 iterations; batching is our scale-down
    lever for the CPU-only benchmark (recorded in EXPERIMENTS.md).
    """
    digit_parser = digit_parser or CNN(num_classes=10)
    size_parser = size_parser or CNN(num_classes=2)

    @session.udf("GridId int, Digit float, Size float", name="parse_mnist_batch",
                 modules=[digit_parser, size_parser])
    def parse_mnist_batch(grids: Tensor):
        batch = grids.shape[0]
        tiles = rearrange(
            grids, "b (h1 h2) (w1 w2) -> (b h1 w1) 1 h2 w2", h1=3, w1=3,
        )
        grid_ids = Tensor(np.repeat(np.arange(batch, dtype=np.int64), 9))
        return (
            grid_ids,
            PEEncoding.encode(digit_parser(tiles)),
            PEEncoding.encode(size_parser(tiles), domain=list(SIZE_NAMES)),
        )

    session.sql.register_tensor(
        Tensor(np.zeros((batch_size, 84, 84), dtype=np.float32)), GRID_TABLE
    )
    import repro.core.config as config_mod
    query = session.spark.query(
        BATCHED_QUERY, extra_config={config_mod.constants.TRAINABLE: True}
    )
    return MnistGridApp(session, query, digit_parser, size_parser)


def train_batched(app: MnistGridApp, dataset: MnistGridDataset, steps: int,
                  batch_size: int = 8, lr: float = 1e-3,
                  eval_every: Optional[int] = None,
                  eval_set: Optional[MnistGridDataset] = None,
                  eval_app: Optional[MnistGridApp] = None,
                  seed: int = 0) -> List[Tuple[int, float]]:
    """Mini-batch training through the batched trainable query."""
    rng = np.random.default_rng(seed)
    optimizer = optim.Adam(app.query.parameters(), lr=lr)
    curve: List[Tuple[int, float]] = []
    n = len(dataset)
    for step in range(steps):
        optimizer.zero_grad()
        picks = rng.integers(0, n, size=batch_size)
        batch = dataset.grids[picks][:, 0]                 # (B, 84, 84)
        app.session.sql.register_tensor(Tensor(batch), GRID_TABLE)
        predicted = app.query.run()                        # (B*20,)
        target = Tensor(dataset.counts[picks].reshape(-1))
        loss = ((predicted - target) ** 2).mean()
        loss.backward()
        optimizer.step()
        if eval_every and eval_set is not None and (step + 1) % eval_every == 0:
            scorer = eval_app or app
            curve.append((step + 1, evaluate_mse(scorer, eval_set)))
    return curve


def train(app: MnistGridApp, dataset: MnistGridDataset, iterations: int,
          lr: float = 0.01, eval_every: Optional[int] = None,
          eval_set: Optional[MnistGridDataset] = None,
          seed: int = 0) -> List[Tuple[int, float]]:
    """The paper's Listing 5 training loop (one grid per iteration).

    Returns [(iteration, test MSE)] when an eval set is provided.
    """
    rng = np.random.default_rng(seed)
    optimizer = optim.Adam(app.query.parameters(), lr=lr)
    curve: List[Tuple[int, float]] = []
    n = len(dataset)
    for i in range(iterations):
        optimizer.zero_grad()
        pick = int(rng.integers(0, n))
        predicted_counts = app.predict_counts(dataset.grids[pick])
        target = Tensor(dataset.counts[pick])
        loss = ((predicted_counts - target) ** 2).mean()
        loss.backward()
        optimizer.step()
        if eval_every and eval_set is not None and (i + 1) % eval_every == 0:
            curve.append((i + 1, evaluate_mse(app, eval_set)))
    return curve


def evaluate_mse(app: MnistGridApp, dataset: MnistGridDataset,
                 max_grids: Optional[int] = None) -> float:
    """Mean squared count error over a dataset (soft operators, no grad)."""
    total, count = 0.0, 0
    limit = min(len(dataset), max_grids) if max_grids else len(dataset)
    with no_grad():
        for i in range(limit):
            predicted = app.predict_counts(dataset.grids[i]).data
            diff = predicted - dataset.counts[i]
            total += float((diff ** 2).sum())
            count += diff.size
    return total / max(count, 1)


def digit_accuracy(app: MnistGridApp, images: np.ndarray, digits: np.ndarray) -> float:
    """Experiment 2 (§5.5): the extracted digit_parser on held-out digits."""
    with no_grad():
        logits = app.digit_parser(Tensor(images)).data
    return float((logits.argmax(axis=1) == digits).mean())
