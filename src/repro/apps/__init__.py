"""End-to-end applications from the paper's use-case section (§5)."""

from repro.apps import llp, mnistgrid, multimodal, ocr

__all__ = ["llp", "mnistgrid", "multimodal", "ocr"]
