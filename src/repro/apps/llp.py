"""Learning from Label Proportions via trainable SQL (paper §5.3, §5.4).

The classifier TVF + ``GROUP BY Income`` query of Listing 9, with bag-wise
training against (possibly Laplace-noised) count labels.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.core.compiled_query import CompiledQuery
from repro.core.config import constants
from repro.core.session import Session
from repro.datasets.bags import Bag
from repro.ml.models.linear import LinearClassifier
from repro.storage.encodings import PEEncoding
from repro.tcr import optim
from repro.tcr.tensor import Tensor

BAG_TABLE = "Adult_Income_Bag"
QUERY = (
    "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) "
    "GROUP BY Income"
)


@dataclasses.dataclass
class LlpApp:
    session: Session
    query: CompiledQuery
    model: LinearClassifier

    def predict_counts(self, bag_features: np.ndarray) -> Tensor:
        self.session.sql.register_tensor(Tensor(bag_features), BAG_TABLE)
        return self.query.run()


def build_app(session: Session, num_features: int,
              model: Optional[LinearClassifier] = None) -> LlpApp:
    """Register ``classify_incomes`` (Listing 9) and compile the query."""
    model = model or LinearClassifier(num_features, num_classes=2)

    @session.udf("Income float", name="classify_incomes", modules=[model])
    def classify_incomes(x: Tensor) -> Tensor:
        return PEEncoding.encode(model(x), domain=[0, 1])

    # Register a placeholder bag so the binder can resolve the table schema.
    session.sql.register_tensor(
        Tensor(np.zeros((1, num_features), dtype=np.float32)), BAG_TABLE
    )
    query = session.spark.query(QUERY, extra_config={constants.TRAINABLE: True})
    return LlpApp(session, query, model)


def train_on_bags(app: LlpApp, bags: List[Bag], epochs: int = 30,
                  lr: float = 0.05, seed: int = 0) -> List[float]:
    """Bag-wise gradient descent on the squared count error."""
    rng = np.random.default_rng(seed)
    optimizer = optim.Adam(app.query.parameters(), lr=lr)
    history: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(bags))
        epoch_loss = 0.0
        for index in order:
            bag = bags[index]
            optimizer.zero_grad()
            predicted = app.predict_counts(bag.features)
            target = Tensor(bag.counts.astype(np.float32))
            loss = ((predicted - target) ** 2).mean()
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        history.append(epoch_loss / max(len(bags), 1))
    return history
