"""Multimodal query application (paper §5.1, Fig 2).

Registers the email-attachment table and the ``image_text_similarity`` UDF
(Listing 7) on a session, and provides the Fig 2 query set plus the 30-query
mixed workload used for the CPU/GPU timing comparison.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.session import Session
from repro.datasets.attachments import (
    AttachmentDataset,
    PHOTO_SUBJECTS,
    VENDORS,
    make_attachments,
)
from repro.ml.models.clip import TinyCLIP, load_pretrained_clip
from repro.tcr.tensor import Tensor

ATTACHMENTS_TABLE = "Attachments"
IMAGES_INDEX = "attachments_images_ivf"


def setup_multimodal(session: Session, dataset: Optional[AttachmentDataset] = None,
                     model: Optional[TinyCLIP] = None, device: str = "cpu",
                     table_name: str = ATTACHMENTS_TABLE,
                     vector_index: bool = False, index_cells: int = 16,
                     index_nprobe: int = 4) -> TinyCLIP:
    """Register the attachments table and the CLIP-backed similarity UDF.

    With ``vector_index=True`` an IVF-Flat index is also created over the
    image column, so the Fig 2 top-k similarity queries plan through
    ``IndexScanExec`` instead of scoring every attachment (paper §5.1's
    approximate-indexing future work). Kept opt-in so the exact paper
    reproduction workloads stay exact by default.
    """
    if dataset is None:
        dataset = make_attachments(rng=np.random.default_rng(0))
    if model is None:
        model = load_pretrained_clip(dataset.images, dataset.captions)
    session.sql.register_dict(
        {"attachment_id": np.arange(len(dataset)), "images": dataset.images},
        table_name, device=device,
    )

    # ann="inner_product": calibrated similarity is a positive affine map of
    # the towers' cosine, so index ranking by inner product is order-exact.
    @session.udf("float", name="image_text_similarity", modules=[model],
                 ann="inner_product")
    def image_text_similarity(query: str, images: Tensor) -> Tensor:
        return model.similarity(query, images)

    if vector_index:
        session.create_vector_index(IMAGES_INDEX, table_name, "images",
                                    cells=index_cells, nprobe=index_nprobe,
                                    replace=True)

    return model


def fig2_queries() -> List[str]:
    """The three example queries of Fig 2 (left)."""
    return [
        'SELECT COUNT(*) FROM Attachments '
        'WHERE image_text_similarity("receipt", images) > 0.80',
        'SELECT images FROM Attachments '
        'WHERE image_text_similarity("dog", images) > 0.80',
        'SELECT images, image_text_similarity("KFC Receipt", images) AS score '
        'FROM Attachments ORDER BY score DESC LIMIT 2',
    ]


def mixed_workload(n: int = 30, seed: int = 3) -> List[str]:
    """A mixed workload of filter / aggregate / top-k similarity queries.

    Mirrors the paper's "workload of 30 queries containing a mix of queries
    as shown in Fig. 2".
    """
    rng = np.random.default_rng(seed)
    subjects = PHOTO_SUBJECTS + ["receipt", "logo"]
    queries: List[str] = []
    for i in range(n):
        kind = i % 3
        subject = subjects[int(rng.integers(0, len(subjects)))]
        threshold = float(rng.uniform(0.75, 0.85))
        if kind == 0:
            queries.append(
                f'SELECT COUNT(*) FROM Attachments '
                f'WHERE image_text_similarity("{subject}", images) > {threshold:.2f}'
            )
        elif kind == 1:
            queries.append(
                f'SELECT images FROM Attachments '
                f'WHERE image_text_similarity("{subject}", images) > {threshold:.2f}'
            )
        else:
            vendor = VENDORS[int(rng.integers(0, len(VENDORS)))]
            k = int(rng.integers(2, 6))
            queries.append(
                f'SELECT images, image_text_similarity("{vendor} Receipt", images) '
                f'AS score FROM Attachments ORDER BY score DESC LIMIT {k}'
            )
    return queries
