"""SQL over OCRed documents (paper §5.2, Fig 3-left).

Registers a Document table (image + timestamp metadata columns) and the
``extract_table`` TVF whose body runs the table-detection + OCR pipeline.
Also provides the bulk-conversion + MiniDuck baseline workflow the paper
compares against.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.miniduck import MiniDuck
from repro.core.session import Session
from repro.datasets.documents import DocumentDataset, make_documents
from repro.datasets.iris import FEATURES
from repro.ml.models.ocr import TableExtractor
from repro.storage.frame import DataFrame
from repro.tcr.tensor import Tensor

DOCUMENT_TABLE = "Document"

PAPER_QUERY = (
    'SELECT AVG(SepalLength), AVG(PetalLength) '
    'FROM (SELECT extract_table(images) FROM Document '
    'WHERE timestamp = "2022:08:10")'
)


def setup_ocr(session: Session, documents: Optional[DocumentDataset] = None,
              device: str = "cpu", extractor: Optional[TableExtractor] = None
              ) -> Tuple[DocumentDataset, TableExtractor]:
    """Register the Document table and the ``extract_table`` TVF."""
    if documents is None:
        documents = make_documents(n=100)
    pipeline = extractor or TableExtractor()
    session.sql.register_dict(
        {"images": documents.images, "timestamp": documents.timestamps},
        DOCUMENT_TABLE, device=device,
    )
    schema = ", ".join(f"{name} float" for name in FEATURES)

    @session.udf(schema, name="extract_table")
    def extract_table(images: Tensor):
        values = pipeline.extract_columns(images.detach().data)
        return tuple(Tensor(values[:, j]) for j in range(values.shape[1]))

    return documents, pipeline


def bulk_convert_all(documents: DocumentDataset,
                     extractor: Optional[TableExtractor] = None) -> DataFrame:
    """The baseline's conversion step: OCR every document up front."""
    pipeline = extractor or TableExtractor()
    frames = []
    stamps = []
    for i in range(len(documents)):
        values = pipeline.extract_columns(documents.images[i:i + 1])
        frames.append(values)
        stamps.extend([documents.timestamps[i]] * values.shape[0])
    stacked = np.concatenate(frames, axis=0)
    out = DataFrame({name: stacked[:, j] for j, name in enumerate(FEATURES)})
    out["timestamp"] = np.asarray(stamps, dtype=object)
    return out


def load_into_miniduck(frame: DataFrame) -> MiniDuck:
    """The baseline's load step: extracted rows into the embedded engine."""
    duck = MiniDuck()
    duck.register("documents", frame)
    return duck


MINIDUCK_QUERY = (
    "SELECT AVG(SepalLength), AVG(PetalLength) FROM documents "
    "WHERE timestamp = '2022:08:10'"
)
