"""Exception hierarchy for the TDP reproduction.

Every layer raises a subclass of :class:`TdpError` so callers can catch
engine failures without also swallowing programming errors.
"""

from __future__ import annotations


class TdpError(Exception):
    """Base class for all errors raised by this library."""


class DeviceError(TdpError):
    """Raised on invalid device names or cross-device operations."""


class AutogradError(TdpError):
    """Raised on invalid gradient operations (e.g. backward on non-scalar)."""


class ShapeError(TdpError):
    """Raised when tensor shapes are incompatible for an operation."""


class EncodingError(TdpError):
    """Raised when column encodings are invalid or misused."""


class SqlError(TdpError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """Raised by the lexer/parser on malformed SQL text."""


class BindError(SqlError):
    """Raised when names or types cannot be resolved against the catalog."""


class PlanError(SqlError):
    """Raised when a logical plan cannot be lowered to a physical plan."""


class CatalogError(TdpError):
    """Raised on unknown/duplicate table or function registrations."""


class UdfError(TdpError):
    """Raised when a UDF/TVF declaration or invocation is invalid."""


class ExecutionError(TdpError):
    """Raised when a compiled query fails at run time."""


class SchedulingError(TdpError):
    """Base class for serving/admission failures (see repro.core.scheduler)."""


class ServerOverloaded(SchedulingError):
    """The request was shed by admission control.

    Raised synchronously by ``QueryScheduler.submit`` (and therefore by
    ``Session.submit``/``aquery``) when the queue-depth cap is reached under
    ``shed_policy="reject"``, or when the observed queue wait already
    exceeds the request's ``deadline`` hint; set as the *future's* exception
    when a queued request is displaced under ``shed_policy="oldest"``. The
    network server maps it to an HTTP 503 with a typed JSON body.
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class QueryDeadlineExceeded(SchedulingError):
    """The request's ``deadline`` hint lapsed while it waited in the queue.

    Deadline-expired work is dropped at dequeue time instead of executed:
    running a query whose client has already timed out only steals capacity
    from requests that can still meet their SLO.
    """
