"""Exception hierarchy for the TDP reproduction.

Every layer raises a subclass of :class:`TdpError` so callers can catch
engine failures without also swallowing programming errors.
"""

from __future__ import annotations


class TdpError(Exception):
    """Base class for all errors raised by this library."""


class DeviceError(TdpError):
    """Raised on invalid device names or cross-device operations."""


class AutogradError(TdpError):
    """Raised on invalid gradient operations (e.g. backward on non-scalar)."""


class ShapeError(TdpError):
    """Raised when tensor shapes are incompatible for an operation."""


class EncodingError(TdpError):
    """Raised when column encodings are invalid or misused."""


class SqlError(TdpError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """Raised by the lexer/parser on malformed SQL text."""


class BindError(SqlError):
    """Raised when names or types cannot be resolved against the catalog."""


class PlanError(SqlError):
    """Raised when a logical plan cannot be lowered to a physical plan."""


class CatalogError(TdpError):
    """Raised on unknown/duplicate table or function registrations."""


class UdfError(TdpError):
    """Raised when a UDF/TVF declaration or invocation is invalid."""


class ExecutionError(TdpError):
    """Raised when a compiled query fails at run time."""
