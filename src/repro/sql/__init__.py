"""``repro.sql`` — SQL front end (parser, binder, logical plans, optimizer).

Stands in for the external Spark/Substrait planners the paper plugs into TDP.
"""

from repro.sql.binder import Binder, Scope
from repro.sql.parser import parse
from repro.sql import bound, logical, nodes
from repro.sql.optimizer import optimize

__all__ = ["Binder", "Scope", "bound", "logical", "nodes", "optimize", "parse"]
