"""Logical query plan nodes.

Every node carries an output ``schema``: a list of (name, DataType) pairs.
The optimizer rewrites these trees; the physical planner lowers them to
executable operator Modules.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.sql.bound import AggSpec, BoundExpr
from repro.storage import types as dt

Schema = List[Tuple[str, dt.DataType]]


class LogicalPlan:
    schema: Schema

    def children(self) -> List["LogicalPlan"]:
        raise NotImplementedError

    def with_children(self, children: List["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclasses.dataclass
class Scan(LogicalPlan):
    table_name: str
    schema: Schema

    def children(self):
        return []

    def with_children(self, children):
        assert not children
        return self

    def describe(self):
        return f"Scan({self.table_name})"


@dataclasses.dataclass
class TVFScan(LogicalPlan):
    """Apply a table-valued function to the rows of the input plan.

    ``arg_exprs`` are bound expressions over the input schema in call order;
    scalar constants appear as ``BLiteral`` nodes (e.g. the text query in
    ``image_text_similarity``-style functions).
    """
    input: LogicalPlan
    udf: object                      # repro.core.udf.UdfInfo
    arg_exprs: List[BoundExpr]
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        return f"TVFScan({self.udf.name})"


@dataclasses.dataclass
class Filter(LogicalPlan):
    input: LogicalPlan
    predicate: BoundExpr
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Filter(children[0], self.predicate)

    def describe(self):
        return f"Filter({self.predicate})"


@dataclasses.dataclass
class Project(LogicalPlan):
    input: LogicalPlan
    exprs: List[BoundExpr]
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        names = ", ".join(name for name, _ in self.schema)
        return f"Project({names})"


@dataclasses.dataclass
class Aggregate(LogicalPlan):
    input: LogicalPlan
    group_exprs: List[BoundExpr]
    group_names: List[str]
    aggregates: List[AggSpec]
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        groups = ", ".join(self.group_names)
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"Aggregate(groups=[{groups}], aggs=[{aggs}])"


@dataclasses.dataclass
class JoinPlan(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    kind: str                          # INNER, LEFT, RIGHT, CROSS
    left_keys: List[BoundExpr]
    right_keys: List[BoundExpr]        # indexes relative to the right schema
    residual: Optional[BoundExpr]      # over the combined schema
    schema: Schema

    def children(self):
        return [self.left, self.right]

    def with_children(self, children):
        return dataclasses.replace(self, left=children[0], right=children[1])

    def describe(self):
        keys = ", ".join(f"{l}={r}" for l, r in zip(self.left_keys, self.right_keys))
        return f"Join({self.kind}, on=[{keys}])"


@dataclasses.dataclass
class Sort(LogicalPlan):
    input: LogicalPlan
    keys: List[Tuple[BoundExpr, bool]]     # (expr over input schema, ascending)
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Sort(children[0], self.keys)

    def describe(self):
        keys = ", ".join(f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys)
        return f"Sort({keys})"


@dataclasses.dataclass
class Limit(LogicalPlan):
    input: LogicalPlan
    count: int
    offset: int = 0
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Limit(children[0], self.count, self.offset)

    def describe(self):
        return f"Limit({self.count}, offset={self.offset})"


@dataclasses.dataclass
class Distinct(LogicalPlan):
    input: LogicalPlan
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Distinct(children[0])
