"""Logical query plan nodes.

Every node carries an output ``schema``: a list of (name, DataType) pairs.
The optimizer rewrites these trees; the physical planner lowers them to
executable operator Modules.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.sql.bound import AggSpec, BoundExpr
from repro.storage import types as dt

Schema = List[Tuple[str, dt.DataType]]


class LogicalPlan:
    schema: Schema

    def children(self) -> List["LogicalPlan"]:
        raise NotImplementedError

    def with_children(self, children: List["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


@dataclasses.dataclass
class Scan(LogicalPlan):
    table_name: str
    schema: Schema

    def children(self):
        return []

    def with_children(self, children):
        assert not children
        return self

    def describe(self):
        return f"Scan({self.table_name})"


@dataclasses.dataclass
class TVFScan(LogicalPlan):
    """Apply a table-valued function to the rows of the input plan.

    ``arg_exprs`` are bound expressions over the input schema in call order;
    scalar constants appear as ``BLiteral`` nodes (e.g. the text query in
    ``image_text_similarity``-style functions).
    """
    input: LogicalPlan
    udf: object                      # repro.core.udf.UdfInfo
    arg_exprs: List[BoundExpr]
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        return f"TVFScan({self.udf.name})"


@dataclasses.dataclass
class Filter(LogicalPlan):
    input: LogicalPlan
    predicate: BoundExpr
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Filter(children[0], self.predicate)

    def describe(self):
        return f"Filter({self.predicate})"


@dataclasses.dataclass
class Project(LogicalPlan):
    input: LogicalPlan
    exprs: List[BoundExpr]
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        names = ", ".join(name for name, _ in self.schema)
        return f"Project({names})"


@dataclasses.dataclass
class Aggregate(LogicalPlan):
    input: LogicalPlan
    group_exprs: List[BoundExpr]
    group_names: List[str]
    aggregates: List[AggSpec]
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        groups = ", ".join(self.group_names)
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"Aggregate(groups=[{groups}], aggs=[{aggs}])"


@dataclasses.dataclass
class JoinPlan(LogicalPlan):
    left: LogicalPlan
    right: LogicalPlan
    kind: str                          # INNER, LEFT, RIGHT, CROSS
    left_keys: List[BoundExpr]
    right_keys: List[BoundExpr]        # indexes relative to the right schema
    residual: Optional[BoundExpr]      # over the combined schema
    schema: Schema

    def children(self):
        return [self.left, self.right]

    def with_children(self, children):
        return dataclasses.replace(self, left=children[0], right=children[1])

    def describe(self):
        keys = ", ".join(f"{lk}={rk}"
                         for lk, rk in zip(self.left_keys, self.right_keys))
        return f"Join({self.kind}, on=[{keys}])"


@dataclasses.dataclass
class Sort(LogicalPlan):
    input: LogicalPlan
    keys: List[Tuple[BoundExpr, bool]]     # (expr over input schema, ascending)
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Sort(children[0], self.keys)

    def describe(self):
        keys = ", ".join(f"{e} {'ASC' if asc else 'DESC'}" for e, asc in self.keys)
        return f"Sort({keys})"


@dataclasses.dataclass
class Limit(LogicalPlan):
    input: LogicalPlan
    count: int
    offset: int = 0
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Limit(children[0], self.count, self.offset)

    def describe(self):
        return f"Limit({self.count}, offset={self.offset})"


@dataclasses.dataclass
class Distinct(LogicalPlan):
    input: LogicalPlan
    schema: Schema = None

    def __post_init__(self):
        if self.schema is None:
            self.schema = self.input.schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return Distinct(children[0])


@dataclasses.dataclass
class TopKSimilarity(LogicalPlan):
    """ANN-accelerated ``ORDER BY <similarity> DESC LIMIT k`` over a scan.

    Produced by the optimizer's ``vector_index`` rule when the sort key is a
    similarity call over an indexed embedding column. ``exprs`` (the final
    projection), ``residual`` (leftover WHERE conjuncts, post-filtered over
    index candidates) and ``sim_expr`` (the ranking similarity call) are
    all bound against the input scan's schema.
    """
    input: LogicalPlan                  # the Scan feeding candidate rows
    index_name: str
    table_name: str
    column: str                         # indexed embedding column
    query_text: str                     # the literal text argument
    sim_expr: BoundExpr                 # the similarity call ranking rows
    exprs: List[BoundExpr]
    residual: Optional[BoundExpr]
    k: int
    offset: int
    schema: Schema

    def children(self):
        return [self.input]

    def with_children(self, children):
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        return (f"TopKSimilarity(index={self.index_name}, "
                f"{self.table_name}.{self.column}, q={self.query_text!r}, "
                f"k={self.k})")


# ----------------------------------------------------------------------
# DDL plans (vector-index subsystem)
# ----------------------------------------------------------------------

class DdlPlan(LogicalPlan):
    """Base for statements that mutate/inspect session state when run.

    DDL plans skip the optimizer and are never plan-cached; they lower to
    operators that act on the session's :class:`IndexManager`.
    """

    def children(self):
        return []

    def with_children(self, children):
        assert not children
        return self


STATUS_SCHEMA: Schema = [("status", dt.STRING)]
SHOW_INDEXES_SCHEMA: Schema = [
    ("name", dt.STRING), ("table", dt.STRING), ("column", dt.STRING),
    ("cells", dt.INT), ("nprobe", dt.INT), ("rows", dt.INT),
    ("status", dt.STRING),
]


@dataclasses.dataclass
class CreateIndex(DdlPlan):
    name: str
    table: str
    column: str
    cells: int = 16
    nprobe: Optional[int] = None
    seed: int = 0
    schema: Schema = dataclasses.field(default_factory=lambda: list(STATUS_SCHEMA))

    def describe(self):
        return f"CreateIndex({self.name} ON {self.table}({self.column}))"


@dataclasses.dataclass
class DropIndex(DdlPlan):
    name: str
    if_exists: bool = False
    schema: Schema = dataclasses.field(default_factory=lambda: list(STATUS_SCHEMA))

    def describe(self):
        return f"DropIndex({self.name})"


@dataclasses.dataclass
class ShowIndexes(DdlPlan):
    schema: Schema = dataclasses.field(
        default_factory=lambda: list(SHOW_INDEXES_SCHEMA))


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

EXPLAIN_SCHEMA: Schema = [("plan", dt.STRING)]


@dataclasses.dataclass
class ExplainPlan(LogicalPlan):
    """``EXPLAIN [ANALYZE] <statement>``.

    Not a :class:`DdlPlan`: the wrapped statement must flow through the
    optimizer and physical planner so plain ``EXPLAIN`` renders the real
    lowered tree (sharded scans, compiled kernels and all). ``sql`` keeps
    the inner statement's source text because ``EXPLAIN ANALYZE`` re-enters
    the session's compile path at run time to attribute plan-cache hits.
    """

    input: LogicalPlan
    analyze: bool
    sql: str
    schema: Schema = dataclasses.field(default_factory=lambda: list(EXPLAIN_SCHEMA))

    def children(self):
        return [self.input]

    def with_children(self, children):
        assert len(children) == 1
        return dataclasses.replace(self, input=children[0])

    def describe(self):
        mode = "ANALYZE" if self.analyze else ""
        return f"Explain({mode})"

    def describe(self):
        return "ShowIndexes"
