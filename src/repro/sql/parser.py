"""Recursive-descent SQL parser producing :mod:`repro.sql.nodes` ASTs.

This replaces the external Spark/Substrait front ends the paper plugs in:
TDP only needs *a* parser that yields the plan shapes the engine compiles.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SqlSyntaxError
from repro.sql import nodes
from repro.sql.lexer import Token, tokenize


class Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def _check(self, kind: str, value: str = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: str, value: str = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            expected = value or kind
            raise SqlSyntaxError(
                f"expected {expected} but found {token.value or 'end of input'!r} "
                f"at position {token.position} in query: {self.text!r}"
            )
        return self._advance()

    # Soft keywords: DDL words are ordinary identifiers elsewhere, so
    # pre-existing schemas with columns named `index`/`with`/... still parse.
    def _check_word(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "IDENT" and token.value.upper() == word

    def _accept_word(self, word: str) -> bool:
        if self._check_word(word):
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> Token:
        if not self._check_word(word):
            token = self._peek()
            raise SqlSyntaxError(
                f"expected {word} but found {token.value or 'end of input'!r} "
                f"at position {token.position} in query: {self.text!r}"
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def parse(self) -> nodes.Statement:
        if self._check_word("EXPLAIN"):
            stmt = self._explain_stmt()
        else:
            stmt = self._bare_statement()
        self._accept("SYMBOL", ";")
        if not self._check("EOF"):
            token = self._peek()
            raise SqlSyntaxError(
                f"unexpected trailing input {token.value!r} at position {token.position}"
            )
        return stmt

    def _bare_statement(self) -> nodes.Statement:
        if self._check_word("CREATE"):
            return self._create_index_stmt()
        if self._check_word("DROP"):
            return self._drop_index_stmt()
        if self._check_word("SHOW"):
            return self._show_indexes_stmt()
        return self._select_stmt()

    # ------------------------------------------------------------------
    # Observability statements
    # ------------------------------------------------------------------
    def _explain_stmt(self) -> nodes.ExplainStmt:
        # EXPLAIN/ANALYZE are soft keywords like the DDL words: `SELECT
        # explain FROM t` still treats `explain` as a column. We only get
        # here when EXPLAIN leads the statement.
        self._expect_word("EXPLAIN")
        analyze = self._accept_word("ANALYZE")
        inner_start = self._peek().position
        stmt = self._bare_statement()
        inner_sql = self.text[inner_start:].rstrip().rstrip(";").rstrip()
        if not inner_sql:
            token = self._peek()
            raise SqlSyntaxError(
                f"EXPLAIN requires a statement at position {token.position} "
                f"in query: {self.text!r}"
            )
        return nodes.ExplainStmt(statement=stmt, analyze=analyze, sql=inner_sql)

    # ------------------------------------------------------------------
    # DDL statements (vector-index subsystem)
    # ------------------------------------------------------------------
    def _create_index_stmt(self) -> nodes.CreateVectorIndexStmt:
        self._expect_word("CREATE")
        self._expect_word("VECTOR")
        self._expect_word("INDEX")
        name = self._expect_name()
        self._expect("KEYWORD", "ON")
        table = self._expect_name()
        self._expect("SYMBOL", "(")
        column = self._expect_name()
        self._expect("SYMBOL", ")")
        options = {}
        if self._accept_word("WITH"):
            self._expect("SYMBOL", "(")
            options.update(self._index_option())
            while self._accept("SYMBOL", ","):
                options.update(self._index_option())
            self._expect("SYMBOL", ")")
        return nodes.CreateVectorIndexStmt(name=name, table=table, column=column,
                                           options=options)

    def _index_option(self) -> dict:
        key = self._expect_name().lower()
        self._expect("SYMBOL", "=")
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text.lower()) else int(text)
        elif token.kind == "STRING":
            self._advance()
            value = token.value
        else:
            raise SqlSyntaxError(
                f"index option {key!r} needs a number or string value, found "
                f"{token.value or 'end of input'!r} at position {token.position}"
            )
        return {key: value}

    def _drop_index_stmt(self) -> nodes.DropIndexStmt:
        self._expect_word("DROP")
        self._expect_word("INDEX")
        if_exists = False
        # Greedy IF EXISTS pair (an index literally named `if` needs quoting).
        if self._check_word("IF") and self._peek(1).kind == "IDENT" \
                and self._peek(1).value.upper() == "EXISTS":
            self._advance()
            self._advance()
            if_exists = True
        return nodes.DropIndexStmt(name=self._expect_name(), if_exists=if_exists)

    def _show_indexes_stmt(self) -> nodes.ShowIndexesStmt:
        self._expect_word("SHOW")
        self._expect_word("INDEXES")
        return nodes.ShowIndexesStmt()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _select_stmt(self) -> nodes.SelectStmt:
        self._expect("KEYWORD", "SELECT")
        distinct = bool(self._accept("KEYWORD", "DISTINCT"))
        items = [self._select_item()]
        while self._accept("SYMBOL", ","):
            items.append(self._select_item())

        from_clause = None
        if self._accept("KEYWORD", "FROM"):
            from_clause = self._table_expr()

        where = self._expr() if self._accept("KEYWORD", "WHERE") else None

        group_by: List[nodes.Expr] = []
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_by.append(self._expr())
            while self._accept("SYMBOL", ","):
                group_by.append(self._expr())

        having = self._expr() if self._accept("KEYWORD", "HAVING") else None

        order_by: List[nodes.OrderItem] = []
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY")
            order_by.append(self._order_item())
            while self._accept("SYMBOL", ","):
                order_by.append(self._order_item())

        limit = offset = None
        if self._accept("KEYWORD", "LIMIT"):
            limit = int(self._expect("NUMBER").value)
        if self._accept("KEYWORD", "OFFSET"):
            offset = int(self._expect("NUMBER").value)

        return nodes.SelectStmt(
            items=items, from_clause=from_clause, where=where, group_by=group_by,
            having=having, order_by=order_by, limit=limit, offset=offset,
            distinct=distinct,
        )

    def _select_item(self) -> nodes.SelectItem:
        expr = self._expr()
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect_name()
        elif self._check("IDENT"):
            alias = self._advance().value
        return nodes.SelectItem(expr=expr, alias=alias)

    def _order_item(self) -> nodes.OrderItem:
        expr = self._expr()
        ascending = True
        if self._accept("KEYWORD", "DESC"):
            ascending = False
        else:
            self._accept("KEYWORD", "ASC")
        return nodes.OrderItem(expr=expr, ascending=ascending)

    def _expect_name(self) -> str:
        token = self._peek()
        if token.kind == "IDENT":
            return self._advance().value
        raise SqlSyntaxError(
            f"expected identifier, found {token.value!r} at position {token.position}"
        )

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _table_expr(self) -> nodes.TableExpr:
        left = self._table_primary()
        while True:
            kind = None
            if self._accept("KEYWORD", "CROSS"):
                self._expect("KEYWORD", "JOIN")
                kind = "CROSS"
            elif self._accept("KEYWORD", "INNER"):
                self._expect("KEYWORD", "JOIN")
                kind = "INNER"
            elif self._check("KEYWORD", "LEFT") or self._check("KEYWORD", "RIGHT"):
                side = self._advance().value
                self._accept("KEYWORD", "OUTER")
                self._expect("KEYWORD", "JOIN")
                kind = side
            elif self._accept("KEYWORD", "JOIN"):
                kind = "INNER"
            else:
                break
            right = self._table_primary()
            condition = None
            if kind != "CROSS":
                self._expect("KEYWORD", "ON")
                condition = self._expr()
            left = nodes.Join(left=left, right=right, kind=kind, condition=condition)
        return left

    def _table_primary(self) -> nodes.TableExpr:
        if self._accept("SYMBOL", "("):
            stmt = self._select_stmt()
            self._expect("SYMBOL", ")")
            alias = self._table_alias()
            return nodes.SubqueryRef(query=stmt, alias=alias)
        name = self._expect_name()
        if self._accept("SYMBOL", "("):
            args: List[nodes.Expr] = []
            if not self._check("SYMBOL", ")"):
                args.append(self._expr())
                while self._accept("SYMBOL", ","):
                    args.append(self._expr())
            self._expect("SYMBOL", ")")
            return nodes.TableFunction(name=name, args=args, alias=self._table_alias())
        return nodes.TableRef(name=name, alias=self._table_alias())

    def _table_alias(self) -> Optional[str]:
        if self._accept("KEYWORD", "AS"):
            return self._expect_name()
        if self._check("IDENT"):
            return self._advance().value
        return None

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _expr(self) -> nodes.Expr:
        return self._or_expr()

    def _or_expr(self) -> nodes.Expr:
        left = self._and_expr()
        while self._accept("KEYWORD", "OR"):
            left = nodes.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> nodes.Expr:
        left = self._not_expr()
        while self._accept("KEYWORD", "AND"):
            left = nodes.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> nodes.Expr:
        if self._accept("KEYWORD", "NOT"):
            return nodes.UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> nodes.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "SYMBOL" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "<>":
                op = "!="
            return nodes.BinaryOp(op, left, self._additive())
        negated = False
        if self._check("KEYWORD", "NOT") and self._peek(1).value in ("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
        if self._accept("KEYWORD", "IS"):
            is_negated = bool(self._accept("KEYWORD", "NOT"))
            self._expect("KEYWORD", "NULL")
            return nodes.IsNull(left, negated=is_negated)
        if self._accept("KEYWORD", "IN"):
            self._expect("SYMBOL", "(")
            values = [self._expr()]
            while self._accept("SYMBOL", ","):
                values.append(self._expr())
            self._expect("SYMBOL", ")")
            return nodes.InList(left, values, negated=negated)
        if self._accept("KEYWORD", "BETWEEN"):
            low = self._additive()
            self._expect("KEYWORD", "AND")
            high = self._additive()
            return nodes.Between(left, low, high, negated=negated)
        if self._accept("KEYWORD", "LIKE"):
            pattern = self._expect("STRING").value
            return nodes.Like(left, pattern, negated=negated)
        return left

    def _additive(self) -> nodes.Expr:
        left = self._multiplicative()
        while self._check("SYMBOL", "+") or self._check("SYMBOL", "-"):
            op = self._advance().value
            left = nodes.BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> nodes.Expr:
        left = self._unary()
        while (self._check("SYMBOL", "*") or self._check("SYMBOL", "/")
               or self._check("SYMBOL", "%")):
            # `*` only binds as multiplication when a value expression follows
            # (distinguishes `a * b` from the projection/COUNT star).
            if self._check("SYMBOL", "*") and not self._starts_expression(self._peek(1)):
                break
            op = self._advance().value
            left = nodes.BinaryOp(op, left, self._unary())
        return left

    @staticmethod
    def _starts_expression(token) -> bool:
        if token.kind in ("NUMBER", "STRING", "IDENT"):
            return True
        if token.kind == "SYMBOL" and token.value in ("(", "-", "+"):
            return True
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE", "NULL", "CASE", "CAST"):
            return True
        return False

    def _unary(self) -> nodes.Expr:
        if self._accept("SYMBOL", "-"):
            return nodes.UnaryOp("-", self._unary())
        if self._accept("SYMBOL", "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> nodes.Expr:
        token = self._peek()
        if token.kind == "NUMBER":
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return nodes.Literal(float(text))
            return nodes.Literal(int(text))
        if token.kind == "STRING":
            self._advance()
            return nodes.Literal(token.value)
        if token.matches("KEYWORD", "TRUE"):
            self._advance()
            return nodes.Literal(True)
        if token.matches("KEYWORD", "FALSE"):
            self._advance()
            return nodes.Literal(False)
        if token.matches("KEYWORD", "NULL"):
            self._advance()
            return nodes.Literal(None)
        if token.matches("KEYWORD", "CASE"):
            return self._case_expr()
        if token.matches("KEYWORD", "CAST"):
            self._advance()
            self._expect("SYMBOL", "(")
            operand = self._expr()
            self._expect("KEYWORD", "AS")
            type_name = self._expect_name()
            self._expect("SYMBOL", ")")
            return nodes.Cast(operand, type_name)
        if token.matches("SYMBOL", "*"):
            self._advance()
            return nodes.Star()
        if token.matches("SYMBOL", "("):
            self._advance()
            expr = self._expr()
            self._expect("SYMBOL", ")")
            return expr
        if token.kind == "IDENT":
            name = self._advance().value
            if self._accept("SYMBOL", "("):
                distinct = bool(self._accept("KEYWORD", "DISTINCT"))
                args: List[nodes.Expr] = []
                if not self._check("SYMBOL", ")"):
                    args.append(self._expr())
                    while self._accept("SYMBOL", ","):
                        args.append(self._expr())
                self._expect("SYMBOL", ")")
                return nodes.FuncCall(name=name, args=args, distinct=distinct)
            if self._accept("SYMBOL", "."):
                if self._accept("SYMBOL", "*"):
                    return nodes.Star(table=name)
                column = self._expect_name()
                return nodes.ColumnRef(name=column, table=name)
            return nodes.ColumnRef(name=name)
        raise SqlSyntaxError(
            f"unexpected token {token.value or 'end of input'!r} at position "
            f"{token.position} in query: {self.text!r}"
        )

    def _case_expr(self) -> nodes.Expr:
        self._expect("KEYWORD", "CASE")
        whens = []
        while self._accept("KEYWORD", "WHEN"):
            condition = self._expr()
            self._expect("KEYWORD", "THEN")
            whens.append((condition, self._expr()))
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN clause")
        else_ = self._expr() if self._accept("KEYWORD", "ELSE") else None
        self._expect("KEYWORD", "END")
        return nodes.Case(whens=whens, else_=else_)


def parse(text: str) -> nodes.Statement:
    """Parse a SQL statement (SELECT or vector-index DDL) into an AST."""
    return Parser(text).parse()
