"""Bound (name- and type-resolved) expressions.

The binder turns parser ASTs into these nodes: column references become
input-schema indexes, function names are resolved against the UDF registry
and builtin table, and every node carries a :class:`~repro.storage.types.DataType`.
The engine's expression evaluator interprets bound trees against tables.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.storage import types as dt


class BoundExpr:
    """Base class; every bound expression has a result ``data_type``."""

    data_type: dt.DataType

    def references(self) -> set:
        """Set of input column indexes this expression reads."""
        raise NotImplementedError

    def contains_udf(self) -> bool:
        return False


@dataclasses.dataclass
class BColumn(BoundExpr):
    index: int
    name: str
    data_type: dt.DataType

    def references(self) -> set:
        return {self.index}

    def __str__(self):
        return self.name


@dataclasses.dataclass
class BLiteral(BoundExpr):
    value: object
    data_type: dt.DataType

    def references(self) -> set:
        return set()

    def __str__(self):
        return repr(self.value)


@dataclasses.dataclass
class BBinary(BoundExpr):
    op: str
    left: BoundExpr
    right: BoundExpr
    data_type: dt.DataType

    def references(self) -> set:
        return self.left.references() | self.right.references()

    def contains_udf(self) -> bool:
        return self.left.contains_udf() or self.right.contains_udf()

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclasses.dataclass
class BUnary(BoundExpr):
    op: str
    operand: BoundExpr
    data_type: dt.DataType

    def references(self) -> set:
        return self.operand.references()

    def contains_udf(self) -> bool:
        return self.operand.contains_udf()

    def __str__(self):
        return f"({self.op} {self.operand})"


@dataclasses.dataclass
class BCall(BoundExpr):
    """Scalar UDF call (runs user code on encoded tensors)."""
    udf: object                       # repro.core.udf.UdfInfo
    args: List[BoundExpr]
    data_type: dt.DataType

    def references(self) -> set:
        refs = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def contains_udf(self) -> bool:
        return True

    def __str__(self):
        return f"{self.udf.name}({', '.join(str(a) for a in self.args)})"


@dataclasses.dataclass
class BBuiltin(BoundExpr):
    name: str
    args: List[BoundExpr]
    data_type: dt.DataType

    def references(self) -> set:
        refs = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    def contains_udf(self) -> bool:
        return any(a.contains_udf() for a in self.args)

    def __str__(self):
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclasses.dataclass
class BBetween(BoundExpr):
    operand: BoundExpr
    low: BoundExpr
    high: BoundExpr
    negated: bool
    data_type: dt.DataType = dt.BOOL

    def references(self) -> set:
        return self.operand.references() | self.low.references() | self.high.references()

    def contains_udf(self) -> bool:
        return self.operand.contains_udf()


@dataclasses.dataclass
class BIn(BoundExpr):
    operand: BoundExpr
    values: List[object]
    negated: bool
    data_type: dt.DataType = dt.BOOL

    def references(self) -> set:
        return self.operand.references()

    def contains_udf(self) -> bool:
        return self.operand.contains_udf()


@dataclasses.dataclass
class BLike(BoundExpr):
    operand: BoundExpr
    pattern: str
    negated: bool
    data_type: dt.DataType = dt.BOOL

    def references(self) -> set:
        return self.operand.references()


@dataclasses.dataclass
class BIsNull(BoundExpr):
    operand: BoundExpr
    negated: bool
    data_type: dt.DataType = dt.BOOL

    def references(self) -> set:
        return self.operand.references()


@dataclasses.dataclass
class BCase(BoundExpr):
    whens: List[Tuple[BoundExpr, BoundExpr]]
    else_: Optional[BoundExpr]
    data_type: dt.DataType

    def references(self) -> set:
        refs = set()
        for cond, value in self.whens:
            refs |= cond.references() | value.references()
        if self.else_ is not None:
            refs |= self.else_.references()
        return refs

    def contains_udf(self) -> bool:
        if any(c.contains_udf() or v.contains_udf() for c, v in self.whens):
            return True
        return self.else_ is not None and self.else_.contains_udf()


@dataclasses.dataclass
class BCast(BoundExpr):
    operand: BoundExpr
    data_type: dt.DataType

    def references(self) -> set:
        return self.operand.references()

    def contains_udf(self) -> bool:
        return self.operand.contains_udf()


AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


@dataclasses.dataclass
class AggSpec:
    """One aggregate slot of a group-by (or global) aggregation."""
    func: str                          # COUNT / SUM / AVG / MIN / MAX
    arg: Optional[BoundExpr]           # None for COUNT(*)
    distinct: bool
    name: str
    data_type: dt.DataType

    def __str__(self):
        inner = "*" if self.arg is None else str(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


def remap_columns(expr: BoundExpr, mapping) -> BoundExpr:
    """Rewrite BColumn indexes through ``mapping`` (dict old->new).

    Used by optimizer rules when expressions move across projections.
    """
    if isinstance(expr, BColumn):
        return BColumn(mapping[expr.index], expr.name, expr.data_type)
    if isinstance(expr, BLiteral):
        return expr
    if isinstance(expr, BBinary):
        return BBinary(expr.op, remap_columns(expr.left, mapping),
                       remap_columns(expr.right, mapping), expr.data_type)
    if isinstance(expr, BUnary):
        return BUnary(expr.op, remap_columns(expr.operand, mapping), expr.data_type)
    if isinstance(expr, BCall):
        return BCall(expr.udf, [remap_columns(a, mapping) for a in expr.args], expr.data_type)
    if isinstance(expr, BBuiltin):
        return BBuiltin(expr.name, [remap_columns(a, mapping) for a in expr.args], expr.data_type)
    if isinstance(expr, BBetween):
        return BBetween(remap_columns(expr.operand, mapping), remap_columns(expr.low, mapping),
                        remap_columns(expr.high, mapping), expr.negated)
    if isinstance(expr, BIn):
        return BIn(remap_columns(expr.operand, mapping), expr.values, expr.negated)
    if isinstance(expr, BLike):
        return BLike(remap_columns(expr.operand, mapping), expr.pattern, expr.negated)
    if isinstance(expr, BIsNull):
        return BIsNull(remap_columns(expr.operand, mapping), expr.negated)
    if isinstance(expr, BCase):
        whens = [(remap_columns(c, mapping), remap_columns(v, mapping)) for c, v in expr.whens]
        else_ = remap_columns(expr.else_, mapping) if expr.else_ is not None else None
        return BCase(whens, else_, expr.data_type)
    if isinstance(expr, BCast):
        return BCast(remap_columns(expr.operand, mapping), expr.data_type)
    raise TypeError(f"cannot remap {type(expr).__name__}")
