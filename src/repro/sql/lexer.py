"""SQL tokenizer.

Accepts the dialect the paper's listings use, including double-quoted string
literals (Listing 8 compares ``timestamp = "2022:08:10"``).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
    "TRUE", "FALSE", "ASC", "DESC", "DISTINCT", "JOIN", "INNER", "LEFT",
    "RIGHT", "OUTER", "CROSS", "ON", "CASE", "WHEN", "THEN", "ELSE", "END",
    "CAST", "UNION", "ALL", "OFFSET",
}

# Vector-index DDL words (CREATE, DROP, INDEX, WITH, ...) are deliberately
# NOT reserved: the parser matches them contextually as "soft" keywords, so
# existing schemas with columns named `index`/`with`/`show` keep parsing.

SYMBOLS = ["<>", "!=", ">=", "<=", "=", "<", ">", "(", ")", ",", "+", "-",
           "*", "/", "%", ".", ";"]


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str          # KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF
    value: str
    position: int

    def matches(self, kind: str, value: str = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            parts = []
            while j < n:
                if text[j] == quote:
                    if j + 1 < n and text[j + 1] == quote:  # doubled quote escape
                        parts.append(quote)
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            else:
                raise SqlSyntaxError(f"unterminated string starting at position {i}")
            if j >= n:
                raise SqlSyntaxError(f"unterminated string starting at position {i}")
            tokens.append(Token("STRING", "".join(parts), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        if ch == "`":
            j = text.find("`", i + 1)
            if j < 0:
                raise SqlSyntaxError(f"unterminated quoted identifier at position {i}")
            tokens.append(Token("IDENT", text[i + 1:j], i))
            i = j + 1
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("SYMBOL", symbol, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
