"""The ``vector_index`` rule: rewrite top-k similarity queries to ANN probes.

Recognises the paper's Fig 2 top-k shape after the other rules have run:
a ``Limit`` over a single-key *descending* ``Sort`` whose key is a
similarity UDF call ``f('query text', embedding_column)`` (either argument
order) over a column covered by a vector index, with nothing but
projections and filters between the Limit and the underlying ``Scan``.
The whole pipeline is rewritten into one
:class:`~repro.sql.logical.TopKSimilarity` node: projections (including
the hidden-sort-column strip and pruning's narrowing projects) are inlined
by substitution, filters become the node's ``residual`` (the physical
operator over-fetches candidates and post-filters them), and the sort key
becomes the node's ``sim_expr``.

Inlining may duplicate the similarity call between ``sim_expr`` and the
output projection — deliberately so: the ANN path never evaluates
``sim_expr`` row-wise (the index ranks), and the output projection runs
over only k rows, so the duplicate is k cheap evaluations, not n.

Queries that don't match — or whose index can't serve the UDF — keep the
exact Sort/TopK plan, which is also the physical operator's runtime
fallback.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ExecutionError
from repro.sql import bound as b
from repro.sql import logical
from repro.sql.optimizer.pushdown import combine, split_conjuncts


def _similarity_call(expr: b.BoundExpr) -> Optional[Tuple[object, str, int]]:
    """Match ``udf('text', column)`` / ``udf(column, 'text')`` similarity calls.

    Returns (udf, query_text, column_index) or None.
    """
    if not isinstance(expr, b.BCall) or len(expr.args) != 2:
        return None
    literals = [a for a in expr.args if isinstance(a, b.BLiteral)
                and isinstance(a.value, str)]
    columns = [a for a in expr.args if isinstance(a, b.BColumn)]
    if len(literals) != 1 or len(columns) != 1:
        return None
    return expr.udf, literals[0].value, columns[0].index


def _match(plan: logical.LogicalPlan, indexes) -> Optional[logical.LogicalPlan]:
    if not isinstance(plan, logical.Limit) or plan.count is None:
        return None
    from repro.core.operators.fused import substitute_columns

    # Walk Project/Sort/Filter chains down to the Scan, keeping the final
    # output expressions (`post`), the descending sort key (`key_expr`) and
    # collected filter conjuncts rebound against the current node's input.
    post: List[b.BoundExpr] = [
        b.BColumn(i, name, typ) for i, (name, typ) in enumerate(plan.schema)
    ]
    key_expr: Optional[b.BoundExpr] = None
    conjuncts: List[b.BoundExpr] = []
    node = plan.input
    while True:
        if isinstance(node, logical.Project):
            inner = node.exprs
            try:
                post = [substitute_columns(e, inner) for e in post]
                if key_expr is not None:
                    key_expr = substitute_columns(key_expr, inner)
                conjuncts = [substitute_columns(c, inner) for c in conjuncts]
            except ExecutionError:
                return None
            node = node.input
        elif isinstance(node, logical.Sort):
            if key_expr is not None or len(node.keys) != 1:
                return None
            key_expr, ascending = node.keys[0]
            # Similarity ranking is highest-first: only DESC keys match.
            if ascending:
                return None
            node = node.input
        elif isinstance(node, logical.Filter):
            conjuncts.extend(split_conjuncts(node.predicate))
            node = node.input
        else:
            break
    if key_expr is None or not isinstance(node, logical.Scan):
        return None
    match = _similarity_call(key_expr)
    if match is None:
        return None
    udf, query_text, column_index = match
    column_name = node.schema[column_index][0]
    entry = indexes.find(node.table_name, column_name)
    if entry is None or not indexes.supports(entry, udf):
        return None
    return logical.TopKSimilarity(
        input=node,
        index_name=entry.name,
        table_name=node.table_name,
        column=column_name,
        query_text=query_text,
        sim_expr=key_expr,
        exprs=post,
        residual=combine(conjuncts),
        k=plan.count,
        offset=plan.offset or 0,
        schema=list(plan.schema),
    )


def rewrite_topk_similarity(plan: logical.LogicalPlan, indexes) -> logical.LogicalPlan:
    """Bottom-up application of the TopKSimilarity rewrite."""
    plan = plan.with_children([rewrite_topk_similarity(c, indexes)
                               for c in plan.children()])
    return _match(plan, indexes) or plan
