"""Rule-based logical optimizer.

Pipeline: constant folding → predicate pushdown (+ cost reordering) →
projection pruning. Each rule can be disabled through the config dict, which
the ablation benchmarks (A3) use to measure the rules' contribution.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional

from repro.sql import logical
from repro.sql.optimizer.folding import fold
from repro.sql.optimizer.pruning import prune
from repro.sql.optimizer.pushdown import push_down


def _fold_plan(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    plan = plan.with_children([_fold_plan(c) for c in plan.children()])
    if isinstance(plan, logical.Filter):
        return logical.Filter(plan.input, fold(plan.predicate))
    if isinstance(plan, logical.Project):
        return logical.Project(plan.input, [fold(e) for e in plan.exprs], plan.schema)
    if isinstance(plan, logical.TVFScan):
        return logical.TVFScan(plan.input, plan.udf, [fold(e) for e in plan.arg_exprs],
                               plan.schema)
    return plan


DEFAULT_RULES = ("fold", "pushdown", "prune", "vector_index")


def optimize(plan: logical.LogicalPlan,
             config: Optional[Mapping[str, object]] = None) -> logical.LogicalPlan:
    """Apply the enabled rewrite rules to a bound logical plan.

    DDL plans pass through untouched. The ``vector_index`` rule runs last
    (over pruned shapes) and only when the caller supplies the session's
    ``IndexManager`` under ``config["indexes"]``.
    """
    config = config or {}
    if isinstance(plan, logical.DdlPlan):
        return plan
    if isinstance(plan, logical.ExplainPlan):
        # Optimize the wrapped statement exactly as it would be standalone;
        # the Explain wrapper itself has nothing to rewrite.
        return dataclasses.replace(plan, input=optimize(plan.input, config))
    disabled = set(config.get("disable_rules", ()))
    if "fold" not in disabled:
        plan = _fold_plan(plan)
    if "pushdown" not in disabled:
        plan = push_down(plan)
    if "prune" not in disabled:
        plan = prune(plan)
    indexes = config.get("indexes")
    if "vector_index" not in disabled and indexes is not None:
        from repro.sql.optimizer.vector_topk import rewrite_topk_similarity
        plan = rewrite_topk_similarity(plan, indexes)
    return plan
