"""Projection pruning: never carry columns an operator does not need.

This matters unusually much in TDP: a pruned column may be a 4-d image
tensor, so failing to prune drags megabytes of pixels through joins and
sorts. The rule computes, top-down, the set of input columns each node
requires, and narrows children by inserting (or tightening) projections.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.sql import bound as b
from repro.sql import logical


def prune(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    """Entry point: the root must keep its full schema."""
    new_plan, _ = _prune(plan, set(range(len(plan.schema))))
    return new_plan


def _narrow(plan: logical.LogicalPlan, required: Set[int]
            ) -> Tuple[logical.LogicalPlan, Dict[int, int]]:
    """Wrap ``plan`` in a Project keeping only ``required`` columns."""
    kept = sorted(required)
    if len(kept) == len(plan.schema):
        return plan, {i: i for i in kept}
    mapping = {old: new for new, old in enumerate(kept)}
    exprs = [b.BColumn(old, plan.schema[old][0], plan.schema[old][1]) for old in kept]
    schema = [plan.schema[old] for old in kept]
    return logical.Project(plan, exprs, schema), mapping


def _prune(plan: logical.LogicalPlan, required: Set[int]
           ) -> Tuple[logical.LogicalPlan, Dict[int, int]]:
    """Return a plan producing at least ``required`` columns and the mapping
    old-output-index -> new-output-index."""

    if isinstance(plan, logical.Scan):
        return _narrow(plan, required)

    if isinstance(plan, logical.Project):
        kept = sorted(required)
        needed_inputs: Set[int] = set()
        for idx in kept:
            needed_inputs |= plan.exprs[idx].references()
        if not needed_inputs:
            # Constant-only projection: keep one narrow column so the child
            # still carries the row count.
            needed_inputs = {_cheapest_column(plan.input)}
        child, child_map = _prune(plan.input, needed_inputs)
        new_exprs = [b.remap_columns(plan.exprs[idx], child_map) for idx in kept]
        new_schema = [plan.schema[idx] for idx in kept]
        mapping = {old: new for new, old in enumerate(kept)}
        return logical.Project(child, new_exprs, new_schema), mapping

    if isinstance(plan, logical.Filter):
        needed = set(required) | plan.predicate.references()
        child, child_map = _prune(plan.input, needed)
        predicate = b.remap_columns(plan.predicate, child_map)
        filtered = logical.Filter(child, predicate)
        # The filter output schema = child schema; narrow to required.
        remapped_required = {child_map[r] for r in required}
        narrowed, narrow_map = _narrow(filtered, remapped_required)
        return narrowed, {r: narrow_map[child_map[r]] for r in required}

    if isinstance(plan, logical.TVFScan):
        needed_inputs: Set[int] = set()
        for expr in plan.arg_exprs:
            needed_inputs |= expr.references()
        if not needed_inputs:
            needed_inputs = {_cheapest_column(plan.input)}
        child, child_map = _prune(plan.input, needed_inputs)
        arg_exprs = [b.remap_columns(e, child_map) for e in plan.arg_exprs]
        new_plan = logical.TVFScan(child, plan.udf, arg_exprs, plan.schema)
        narrowed, narrow_map = _narrow(new_plan, required)
        return narrowed, {r: narrow_map[r] for r in required}

    if isinstance(plan, logical.Aggregate):
        needed_inputs: Set[int] = set()
        for expr in plan.group_exprs:
            needed_inputs |= expr.references()
        for spec in plan.aggregates:
            if spec.arg is not None:
                needed_inputs |= spec.arg.references()
        if not needed_inputs:
            # COUNT(*)-only aggregate still needs one column for row counting.
            needed_inputs = {_cheapest_column(plan.input)}
        child, child_map = _prune(plan.input, needed_inputs)
        group_exprs = [b.remap_columns(e, child_map) for e in plan.group_exprs]
        aggs = [
            b.AggSpec(s.func, b.remap_columns(s.arg, child_map) if s.arg is not None else None,
                      s.distinct, s.name, s.data_type)
            for s in plan.aggregates
        ]
        new_plan = logical.Aggregate(child, group_exprs, plan.group_names, aggs, plan.schema)
        narrowed, narrow_map = _narrow(new_plan, required)
        return narrowed, {r: narrow_map[r] for r in required}

    if isinstance(plan, logical.JoinPlan):
        left_width = len(plan.left.schema)
        needed_left: Set[int] = set()
        needed_right: Set[int] = set()
        for r in required:
            (needed_left if r < left_width else needed_right).add(
                r if r < left_width else r - left_width
            )
        for key in plan.left_keys:
            needed_left |= key.references()
        for key in plan.right_keys:
            needed_right |= key.references()
        if plan.residual is not None:
            for r in plan.residual.references():
                (needed_left if r < left_width else needed_right).add(
                    r if r < left_width else r - left_width
                )
        if not needed_left:
            needed_left = {_cheapest_column(plan.left)}
        if not needed_right:
            needed_right = {_cheapest_column(plan.right)}
        left, left_map = _prune(plan.left, needed_left)
        right, right_map = _prune(plan.right, needed_right)
        new_left_width = len(left.schema)
        combined_map = {old: left_map[old] for old in needed_left}
        for old in needed_right:
            combined_map[old + left_width] = right_map[old] + new_left_width
        left_keys = [b.remap_columns(k, left_map) for k in plan.left_keys]
        right_keys = [b.remap_columns(k, right_map) for k in plan.right_keys]
        residual = (b.remap_columns(plan.residual, combined_map)
                    if plan.residual is not None else None)
        schema = [plan.schema[old] for old in sorted(combined_map, key=combined_map.get)]
        new_plan = logical.JoinPlan(left, right, plan.kind, left_keys, right_keys,
                                    residual, schema)
        remapped_required = {combined_map[r] for r in required}
        narrowed, narrow_map = _narrow(new_plan, remapped_required)
        return narrowed, {r: narrow_map[combined_map[r]] for r in required}

    if isinstance(plan, logical.Sort):
        needed = set(required)
        for expr, _ in plan.keys:
            needed |= expr.references()
        child, child_map = _prune(plan.input, needed)
        keys = [(b.remap_columns(e, child_map), asc) for e, asc in plan.keys]
        sorted_plan = logical.Sort(child, keys)
        remapped_required = {child_map[r] for r in required}
        narrowed, narrow_map = _narrow(sorted_plan, remapped_required)
        return narrowed, {r: narrow_map[child_map[r]] for r in required}

    if isinstance(plan, logical.Limit):
        child, child_map = _prune(plan.input, required)
        return logical.Limit(child, plan.count, plan.offset), child_map

    if isinstance(plan, logical.Distinct):
        # Distinct semantics depend on *all* columns; keep the full schema.
        child, child_map = _prune(plan.input, set(range(len(plan.input.schema))))
        return logical.Distinct(child), child_map

    raise TypeError(f"cannot prune {type(plan).__name__}")


def _cheapest_column(plan: logical.LogicalPlan) -> int:
    """Pick the narrowest column to retain for pure row counting."""
    best = 0
    best_cost = None
    for i, (_, typ) in enumerate(plan.schema):
        cost = 1
        if typ.kind == "tensor":
            size = 1
            for n in typ.row_shape:
                size *= n
            cost = size
        elif typ.kind == "prob":
            cost = typ.num_classes or 1
        if best_cost is None or cost < best_cost:
            best, best_cost = i, cost
    return best
