"""Constant folding over bound expression trees."""

from __future__ import annotations

import math

from repro.sql import bound as b
from repro.storage import types as dt

_ARITH = {
    "+": lambda x, y: x + y,
    "-": lambda x, y: x - y,
    "*": lambda x, y: x * y,
    "/": lambda x, y: x / y if y != 0 else math.nan,
    "%": lambda x, y: x % y if y != 0 else math.nan,
}
_COMPARE = {
    "=": lambda x, y: x == y,
    "!=": lambda x, y: x != y,
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
}


def fold(expr: b.BoundExpr) -> b.BoundExpr:
    """Recursively evaluate constant sub-expressions."""
    if isinstance(expr, b.BBinary):
        left = fold(expr.left)
        right = fold(expr.right)
        if isinstance(left, b.BLiteral) and isinstance(right, b.BLiteral):
            if expr.op in _ARITH and left.value is not None and right.value is not None:
                value = _ARITH[expr.op](left.value, right.value)
                return b.BLiteral(value, expr.data_type)
            if expr.op in _COMPARE and left.value is not None and right.value is not None:
                return b.BLiteral(bool(_COMPARE[expr.op](left.value, right.value)), dt.BOOL)
            if expr.op == "AND":
                return b.BLiteral(bool(left.value) and bool(right.value), dt.BOOL)
            if expr.op == "OR":
                return b.BLiteral(bool(left.value) or bool(right.value), dt.BOOL)
        # Boolean short-circuits with one constant side.
        if expr.op == "AND":
            for const, other in ((left, right), (right, left)):
                if isinstance(const, b.BLiteral):
                    if const.value:
                        return other
                    return b.BLiteral(False, dt.BOOL)
        if expr.op == "OR":
            for const, other in ((left, right), (right, left)):
                if isinstance(const, b.BLiteral):
                    if not const.value:
                        return other
                    return b.BLiteral(True, dt.BOOL)
        return b.BBinary(expr.op, left, right, expr.data_type)
    if isinstance(expr, b.BUnary):
        operand = fold(expr.operand)
        if isinstance(operand, b.BLiteral) and operand.value is not None:
            if expr.op == "-":
                return b.BLiteral(-operand.value, expr.data_type)
            if expr.op == "NOT":
                return b.BLiteral(not operand.value, dt.BOOL)
        return b.BUnary(expr.op, operand, expr.data_type)
    if isinstance(expr, b.BCall):
        return b.BCall(expr.udf, [fold(a) for a in expr.args], expr.data_type)
    if isinstance(expr, b.BBuiltin):
        return b.BBuiltin(expr.name, [fold(a) for a in expr.args], expr.data_type)
    if isinstance(expr, b.BBetween):
        return b.BBetween(fold(expr.operand), fold(expr.low), fold(expr.high), expr.negated)
    if isinstance(expr, b.BCase):
        whens = [(fold(c), fold(v)) for c, v in expr.whens]
        else_ = fold(expr.else_) if expr.else_ is not None else None
        return b.BCase(whens, else_, expr.data_type)
    if isinstance(expr, b.BCast):
        return b.BCast(fold(expr.operand), expr.data_type)
    return expr
