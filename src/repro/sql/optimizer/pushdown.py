"""Predicate pushdown and predicate cost reordering.

Two effects matter for the paper's workloads:

* filters sink below projections/joins/sorts so expensive downstream
  operators (neural TVF conversion above all — Fig 3-left) see fewer rows;
* within one Filter, cheap scalar conjuncts run before UDF-bearing ones, so
  e.g. a timestamp filter prunes rows before CLIP similarity is evaluated.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sql import bound as b
from repro.sql import logical
from repro.storage import types as dt


def split_conjuncts(expr: b.BoundExpr) -> List[b.BoundExpr]:
    if isinstance(expr, b.BBinary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def combine(conjuncts: List[b.BoundExpr]) -> Optional[b.BoundExpr]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conj in conjuncts[1:]:
        result = b.BBinary("AND", result, conj, dt.BOOL)
    return result


def predicate_cost(expr: b.BoundExpr) -> int:
    """Heuristic evaluation cost: UDFs dominate everything else."""
    if expr.contains_udf():
        return 1000
    return 1 + len(expr.references())


def _project_passthrough(project: logical.Project) -> dict:
    """Map output index -> input index for pure column pass-throughs."""
    mapping = {}
    for out_idx, expr in enumerate(project.exprs):
        if isinstance(expr, b.BColumn):
            mapping[out_idx] = expr.index
    return mapping


def push_down(plan: logical.LogicalPlan) -> logical.LogicalPlan:
    """Recursively push filters toward the leaves."""
    plan = plan.with_children([push_down(c) for c in plan.children()])
    if not isinstance(plan, logical.Filter):
        return plan

    child = plan.input
    conjuncts = split_conjuncts(plan.predicate)

    if isinstance(child, logical.Filter):
        merged = combine(conjuncts + split_conjuncts(child.predicate))
        return push_down(logical.Filter(child.input, merged))

    if isinstance(child, logical.Project):
        passthrough = _project_passthrough(child)
        pushable, rest = [], []
        for conj in conjuncts:
            refs = conj.references()
            if refs <= set(passthrough.keys()):
                pushable.append(b.remap_columns(conj, passthrough))
            else:
                rest.append(conj)
        if pushable:
            new_child = logical.Project(
                push_down(logical.Filter(child.input, combine(pushable))),
                child.exprs, child.schema,
            )
            if rest:
                return logical.Filter(new_child, combine(rest))
            return new_child
        return _reorder(plan)

    if isinstance(child, logical.Sort):
        inner = push_down(logical.Filter(child.input, combine(conjuncts)))
        return logical.Sort(inner, child.keys)

    if isinstance(child, logical.JoinPlan) and child.kind in ("INNER", "CROSS"):
        left_width = len(child.left.schema)
        left_conj, right_conj, rest = [], [], []
        for conj in conjuncts:
            refs = conj.references()
            if refs and all(r < left_width for r in refs):
                left_conj.append(conj)
            elif refs and all(r >= left_width for r in refs):
                mapping = {r: r - left_width for r in refs}
                right_conj.append(b.remap_columns(conj, mapping))
            else:
                rest.append(conj)
        new_left = child.left
        new_right = child.right
        if left_conj:
            new_left = push_down(logical.Filter(new_left, combine(left_conj)))
        if right_conj:
            new_right = push_down(logical.Filter(new_right, combine(right_conj)))
        new_join = logical.JoinPlan(new_left, new_right, child.kind, child.left_keys,
                                    child.right_keys, child.residual, child.schema)
        if rest:
            return _reorder(logical.Filter(new_join, combine(rest)))
        return new_join

    return _reorder(plan)


def _reorder(plan: logical.Filter) -> logical.Filter:
    """Sort a filter's conjuncts so cheap predicates evaluate first."""
    conjuncts = split_conjuncts(plan.predicate)
    if len(conjuncts) > 1:
        conjuncts = sorted(conjuncts, key=predicate_cost)
    return logical.Filter(plan.input, combine(conjuncts))
