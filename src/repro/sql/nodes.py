"""Abstract syntax tree for the SQL dialect."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union


class Expr:
    """Base class for expression nodes."""


@dataclasses.dataclass
class Literal(Expr):
    value: object            # int, float, str, bool or None

    def __str__(self):
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclasses.dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None

    def __str__(self):
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclasses.dataclass
class Star(Expr):
    table: Optional[str] = None

    def __str__(self):
        return f"{self.table}.*" if self.table else "*"


@dataclasses.dataclass
class FuncCall(Expr):
    name: str
    args: List[Expr]
    distinct: bool = False

    def __str__(self):
        inner = ", ".join(str(a) for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclasses.dataclass
class BinaryOp(Expr):
    op: str                  # +, -, *, /, %, =, !=, <, <=, >, >=, AND, OR
    left: Expr
    right: Expr

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclasses.dataclass
class UnaryOp(Expr):
    op: str                  # NOT, -
    operand: Expr

    def __str__(self):
        return f"({self.op} {self.operand})"


@dataclasses.dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclasses.dataclass
class InList(Expr):
    operand: Expr
    values: List[Expr]
    negated: bool = False


@dataclasses.dataclass
class Like(Expr):
    operand: Expr
    pattern: str
    negated: bool = False


@dataclasses.dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclasses.dataclass
class Case(Expr):
    whens: List[Tuple[Expr, Expr]]
    else_: Optional[Expr] = None


@dataclasses.dataclass
class Cast(Expr):
    operand: Expr
    type_name: str


# ----------------------------------------------------------------------
# FROM-clause nodes
# ----------------------------------------------------------------------

class TableExpr:
    """Base class for FROM-clause sources."""


@dataclasses.dataclass
class TableRef(TableExpr):
    name: str
    alias: Optional[str] = None


@dataclasses.dataclass
class TableFunction(TableExpr):
    """A table-valued function in FROM, e.g. ``parse_mnist_grid(MNIST_Grid)``.

    Arguments may be table names (resolved against the catalog) or scalar
    literals passed through to the TVF.
    """
    name: str
    args: List[Expr]
    alias: Optional[str] = None


@dataclasses.dataclass
class SubqueryRef(TableExpr):
    query: "SelectStmt"
    alias: Optional[str] = None


@dataclasses.dataclass
class Join(TableExpr):
    left: TableExpr
    right: TableExpr
    kind: str                 # INNER, LEFT, CROSS
    condition: Optional[Expr] = None


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclasses.dataclass
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclasses.dataclass
class SelectStmt:
    items: List[SelectItem]
    from_clause: Optional[TableExpr]
    where: Optional[Expr] = None
    group_by: List[Expr] = dataclasses.field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = dataclasses.field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


# ----------------------------------------------------------------------
# DDL statements (vector-index subsystem)
# ----------------------------------------------------------------------

@dataclasses.dataclass
class CreateVectorIndexStmt:
    """``CREATE VECTOR INDEX name ON table(column) WITH (cells=.., nprobe=..)``."""
    name: str
    table: str
    column: str
    options: Dict[str, object] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class DropIndexStmt:
    """``DROP INDEX [IF EXISTS] name``."""
    name: str
    if_exists: bool = False


@dataclasses.dataclass
class ShowIndexesStmt:
    """``SHOW INDEXES``."""


# ----------------------------------------------------------------------
# Observability statements
# ----------------------------------------------------------------------

@dataclasses.dataclass
class ExplainStmt:
    """``EXPLAIN [ANALYZE] <statement>``.

    ``sql`` is the inner statement's source text, sliced from the original
    query string; EXPLAIN ANALYZE re-compiles it through the session at run
    time so compilation itself (and any plan-cache hit) appears in the trace.
    """

    statement: "Statement"
    analyze: bool = False
    sql: str = ""


Statement = Union[SelectStmt, CreateVectorIndexStmt, DropIndexStmt,
                  ShowIndexesStmt, ExplainStmt]
