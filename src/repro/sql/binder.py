"""Semantic analysis: resolve names/types and build logical plans.

The binder consumes parser ASTs plus a catalog and a UDF registry, and emits
:mod:`repro.sql.logical` plans over :mod:`repro.sql.bound` expressions. It
implements the paper's two UDF placements:

* scalar UDFs inside expressions (Listing 7's ``image_text_similarity``);
* table-valued functions in FROM (Listing 4/9) or as the sole projection
  item (Listing 8's ``SELECT extract_table(images) FROM ...``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import BindError
from repro.sql import bound as b
from repro.sql import logical, nodes
from repro.storage import types as dt
from repro.storage.catalog import Catalog

# Builtin scalar functions: name -> (min_arity, max_arity, result_type_fn)
_NUMERIC_BUILTINS = {
    "ABS": (1, 1, lambda args: args[0].data_type),
    "SQRT": (1, 1, lambda args: dt.FLOAT),
    "EXP": (1, 1, lambda args: dt.FLOAT),
    "LN": (1, 1, lambda args: dt.FLOAT),
    "LOG": (1, 1, lambda args: dt.FLOAT),
    "POW": (2, 2, lambda args: dt.FLOAT),
    "POWER": (2, 2, lambda args: dt.FLOAT),
    "ROUND": (1, 2, lambda args: dt.FLOAT),
    "FLOOR": (1, 1, lambda args: dt.FLOAT),
    "CEIL": (1, 1, lambda args: dt.FLOAT),
    "LEAST": (2, None, lambda args: args[0].data_type),
    "GREATEST": (2, None, lambda args: args[0].data_type),
    "SIGMOID": (1, 1, lambda args: dt.FLOAT),
}
_STRING_BUILTINS = {
    "UPPER": (1, 1, lambda args: dt.STRING),
    "LOWER": (1, 1, lambda args: dt.STRING),
    "LENGTH": (1, 1, lambda args: dt.INT),
    "TRIM": (1, 1, lambda args: dt.STRING),
    "SUBSTR": (2, 3, lambda args: dt.STRING),
    "SUBSTRING": (2, 3, lambda args: dt.STRING),
}


def _coalesce_type(args) -> dt.DataType:
    # NULLs live only in float columns (NaN), so string COALESCE has no
    # meaning here; a float anywhere makes the whole result float (the
    # fill value flows into NaN slots), otherwise the first arg's type —
    # a NULL-free int/bool first arg short-circuits and keeps its type.
    for arg in args:
        if arg.data_type.kind == "string":
            raise BindError("COALESCE over string arguments is not supported")
    if any(arg.data_type.kind == "float" for arg in args):
        return dt.FLOAT
    return args[0].data_type


_GENERIC_BUILTINS = {
    "COALESCE": (1, None, _coalesce_type),
}
BUILTINS = {**_NUMERIC_BUILTINS, **_STRING_BUILTINS, **_GENERIC_BUILTINS}


class Scope:
    """Name resolution environment for one FROM-clause input."""

    def __init__(self, entries: Sequence[Tuple[Optional[str], str, dt.DataType]]):
        # entries[i] = (qualifier, column name, type); position == plan column index.
        self.entries = list(entries)

    @staticmethod
    def from_schema(schema: logical.Schema, qualifier: Optional[str] = None) -> "Scope":
        return Scope([(qualifier, name, typ) for name, typ in schema])

    def resolve(self, name: str, table: Optional[str] = None) -> Tuple[int, str, dt.DataType]:
        matches = []
        for index, (qualifier, col_name, typ) in enumerate(self.entries):
            if col_name.lower() != name.lower():
                continue
            if table is not None and (qualifier or "").lower() != table.lower():
                continue
            matches.append((index, col_name, typ))
        if not matches:
            available = [f"{q + '.' if q else ''}{n}" for q, n, _ in self.entries]
            raise BindError(f"unknown column {name!r}; available: {available}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {name!r}; qualify it with a table alias")
        return matches[0]

    def merged_with(self, other: "Scope") -> "Scope":
        return Scope(self.entries + other.entries)

    @property
    def schema(self) -> logical.Schema:
        return [(name, typ) for _, name, typ in self.entries]


def _promote(left: dt.DataType, right: dt.DataType, op: str) -> dt.DataType:
    if op in ("AND", "OR"):
        return dt.BOOL
    if op in ("=", "!=", "<", "<=", ">", ">="):
        return dt.BOOL
    if op == "/":
        return dt.FLOAT
    if left.kind == "float" or right.kind == "float":
        return dt.FLOAT
    if left.kind == "int" and right.kind == "int":
        return dt.INT
    if left.kind == "tensor" or right.kind == "tensor":
        return left if left.kind == "tensor" else right
    raise BindError(f"operator {op} not defined for types {left} and {right}")


def _literal_type(value) -> dt.DataType:
    if isinstance(value, bool):
        return dt.BOOL
    if isinstance(value, int):
        return dt.INT
    if isinstance(value, float):
        return dt.FLOAT
    if isinstance(value, str):
        return dt.STRING
    if value is None:
        return dt.FLOAT
    raise BindError(f"unsupported literal {value!r}")


def _expr_key(expr: nodes.Expr) -> str:
    """Canonical text used to match GROUP BY expressions with select items."""
    return str(expr).lower()


def _has_aggregate(expr: nodes.Expr) -> bool:
    if isinstance(expr, nodes.FuncCall):
        if expr.name.upper() in b.AGGREGATE_FUNCTIONS:
            return True
        return any(_has_aggregate(a) for a in expr.args)
    if isinstance(expr, nodes.BinaryOp):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, nodes.UnaryOp):
        return _has_aggregate(expr.operand)
    if isinstance(expr, nodes.Case):
        for cond, value in expr.whens:
            if _has_aggregate(cond) or _has_aggregate(value):
                return True
        return expr.else_ is not None and _has_aggregate(expr.else_)
    if isinstance(expr, (nodes.Between,)):
        return _has_aggregate(expr.operand)
    if isinstance(expr, (nodes.InList, nodes.Like, nodes.IsNull)):
        return _has_aggregate(expr.operand)
    if isinstance(expr, nodes.Cast):
        return _has_aggregate(expr.operand)
    return False


def _fold_signed_literal(expr: nodes.Expr) -> nodes.Expr:
    """Collapse ``UnaryOp('-', Literal(n))`` into ``Literal(-n)``."""
    if (isinstance(expr, nodes.UnaryOp) and expr.op == "-"
            and isinstance(expr.operand, nodes.Literal)
            and isinstance(expr.operand.value, (int, float))
            and not isinstance(expr.operand.value, bool)):
        return nodes.Literal(-expr.operand.value)
    return expr


def _derive_name(item: nodes.SelectItem, position: int) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, nodes.ColumnRef):
        return expr.name
    if isinstance(expr, nodes.FuncCall):
        return str(expr)
    return f"col{position}"


class Binder:
    """Binds SELECT statements against a catalog and function registry."""

    def __init__(self, catalog: Catalog, functions):
        self.catalog = catalog
        self.functions = functions      # object with .lookup(name) -> UdfInfo | None

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def bind(self, stmt: nodes.Statement) -> logical.LogicalPlan:
        if isinstance(stmt, nodes.ExplainStmt):
            # Bind the wrapped statement for real: EXPLAIN over an invalid
            # query must fail at bind time, and plain EXPLAIN renders the
            # wrapped statement's actual (optimized, lowered) plan.
            inner = self.bind(stmt.statement)
            return logical.ExplainPlan(input=inner, analyze=stmt.analyze,
                                       sql=stmt.sql)
        if isinstance(stmt, nodes.CreateVectorIndexStmt):
            return self._bind_create_index(stmt)
        if isinstance(stmt, nodes.DropIndexStmt):
            return logical.DropIndex(stmt.name, stmt.if_exists)
        if isinstance(stmt, nodes.ShowIndexesStmt):
            return logical.ShowIndexes()
        return self._bind_select(stmt)

    def _bind_create_index(self, stmt: nodes.CreateVectorIndexStmt) -> logical.LogicalPlan:
        if stmt.table not in self.catalog:
            raise BindError(
                f"cannot index unknown table {stmt.table!r}; "
                f"registered: {self.catalog.names()}"
            )
        table = self.catalog.get(stmt.table)
        if not table.has_column(stmt.column):
            raise BindError(
                f"table {stmt.table!r} has no column {stmt.column!r}; "
                f"columns: {table.column_names}"
            )
        options = dict(stmt.options)
        cells = options.pop("cells", 16)
        nprobe = options.pop("nprobe", None)
        seed = options.pop("seed", 0)
        if options:
            raise BindError(
                f"unknown index options {sorted(options)}; "
                f"valid: ['cells', 'nprobe', 'seed']"
            )
        for key, value in (("cells", cells), ("nprobe", nprobe), ("seed", seed)):
            if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
                raise BindError(f"index option {key!r} must be an integer, got {value!r}")
        if cells < 1 or (nprobe is not None and nprobe < 1):
            raise BindError("index options cells/nprobe must be >= 1")
        return logical.CreateIndex(stmt.name, stmt.table, stmt.column,
                                   cells=cells, nprobe=nprobe, seed=seed)

    def _bind_select(self, stmt: nodes.SelectStmt) -> logical.LogicalPlan:
        if stmt.from_clause is None:
            raise BindError("queries without a FROM clause are not supported")
        plan, scope = self._bind_from(stmt.from_clause)

        if stmt.where is not None:
            predicate = self._bind_expr(stmt.where, scope, allow_agg=False)
            if predicate.data_type.kind != "bool":
                raise BindError(f"WHERE predicate has type {predicate.data_type}, expected bool")
            plan = logical.Filter(plan, predicate)

        has_aggs = bool(stmt.group_by) or any(_has_aggregate(i.expr) for i in stmt.items) \
            or (stmt.having is not None and _has_aggregate(stmt.having))

        # Listing 8 pattern: the single projection item is a TVF call.
        if not has_aggs and len(stmt.items) == 1 and isinstance(stmt.items[0].expr, nodes.FuncCall):
            udf = self.functions.lookup(stmt.items[0].expr.name)
            if udf is not None and udf.is_table_valued:
                plan = self._bind_tvf_projection(stmt.items[0].expr, udf, plan, scope)
                return self._finish_simple(stmt, plan, projected=True)

        if has_aggs:
            return self._bind_aggregate_query(stmt, plan, scope)
        return self._bind_simple_query(stmt, plan, scope)

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _bind_from(self, table_expr: nodes.TableExpr) -> Tuple[logical.LogicalPlan, Scope]:
        if isinstance(table_expr, nodes.TableRef):
            table = self.catalog.get(table_expr.name)
            schema = [(name, typ) for name, typ in table.schema.items()]
            plan = logical.Scan(table_expr.name, schema)
            qualifier = table_expr.alias or table_expr.name
            return plan, Scope.from_schema(schema, qualifier)
        if isinstance(table_expr, nodes.TableFunction):
            return self._bind_from_tvf(table_expr)
        if isinstance(table_expr, nodes.SubqueryRef):
            plan = self.bind(table_expr.query)
            return plan, Scope.from_schema(plan.schema, table_expr.alias)
        if isinstance(table_expr, nodes.Join):
            return self._bind_join(table_expr)
        raise BindError(f"unsupported FROM clause element {type(table_expr).__name__}")

    def _bind_from_tvf(self, tvf: nodes.TableFunction) -> Tuple[logical.LogicalPlan, Scope]:
        udf = self.functions.lookup(tvf.name)
        if udf is None:
            raise BindError(f"unknown table function {tvf.name!r}")
        input_plan = None
        table_arg_position = None
        for pos, arg in enumerate(tvf.args):
            if isinstance(arg, nodes.ColumnRef) and arg.table is None and arg.name in self.catalog:
                if input_plan is not None:
                    raise BindError(
                        f"table function {tvf.name!r} accepts a single table argument"
                    )
                table = self.catalog.get(arg.name)
                schema = [(name, typ) for name, typ in table.schema.items()]
                input_plan = logical.Scan(arg.name, schema)
                table_arg_position = pos
            elif not isinstance(arg, nodes.Literal):
                raise BindError(
                    f"table function arguments must be table names or literals, got {arg}"
                )
        if input_plan is None:
            raise BindError(f"table function {tvf.name!r} needs a table argument")
        # The table argument expands to every column of its table, in order;
        # literal arguments keep their call positions.
        arg_exprs: List[b.BoundExpr] = []
        for pos, arg in enumerate(tvf.args):
            if pos == table_arg_position:
                arg_exprs.extend(
                    b.BColumn(i, name, typ)
                    for i, (name, typ) in enumerate(input_plan.schema)
                )
            else:
                arg_exprs.append(b.BLiteral(arg.value, _literal_type(arg.value)))
        schema = list(udf.output_schema)
        plan = logical.TVFScan(input_plan, udf, arg_exprs, schema)
        return plan, Scope.from_schema(schema, tvf.alias or tvf.name)

    def _bind_tvf_projection(self, call: nodes.FuncCall, udf, plan: logical.LogicalPlan,
                             scope: Scope) -> logical.LogicalPlan:
        arg_exprs = [self._bind_expr(a, scope, allow_agg=False) for a in call.args]
        return logical.TVFScan(plan, udf, arg_exprs, list(udf.output_schema))

    def _bind_join(self, join: nodes.Join) -> Tuple[logical.LogicalPlan, Scope]:
        left_plan, left_scope = self._bind_from(join.left)
        right_plan, right_scope = self._bind_from(join.right)
        # Right-side columns sit after the left schema in the combined table.
        offset = len(left_scope.entries)
        combined = left_scope.merged_with(right_scope)
        left_keys: List[b.BoundExpr] = []
        right_keys: List[b.BoundExpr] = []
        residual: Optional[b.BoundExpr] = None
        if join.condition is not None:
            conjuncts = _split_conjuncts(join.condition)
            leftovers = []
            for conj in conjuncts:
                pair = self._try_equi_key(conj, left_scope, right_scope, offset)
                if pair is not None:
                    left_keys.append(pair[0])
                    right_keys.append(pair[1])
                else:
                    leftovers.append(conj)
            for conj in leftovers:
                pred = self._bind_expr(conj, combined, allow_agg=False)
                residual = pred if residual is None else b.BBinary("AND", residual, pred, dt.BOOL)
        elif join.kind != "CROSS":
            raise BindError("non-cross joins require an ON condition")
        if join.kind in ("INNER", "LEFT", "RIGHT") and not left_keys and residual is None:
            raise BindError("join condition did not produce any usable predicate")
        schema = combined.schema
        plan = logical.JoinPlan(left_plan, right_plan, join.kind, left_keys, right_keys,
                                residual, schema)
        return plan, combined

    def _try_equi_key(self, expr: nodes.Expr, left_scope: Scope, right_scope: Scope,
                      offset: int):
        """Recognise ``left_col = right_col`` conjuncts (either orientation)."""
        if not (isinstance(expr, nodes.BinaryOp) and expr.op == "="):
            return None
        sides = []
        for operand in (expr.left, expr.right):
            if not isinstance(operand, nodes.ColumnRef):
                return None
            sides.append(operand)
        for first, second in ((sides[0], sides[1]), (sides[1], sides[0])):
            try:
                li, lname, ltype = left_scope.resolve(first.name, first.table)
            except BindError:
                continue
            try:
                ri, rname, rtype = right_scope.resolve(second.name, second.table)
            except BindError:
                continue
            return (b.BColumn(li, lname, ltype), b.BColumn(ri, rname, rtype))
        return None

    # ------------------------------------------------------------------
    # Non-aggregate SELECT
    # ------------------------------------------------------------------
    def _expand_items(self, stmt: nodes.SelectStmt, scope: Scope) -> List[nodes.SelectItem]:
        items: List[nodes.SelectItem] = []
        for item in stmt.items:
            if isinstance(item.expr, nodes.Star):
                for qualifier, name, _ in scope.entries:
                    if item.expr.table and (qualifier or "").lower() != item.expr.table.lower():
                        continue
                    items.append(nodes.SelectItem(nodes.ColumnRef(name, qualifier), None))
            else:
                items.append(item)
        return items

    def _bind_simple_query(self, stmt: nodes.SelectStmt, plan: logical.LogicalPlan,
                           scope: Scope) -> logical.LogicalPlan:
        items = self._expand_items(stmt, scope)
        exprs = [self._bind_expr(i.expr, scope, allow_agg=False) for i in items]
        names = [_derive_name(i, pos) for pos, i in enumerate(items)]
        out_schema = [(name, expr.data_type) for name, expr in zip(names, exprs)]

        # Bind ORDER BY: prefer output aliases, fall back to hidden columns.
        sort_keys: List[Tuple[int, bool]] = []
        hidden = 0
        for order in stmt.order_by:
            index = _find_output_index(order.expr, items, names)
            if index is None:
                bound_expr = self._bind_expr(order.expr, scope, allow_agg=False)
                exprs.append(bound_expr)
                names.append(f"__sort{hidden}")
                out_schema.append((f"__sort{hidden}", bound_expr.data_type))
                index = len(exprs) - 1
                hidden += 1
            sort_keys.append((index, order.ascending))

        plan = logical.Project(plan, exprs, out_schema)
        if stmt.distinct:
            plan = logical.Distinct(plan)
        if sort_keys:
            keys = [
                (b.BColumn(i, out_schema[i][0], out_schema[i][1]), asc)
                for i, asc in sort_keys
            ]
            plan = logical.Sort(plan, keys)
        if stmt.limit is not None:
            plan = logical.Limit(plan, stmt.limit, stmt.offset or 0)
        if hidden:
            visible = len(out_schema) - hidden
            final_exprs = [
                b.BColumn(i, out_schema[i][0], out_schema[i][1]) for i in range(visible)
            ]
            plan = logical.Project(plan, final_exprs, out_schema[:visible])
        return plan

    def _finish_simple(self, stmt: nodes.SelectStmt, plan: logical.LogicalPlan,
                       projected: bool) -> logical.LogicalPlan:
        """Apply trailing clauses for the TVF-projection form."""
        if stmt.distinct:
            plan = logical.Distinct(plan)
        if stmt.order_by:
            scope = Scope.from_schema(plan.schema)
            keys = []
            for order in stmt.order_by:
                expr = self._bind_expr(order.expr, scope, allow_agg=False)
                keys.append((expr, order.ascending))
            plan = logical.Sort(plan, keys)
        if stmt.limit is not None:
            plan = logical.Limit(plan, stmt.limit, stmt.offset or 0)
        return plan

    # ------------------------------------------------------------------
    # Aggregate SELECT
    # ------------------------------------------------------------------
    def _bind_aggregate_query(self, stmt: nodes.SelectStmt, plan: logical.LogicalPlan,
                              scope: Scope) -> logical.LogicalPlan:
        group_exprs = [self._bind_expr(e, scope, allow_agg=False) for e in stmt.group_by]
        group_keys = [_expr_key(e) for e in stmt.group_by]
        group_names = []
        for ast_expr, bexpr in zip(stmt.group_by, group_exprs):
            if isinstance(ast_expr, nodes.ColumnRef):
                group_names.append(ast_expr.name)
            else:
                group_names.append(str(ast_expr))

        aggs: List[b.AggSpec] = []

        def post_bind(expr: nodes.Expr) -> b.BoundExpr:
            return self._bind_post_agg(expr, scope, group_keys, group_exprs,
                                       group_names, aggs)

        items = self._expand_items(stmt, scope)
        bound_items = [post_bind(i.expr) for i in items]
        names = [_derive_name(i, pos) for pos, i in enumerate(items)]

        having_pred = post_bind(stmt.having) if stmt.having is not None else None

        sort_specs: List[Tuple[object, bool]] = []
        for order in stmt.order_by:
            index = _find_output_index(order.expr, items, names)
            if index is not None:
                sort_specs.append((index, order.ascending))
            else:
                sort_specs.append((post_bind(order.expr), order.ascending))

        agg_schema = (
            [(name, expr.data_type) for name, expr in zip(group_names, group_exprs)]
            + [(spec.name, spec.data_type) for spec in aggs]
        )
        plan = logical.Aggregate(plan, group_exprs, group_names, aggs, agg_schema)

        if having_pred is not None:
            plan = logical.Filter(plan, having_pred)

        # Post-aggregation projection (select items over agg slots).
        out_schema = [(name, expr.data_type) for name, expr in zip(names, bound_items)]
        # Identity also requires output *names* to match (aliases force a
        # projection so `COUNT(*) AS c` is visible to parent queries).
        needs_project = not (
            _is_identity_projection(bound_items, len(agg_schema))
            and names == [n for n, _ in agg_schema]
        )
        hidden = 0
        final_keys: List[Tuple[b.BoundExpr, bool]] = []
        proj_exprs = list(bound_items)
        proj_schema = list(out_schema)
        for spec, ascending in sort_specs:
            if isinstance(spec, int):
                final_keys.append((spec, ascending))
            else:
                proj_exprs.append(spec)
                proj_schema.append((f"__sort{hidden}", spec.data_type))
                final_keys.append((len(proj_exprs) - 1, ascending))
                hidden += 1
                needs_project = True
        if needs_project or hidden:
            plan = logical.Project(plan, proj_exprs, proj_schema)
        if final_keys:
            keys = [
                (b.BColumn(i, proj_schema[i][0], proj_schema[i][1]), asc)
                for i, asc in final_keys
            ]
            plan = logical.Sort(plan, keys)
        if stmt.limit is not None:
            plan = logical.Limit(plan, stmt.limit, stmt.offset or 0)
        if hidden:
            visible = len(proj_schema) - hidden
            plan = logical.Project(
                plan,
                [b.BColumn(i, proj_schema[i][0], proj_schema[i][1]) for i in range(visible)],
                proj_schema[:visible],
            )
        if stmt.distinct:
            plan = logical.Distinct(plan)
        return plan

    def _bind_post_agg(self, expr: nodes.Expr, scope: Scope, group_keys: List[str],
                       group_exprs: List[b.BoundExpr], group_names: List[str],
                       aggs: List[b.AggSpec]) -> b.BoundExpr:
        """Bind an expression evaluated over aggregate output slots."""
        key = _expr_key(expr)
        if key in group_keys:
            slot = group_keys.index(key)
            return b.BColumn(slot, group_names[slot], group_exprs[slot].data_type)
        if isinstance(expr, nodes.FuncCall) and expr.name.upper() in b.AGGREGATE_FUNCTIONS:
            spec = self._bind_aggregate_call(expr, scope)
            # Reuse identical aggregate slots.
            for i, existing in enumerate(aggs):
                if str(existing) == str(spec) and existing.distinct == spec.distinct:
                    return b.BColumn(len(group_keys) + i, existing.name, existing.data_type)
            aggs.append(spec)
            slot = len(group_keys) + len(aggs) - 1
            return b.BColumn(slot, spec.name, spec.data_type)
        if isinstance(expr, nodes.Literal):
            return b.BLiteral(expr.value, _literal_type(expr.value))
        if isinstance(expr, nodes.BinaryOp):
            left = self._bind_post_agg(expr.left, scope, group_keys, group_exprs,
                                       group_names, aggs)
            right = self._bind_post_agg(expr.right, scope, group_keys, group_exprs,
                                        group_names, aggs)
            return b.BBinary(expr.op, left, right, _promote(left.data_type, right.data_type, expr.op))
        if isinstance(expr, nodes.UnaryOp):
            operand = self._bind_post_agg(expr.operand, scope, group_keys, group_exprs,
                                          group_names, aggs)
            out_type = dt.BOOL if expr.op == "NOT" else operand.data_type
            return b.BUnary(expr.op, operand, out_type)
        if isinstance(expr, nodes.ColumnRef):
            raise BindError(
                f"column {expr.name!r} must appear in GROUP BY or inside an aggregate"
            )
        raise BindError(f"unsupported expression in aggregate context: {expr}")

    def _bind_aggregate_call(self, call: nodes.FuncCall, scope: Scope) -> b.AggSpec:
        func = call.name.upper()
        if func == "COUNT" and len(call.args) == 1 and isinstance(call.args[0], nodes.Star):
            return b.AggSpec("COUNT", None, call.distinct, "COUNT(*)", dt.INT)
        if len(call.args) != 1:
            raise BindError(f"{func} takes exactly one argument")
        arg = self._bind_expr(call.args[0], scope, allow_agg=False)
        if func == "COUNT":
            out_type = dt.INT
        elif func == "AVG":
            out_type = dt.FLOAT
        elif func == "SUM":
            out_type = dt.INT if arg.data_type.kind == "int" else dt.FLOAT
        else:  # MIN / MAX
            out_type = arg.data_type
        name = str(nodes.FuncCall(func, call.args, call.distinct))
        return b.AggSpec(func, arg, call.distinct, name, out_type)

    # ------------------------------------------------------------------
    # Expression binding
    # ------------------------------------------------------------------
    def _bind_expr(self, expr: nodes.Expr, scope: Scope, allow_agg: bool) -> b.BoundExpr:
        if isinstance(expr, nodes.Literal):
            return b.BLiteral(expr.value, _literal_type(expr.value))
        if isinstance(expr, nodes.ColumnRef):
            index, name, typ = scope.resolve(expr.name, expr.table)
            return b.BColumn(index, name, typ)
        if isinstance(expr, nodes.Star):
            raise BindError("'*' is only valid in COUNT(*) or as a projection")
        if isinstance(expr, nodes.BinaryOp):
            left = self._bind_expr(expr.left, scope, allow_agg)
            right = self._bind_expr(expr.right, scope, allow_agg)
            return b.BBinary(expr.op, left, right,
                             _promote(left.data_type, right.data_type, expr.op))
        if isinstance(expr, nodes.UnaryOp):
            operand = self._bind_expr(expr.operand, scope, allow_agg)
            if expr.op == "NOT":
                if operand.data_type.kind != "bool":
                    raise BindError(f"NOT requires a boolean operand, got {operand.data_type}")
                return b.BUnary("NOT", operand, dt.BOOL)
            return b.BUnary("-", operand, operand.data_type)
        if isinstance(expr, nodes.FuncCall):
            return self._bind_call(expr, scope, allow_agg)
        if isinstance(expr, nodes.Between):
            operand = self._bind_expr(expr.operand, scope, allow_agg)
            low = self._bind_expr(expr.low, scope, allow_agg)
            high = self._bind_expr(expr.high, scope, allow_agg)
            return b.BBetween(operand, low, high, expr.negated)
        if isinstance(expr, nodes.InList):
            operand = self._bind_expr(expr.operand, scope, allow_agg)
            values = []
            for value in expr.values:
                # `IN (-5, ...)` parses the sign as a unary minus; fold it
                # back into the literal (differential-harness finding: the
                # binder rejected every negative IN-list member).
                value = _fold_signed_literal(value)
                if not isinstance(value, nodes.Literal):
                    raise BindError("IN lists must contain literals")
                values.append(value.value)
            return b.BIn(operand, values, expr.negated)
        if isinstance(expr, nodes.Like):
            operand = self._bind_expr(expr.operand, scope, allow_agg)
            if operand.data_type.kind != "string":
                raise BindError("LIKE requires a string operand")
            return b.BLike(operand, expr.pattern, expr.negated)
        if isinstance(expr, nodes.IsNull):
            operand = self._bind_expr(expr.operand, scope, allow_agg)
            return b.BIsNull(operand, expr.negated)
        if isinstance(expr, nodes.Case):
            whens = []
            result_type = None
            for cond, value in expr.whens:
                bound_cond = self._bind_expr(cond, scope, allow_agg)
                bound_value = self._bind_expr(value, scope, allow_agg)
                if result_type is None:
                    result_type = bound_value.data_type
                whens.append((bound_cond, bound_value))
            else_ = self._bind_expr(expr.else_, scope, allow_agg) if expr.else_ else None
            return b.BCase(whens, else_, result_type)
        if isinstance(expr, nodes.Cast):
            operand = self._bind_expr(expr.operand, scope, allow_agg)
            return b.BCast(operand, dt.parse_sql_type(expr.type_name))
        raise BindError(f"unsupported expression {type(expr).__name__}")

    def _bind_call(self, call: nodes.FuncCall, scope: Scope, allow_agg: bool) -> b.BoundExpr:
        upper = call.name.upper()
        if upper in b.AGGREGATE_FUNCTIONS:
            raise BindError(
                f"aggregate {upper} is not allowed here (only in SELECT/HAVING of a "
                f"GROUP BY query)"
            )
        if upper in BUILTINS:
            min_arity, max_arity, type_fn = BUILTINS[upper]
            args = [self._bind_expr(a, scope, allow_agg) for a in call.args]
            if len(args) < min_arity or (max_arity is not None and len(args) > max_arity):
                raise BindError(f"{upper} expects {min_arity}"
                                + (f"..{max_arity}" if max_arity != min_arity else "")
                                + f" arguments, got {len(args)}")
            return b.BBuiltin(upper, args, type_fn(args))
        udf = self.functions.lookup(call.name)
        if udf is None:
            raise BindError(f"unknown function {call.name!r}")
        if udf.is_table_valued:
            raise BindError(
                f"table function {call.name!r} cannot be used as a scalar expression"
            )
        args = [self._bind_expr(a, scope, allow_agg) for a in call.args]
        return b.BCall(udf, args, udf.output_schema[0][1])


def _split_conjuncts(expr: nodes.Expr) -> List[nodes.Expr]:
    if isinstance(expr, nodes.BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _find_output_index(expr: nodes.Expr, items: List[nodes.SelectItem],
                       names: List[str]) -> Optional[int]:
    """Match an ORDER BY expression against select aliases / item text."""
    if isinstance(expr, nodes.ColumnRef) and expr.table is None:
        for i, name in enumerate(names):
            if name.lower() == expr.name.lower():
                return i
    key = _expr_key(expr)
    for i, item in enumerate(items):
        if _expr_key(item.expr) == key:
            return i
    return None


def _is_identity_projection(exprs: List[b.BoundExpr], input_width: int) -> bool:
    if len(exprs) != input_width:
        return False
    for i, expr in enumerate(exprs):
        if not isinstance(expr, b.BColumn) or expr.index != i:
            return False
    return True
