"""Benchmark support: timers, tables, workload scaling."""

from repro.bench.harness import (
    Timer,
    bench_scale,
    print_table,
    report_paper_vs_measured,
    scaled,
    time_call,
)

__all__ = ["Timer", "bench_scale", "print_table", "report_paper_vs_measured",
           "scaled", "time_call"]
