"""Benchmark harness: timers, result tables, paper-vs-measured reporting."""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Sequence


def bench_scale() -> float:
    """Global effort multiplier for benchmark workloads.

    ``REPRO_BENCH_SCALE=1`` runs the documented default sizes;
    values > 1 scale dataset sizes / iteration counts toward the paper's
    (set e.g. 4 on a beefier machine).
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(int(round(value * bench_scale())), minimum)


_METRIC_LOCK = threading.Lock()


def record_metric(name: str, **values) -> None:
    """Record a benchmark's headline numbers for the CI perf trajectory.

    When ``REPRO_BENCH_JSON`` names a file, merge ``{name: values}`` into it
    (read-modify-write under a lock; concurrent benches in one process stay
    consistent). ``benchmarks/run_all.py`` sets the variable and aggregates
    every bench's metrics into ``BENCH_RESULTS.json``; without it this is a
    no-op, so ad-hoc bench runs are unaffected.
    """
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    with _METRIC_LOCK:
        data = {}
        if os.path.exists(path):
            try:
                with open(path) as handle:
                    data = json.load(handle)
            except (ValueError, OSError):
                data = {}
        data.setdefault(name, {}).update(values)
        with open(path, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)


def percentiles(samples: Sequence[float],
                points: Sequence[int] = (50, 95, 99)) -> Dict[str, float]:
    """Nearest-rank percentiles of a latency sample list.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (same unit as the
    samples). Empty input yields an empty dict, so callers can splat the
    result into :func:`record_metric` unconditionally.
    """
    if not samples:
        return {}
    ordered = sorted(samples)
    out: Dict[str, float] = {}
    for p in points:
        rank = max(int(round(p / 100.0 * len(ordered) + 0.5)) - 1, 0)
        out[f"p{p}"] = ordered[min(rank, len(ordered) - 1)]
    return out


def record_latency_metric(name: str, samples_seconds: Sequence[float],
                          **extra) -> None:
    """Record a bench's per-operation latency distribution (milliseconds).

    Emits count, mean and p50/p95/p99 under ``name`` in BENCH_RESULTS.json —
    the serving-latency shape ROADMAP item 3's SLO work tracks per commit.
    """
    if not samples_seconds:
        record_metric(name, **extra)
        return
    ms = [s * 1e3 for s in samples_seconds]
    pcts = {key: round(value, 3) for key, value in percentiles(ms).items()}
    record_metric(name, count=len(ms), mean_ms=round(sum(ms) / len(ms), 3),
                  **pcts, **extra)


class Timer:
    """Wall-clock stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self.start


def time_call(fn, *args, repeat: int = 1, **kwargs) -> float:
    """Best-of-N wall time of fn(*args, **kwargs) in seconds."""
    best = float("inf")
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]],
                floatfmt: str = "{:.4g}") -> str:
    """Render an aligned ASCII table (also returned as a string)."""
    rendered_rows = []
    for row in rows:
        rendered_rows.append([
            floatfmt.format(cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"\n== {title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    text = "\n".join(lines)
    print(text)
    return text


def report_paper_vs_measured(experiment: str, claims: List[Dict[str, object]]) -> str:
    """Print the per-experiment claim table used by EXPERIMENTS.md.

    Each claim dict: {"metric": ..., "paper": ..., "measured": ..., "holds": bool}
    """
    rows = [
        [c["metric"], c["paper"], c["measured"], "yes" if c["holds"] else "NO"]
        for c in claims
    ]
    return print_table(f"{experiment}: paper vs measured",
                       ["metric", "paper", "measured", "shape holds"], rows)
