"""Pure deep-learning baselines for the paper's comparisons.

* :func:`train_non_llp` — the Non-LLP dashed line of Fig 3-middle: a linear
  classifier trained with full instance-level labels.
* :func:`make_grid_regressor` — the monolithic CNN-Small / ResNet regressors
  of Fig 3-right that map a whole MNISTGrid image to the 20 grouped counts,
  learning classification *and* the group-by/count logic end to end.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.ml.models.cnn import CNNSmall
from repro.ml.models.linear import LinearClassifier
from repro.ml.models.resnet import ResNet8, ResNet18
from repro.ml.train import train_classifier
from repro.tcr.nn.module import Module


def train_non_llp(features: np.ndarray, labels: np.ndarray,
                  epochs: int = 30, lr: float = 1e-2, seed: int = 0
                  ) -> LinearClassifier:
    """Supervised baseline: same linear model, instance-level labels."""
    model = LinearClassifier(features.shape[1], num_classes=2)
    train_classifier(model, features, labels, epochs=epochs, lr=lr, seed=seed)
    return model


def make_grid_regressor(kind: Literal["cnn_small", "resnet8", "resnet18"],
                        out_dim: int = 20) -> Module:
    """Monolithic grid-to-counts regressor used in Fig 3-right."""
    if kind == "cnn_small":
        return CNNSmall(out_dim=out_dim)
    if kind == "resnet8":
        return ResNet8(num_outputs=out_dim)
    if kind == "resnet18":
        return ResNet18(num_outputs=out_dim)
    raise ValueError(f"unknown regressor kind {kind!r}")
