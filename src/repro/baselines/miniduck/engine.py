"""MiniDuck: a small embedded columnar SQL engine over plain numpy.

The DuckDB stand-in for the paper's Fig 3-left comparison: an embedded
analytical engine with fast scans over *pre-extracted relational data* — no
tensors, no encodings, no UDFs, no autograd. Its executor is deliberately
independent from the TDP engine (it interprets the AST directly), so the
comparison measures two genuinely different systems.

Supported surface: single-table SELECT with WHERE (comparisons, AND/OR/NOT,
IN, BETWEEN, LIKE), GROUP BY with COUNT/SUM/AVG/MIN/MAX, ORDER BY, LIMIT,
DISTINCT, arithmetic expressions and aliases.
"""

from __future__ import annotations

import re
from typing import Dict

import numpy as np

from repro.errors import BindError, SqlError
from repro.sql import nodes
from repro.sql.parser import parse
from repro.storage.frame import DataFrame


class MiniDuck:
    """``duckdb.connect()``-style facade: register frames, execute SQL."""

    def __init__(self):
        self._tables: Dict[str, Dict[str, np.ndarray]] = {}

    def register(self, name: str, frame: "DataFrame | Dict[str, np.ndarray]") -> None:
        if isinstance(frame, DataFrame):
            data = {col: frame[col] for col in frame.columns}
        else:
            data = {k: np.asarray(v) for k, v in frame.items()}
        self._tables[name.lower()] = data

    def execute(self, statement: str) -> DataFrame:
        ast = parse(statement)
        return _Executor(self._tables).run(ast)


class _Executor:
    def __init__(self, tables: Dict[str, Dict[str, np.ndarray]]):
        self.tables = tables

    # ------------------------------------------------------------------
    def run(self, stmt: nodes.SelectStmt) -> DataFrame:
        columns = self._resolve_from(stmt.from_clause)

        if stmt.where is not None:
            mask = np.asarray(self._eval(stmt.where, columns), dtype=bool)
            columns = {k: v[mask] for k, v in columns.items()}

        is_aggregate = stmt.group_by or any(_has_agg(i.expr) for i in stmt.items)
        if not is_aggregate and stmt.order_by:
            # Sort before projection so ORDER BY may reference input columns.
            columns = self._order_columns(columns, stmt)
        if is_aggregate:
            frame = self._aggregate(stmt, columns)
        else:
            frame = self._project(stmt, columns)

        if stmt.distinct:
            frame = _distinct(frame)
        if is_aggregate and stmt.order_by:
            frame = _order(frame, stmt, self)
        if stmt.limit is not None:
            offset = stmt.offset or 0
            frame = DataFrame({k: frame[k][offset:offset + stmt.limit]
                               for k in frame.columns})
        return frame

    def _order_columns(self, columns: Dict[str, np.ndarray],
                       stmt: nodes.SelectStmt) -> Dict[str, np.ndarray]:
        # ORDER BY may reference projection aliases as well as input columns
        # (differential-harness finding: `SELECT a+1 AS v ... ORDER BY v`
        # was rejected); evaluate aliased items into the sort environment.
        env = dict(columns)
        for item in stmt.items:
            if item.alias and item.alias not in env \
                    and not isinstance(item.expr, nodes.Star):
                value = self._eval(item.expr, columns)
                if np.isscalar(value):
                    value = np.full(_row_count(columns), value)
                env[item.alias] = np.asarray(value)
        keys = []
        for item in stmt.order_by:
            values = np.asarray(self._eval(item.expr, env))
            array = _to_sortable(values)
            keys.append(array if item.ascending else -array)
        order = np.lexsort(tuple(reversed(keys)))
        return {name: values[order] for name, values in columns.items()}

    def _resolve_from(self, from_clause) -> Dict[str, np.ndarray]:
        if isinstance(from_clause, nodes.TableRef):
            table = self.tables.get(from_clause.name.lower())
            if table is None:
                raise BindError(f"miniduck: unknown table {from_clause.name!r}")
            return dict(table)
        if isinstance(from_clause, nodes.SubqueryRef):
            frame = self.run(from_clause.query)
            return {col: frame[col] for col in frame.columns}
        raise SqlError("miniduck supports single tables and subqueries in FROM")

    # ------------------------------------------------------------------
    def _project(self, stmt: nodes.SelectStmt,
                 columns: Dict[str, np.ndarray]) -> DataFrame:
        out = DataFrame()
        n = _row_count(columns)
        for i, item in enumerate(stmt.items):
            if isinstance(item.expr, nodes.Star):
                for name, values in columns.items():
                    out[name] = values
                continue
            name = item.alias or _item_name(item.expr, i)
            value = self._eval(item.expr, columns)
            if np.isscalar(value):
                value = np.full(n, value)
            out[name] = value
        return out

    def _aggregate(self, stmt: nodes.SelectStmt,
                   columns: Dict[str, np.ndarray]) -> DataFrame:
        group_arrays = [np.asarray(self._eval(e, columns)) for e in stmt.group_by]
        n = _row_count(columns)
        if group_arrays:
            stacked = np.stack([_to_sortable(a) for a in group_arrays], axis=1)
            uniques, index, inverse = np.unique(stacked, axis=0, return_index=True,
                                                return_inverse=True)
            inverse = inverse.reshape(-1)
            num_groups = uniques.shape[0]
        else:
            index = np.zeros(1, dtype=int)
            inverse = np.zeros(n, dtype=int)
            num_groups = 1 if n else 1

        out = DataFrame()
        for i, item in enumerate(stmt.items):
            name = item.alias or _item_name(item.expr, i)
            out[name] = self._eval_agg_item(item.expr, stmt, columns, group_arrays,
                                            index, inverse, num_groups)
        if stmt.having is not None:
            mask = np.asarray(self._eval_agg_item(
                stmt.having, stmt, columns, group_arrays, index, inverse, num_groups
            ), dtype=bool)
            out = DataFrame({k: out[k][mask] for k in out.columns})
        return out

    def _eval_agg_item(self, expr, stmt, columns, group_arrays, index, inverse,
                       num_groups):
        group_keys = [str(g).lower() for g in stmt.group_by]
        key = str(expr).lower()
        if key in group_keys:
            return group_arrays[group_keys.index(key)][index]
        if isinstance(expr, nodes.FuncCall) and expr.name.upper() in (
                "COUNT", "SUM", "AVG", "MIN", "MAX"):
            return self._compute_agg(expr, columns, inverse, num_groups)
        if isinstance(expr, nodes.BinaryOp):
            left = self._eval_agg_item(expr.left, stmt, columns, group_arrays,
                                       index, inverse, num_groups)
            right = self._eval_agg_item(expr.right, stmt, columns, group_arrays,
                                        index, inverse, num_groups)
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, nodes.Literal):
            return np.full(num_groups, expr.value)
        raise SqlError(f"miniduck: unsupported aggregate-context expression {expr}")

    def _compute_agg(self, call: nodes.FuncCall, columns, inverse, num_groups):
        func = call.name.upper()
        if func == "COUNT" and isinstance(call.args[0], nodes.Star):
            return np.bincount(inverse, minlength=num_groups).astype(np.int64)
        if func == "COUNT":
            if not getattr(call, "distinct", False):
                return np.bincount(inverse, minlength=num_groups).astype(np.int64)
            # COUNT(DISTINCT x): unique values per group (differential-
            # harness finding: the DISTINCT qualifier was silently ignored).
            # NaN-aware like the TDP engine: all NULLs count as one value.
            raw = np.asarray(self._eval(call.args[0], columns))
            codes = _to_sortable(raw)
            if len(codes) == 0:
                return np.zeros(num_groups, dtype=np.int64)
            order = np.lexsort((codes, inverse))
            g, v = inverse[order], codes[order]
            new_run = np.ones(len(v), dtype=np.int64)
            same = (g[1:] == g[:-1]) & (
                (v[1:] == v[:-1]) | (np.isnan(v[1:]) & np.isnan(v[:-1])))
            new_run[1:] = ~same
            return np.bincount(g, weights=new_run,
                               minlength=num_groups).astype(np.int64)
        values = np.asarray(self._eval(call.args[0], columns), dtype=np.float64)
        sums = np.zeros(num_groups)
        if func in ("SUM", "AVG"):
            np.add.at(sums, inverse, values)
            if func == "SUM":
                return sums
            counts = np.bincount(inverse, minlength=num_groups)
            return sums / np.maximum(counts, 1)
        counts = np.bincount(inverse, minlength=num_groups)
        if func == "MIN":
            out = np.full(num_groups, np.inf)
            np.minimum.at(out, inverse, values)
        else:
            out = np.full(num_groups, -np.inf)
            np.maximum.at(out, inverse, values)
        # MIN/MAX over zero rows is NULL (NaN), not the accumulator identity
        # (differential-harness finding: an empty global MAX returned -inf).
        out[counts == 0] = np.nan
        return out

    # ------------------------------------------------------------------
    def _eval(self, expr: nodes.Expr, columns: Dict[str, np.ndarray]):
        if isinstance(expr, nodes.Literal):
            return expr.value
        if isinstance(expr, nodes.ColumnRef):
            values = columns.get(expr.name)
            if values is None:
                for name, array in columns.items():
                    if name.lower() == expr.name.lower():
                        return array
                raise BindError(f"miniduck: unknown column {expr.name!r}")
            return values
        if isinstance(expr, nodes.BinaryOp):
            left = self._eval(expr.left, columns)
            right = self._eval(expr.right, columns)
            return _apply_binop(expr.op, left, right)
        if isinstance(expr, nodes.UnaryOp):
            value = self._eval(expr.operand, columns)
            if expr.op == "NOT":
                return ~np.asarray(value, dtype=bool)
            return -np.asarray(value)
        if isinstance(expr, nodes.Between):
            value = np.asarray(self._eval(expr.operand, columns))
            low = self._eval(expr.low, columns)
            high = self._eval(expr.high, columns)
            mask = (value >= low) & (value <= high)
            return ~mask if expr.negated else mask
        if isinstance(expr, nodes.InList):
            value = np.asarray(self._eval(expr.operand, columns))
            literals = [self._in_literal(v) for v in expr.values]
            mask = np.isin(value, literals)
            return ~mask if expr.negated else mask
        if isinstance(expr, nodes.Like):
            value = np.asarray(self._eval(expr.operand, columns)).astype(str)
            pattern = re.compile(
                "".join(".*" if c == "%" else "." if c == "_" else re.escape(c)
                        for c in expr.pattern)
            )
            mask = np.fromiter((pattern.fullmatch(v) is not None for v in value),
                               dtype=bool, count=len(value))
            return ~mask if expr.negated else mask
        if isinstance(expr, nodes.FuncCall):
            raise SqlError(
                f"miniduck has no function {expr.name!r} (UDFs are a TDP feature)"
            )
        raise SqlError(f"miniduck: unsupported expression {type(expr).__name__}")

    @staticmethod
    def _in_literal(expr: nodes.Expr):
        """IN-list member → python value (negative numbers parse as a unary
        minus over a literal — fold it, mirroring the TDP binder)."""
        if (isinstance(expr, nodes.UnaryOp) and expr.op == "-"
                and isinstance(expr.operand, nodes.Literal)
                and isinstance(expr.operand.value, (int, float))):
            return -expr.operand.value
        if isinstance(expr, nodes.Literal):
            return expr.value
        raise SqlError("miniduck: IN lists must contain literals")


def _apply_binop(op: str, left, right):
    if op == "AND":
        return np.asarray(left, dtype=bool) & np.asarray(right, dtype=bool)
    if op == "OR":
        return np.asarray(left, dtype=bool) | np.asarray(right, dtype=bool)
    table = {
        "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.true_divide,
        "%": np.remainder, "=": np.equal, "!=": np.not_equal, "<": np.less,
        "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal,
    }
    if op not in table:
        raise SqlError(f"miniduck: unsupported operator {op}")
    left_arr = np.asarray(left)
    right_arr = np.asarray(right)
    if left_arr.dtype == object or right_arr.dtype == object:
        left_arr = left_arr.astype(str)
        right_arr = right_arr.astype(str)
    return table[op](left_arr, right_arr)


def _has_agg(expr: nodes.Expr) -> bool:
    if isinstance(expr, nodes.FuncCall):
        return expr.name.upper() in ("COUNT", "SUM", "AVG", "MIN", "MAX")
    if isinstance(expr, nodes.BinaryOp):
        return _has_agg(expr.left) or _has_agg(expr.right)
    if isinstance(expr, nodes.UnaryOp):
        return _has_agg(expr.operand)
    return False


def _item_name(expr: nodes.Expr, position: int) -> str:
    if isinstance(expr, nodes.ColumnRef):
        return expr.name
    if isinstance(expr, nodes.FuncCall):
        return str(expr)
    return f"col{position}"


def _row_count(columns: Dict[str, np.ndarray]) -> int:
    for values in columns.values():
        return len(values)
    return 0


def _to_sortable(array: np.ndarray) -> np.ndarray:
    if array.dtype == object or array.dtype.kind in ("U", "S"):
        _, inverse = np.unique(array.astype(str), return_inverse=True)
        return inverse.astype(np.float64)
    return array.astype(np.float64)


def _distinct(frame: DataFrame) -> DataFrame:
    if len(frame) == 0:
        return frame
    stacked = np.stack([_to_sortable(frame[c]) for c in frame.columns], axis=1)
    _, first = np.unique(stacked, axis=0, return_index=True)
    keep = np.sort(first)
    return DataFrame({c: frame[c][keep] for c in frame.columns})


def _order(frame: DataFrame, stmt: nodes.SelectStmt, executor: _Executor) -> DataFrame:
    columns = {c: frame[c] for c in frame.columns}
    keys = []
    for item in stmt.order_by:
        try:
            values = executor._eval(item.expr, columns)
        except (BindError, SqlError):
            raise SqlError(f"miniduck: ORDER BY must reference output columns")
        array = _to_sortable(np.asarray(values))
        keys.append(array if item.ascending else -array)
    order = np.lexsort(tuple(reversed(keys)))
    return DataFrame({c: frame[c][order] for c in frame.columns})
