"""MiniDuck — the embedded analytical engine used as DuckDB's stand-in."""

from repro.baselines.miniduck.engine import MiniDuck

__all__ = ["MiniDuck"]
