"""Baselines the paper compares TDP against."""

from repro.baselines.miniduck import MiniDuck
from repro.baselines.regression import make_grid_regressor, train_non_llp

__all__ = ["MiniDuck", "make_grid_regressor", "train_non_llp"]
