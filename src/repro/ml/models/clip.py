"""TinyCLIP: a joint image/text embedding model (the CLIP substitute).

Paper §5.1 embeds ``openai/clip-vit-base-patch32`` in a UDF. Offline, we
train a small two-tower model contrastively (InfoNCE) on the synthetic
attachment dataset's (image, caption) pairs, entirely on our TCR:

* image tower — block-mean downsample to 25x25 RGB, two conv layers, linear
  projection, L2-normalised;
* text tower — hashed bag-of-words over lowercased tokens, one linear layer,
  L2-normalised.

After training, similarity scores are affinely calibrated on the training
pairs so that matching pairs land near 0.95 and the hardest negatives near
0.5, mirroring the paper's ``logits_per_image / 30`` scaling that makes the
0.80 threshold in Fig 2's filter queries meaningful.

Weights are cached under ``REPRO_CACHE_DIR`` (default ``<repo>/.cache``), so
the first call trains (~seconds) and later calls load.
"""

from __future__ import annotations

import os
import zlib
from typing import List, Optional, Sequence

import numpy as np

from repro.tcr import nn, ops, optim
from repro.tcr.autograd import no_grad
from repro.tcr.nn import functional as F
from repro.tcr.random import fork_generator
from repro.tcr.serialization import load_state, save_state
from repro.tcr.tensor import Tensor

EMBED_DIM = 32
VOCAB_BUCKETS = 128
_DOWN_H, _DOWN_W = 25, 25


def hash_tokens(text: str) -> List[int]:
    """Stable token→bucket hashing (crc32, no process-salt like ``hash``)."""
    tokens = [t for t in "".join(
        c.lower() if c.isalnum() else " " for c in text
    ).split() if t]
    return [zlib.crc32(t.encode()) % VOCAB_BUCKETS for t in tokens]


def text_features(texts: Sequence[str]) -> np.ndarray:
    """Bag-of-hashed-words feature matrix, (n, VOCAB_BUCKETS)."""
    out = np.zeros((len(texts), VOCAB_BUCKETS), dtype=np.float32)
    for i, text in enumerate(texts):
        for bucket in hash_tokens(text):
            out[i, bucket] += 1.0
    norms = np.linalg.norm(out, axis=1, keepdims=True)
    return out / np.maximum(norms, 1e-6)


def preprocess_images(images: Tensor) -> Tensor:
    """Block-mean downsample (n, 3, 200, 300) → (n, 3, 25, 25)."""
    n, c, h, w = images.shape
    bh, bw = h // _DOWN_H, w // _DOWN_W
    x = ops.reshape(images, (n, c, _DOWN_H, bh, _DOWN_W, bw))
    x = ops.mean(x, dim=(3, 5))
    return x


class ImageTower(nn.Module):
    def __init__(self, embed_dim: int = EMBED_DIM):
        super().__init__()
        self.conv1 = nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1)   # 25→13
        self.conv2 = nn.Conv2d(8, 16, kernel_size=3, stride=2, padding=1)  # 13→7
        self.proj = nn.Linear(16 * 7 * 7, embed_dim)

    def forward(self, x: Tensor) -> Tensor:
        x = ops.relu(self.conv1(x))
        x = ops.relu(self.conv2(x))
        x = ops.flatten(x, 1)
        return F.normalize(self.proj(x))


class TextTower(nn.Module):
    def __init__(self, embed_dim: int = EMBED_DIM):
        super().__init__()
        self.proj = nn.Linear(VOCAB_BUCKETS, embed_dim)

    def forward(self, bow: Tensor) -> Tensor:
        return F.normalize(self.proj(bow))


class TinyCLIP(nn.Module):
    """Two-tower contrastive model with learned temperature and calibration."""

    def __init__(self, embed_dim: int = EMBED_DIM):
        super().__init__()
        self.image_tower = ImageTower(embed_dim)
        self.text_tower = TextTower(embed_dim)
        self.log_temperature = nn.Parameter(np.asarray([np.log(1 / 0.07)],
                                                       dtype=np.float32))
        # score = calib_scale * cosine + calib_offset (set by calibrate()).
        self.register_buffer("calib_scale", Tensor(np.asarray([1.0], dtype=np.float32)))
        self.register_buffer("calib_offset", Tensor(np.asarray([0.0], dtype=np.float32)))

    def encode_image(self, images: Tensor) -> Tensor:
        """Full-resolution (n,3,200,300) or pre-downsampled (n,3,25,25) input."""
        tower_device = self.image_tower.conv1.weight.device
        if images.device != tower_device:
            images = images.to(device=tower_device)
        if images.shape[2] != _DOWN_H:
            images = preprocess_images(images)
        return self.image_tower(images)

    def encode_text(self, texts: Sequence[str], device=None) -> Tensor:
        return self.text_tower(Tensor(text_features(texts), device=device))

    def logits_per_image(self, images: Tensor, texts: Sequence[str]) -> Tensor:
        img = self.encode_image(images)
        txt = self.encode_text(texts, device=img.device)
        scale = ops.exp(self.log_temperature)
        return ops.matmul(img, txt.T) * scale

    def similarity(self, query: str, images: Tensor) -> Tensor:
        """Calibrated text→images similarity scores, shape (n,)."""
        img = self.encode_image(images)
        txt = self.encode_text([query], device=img.device)
        cosine = ops.matmul(img, txt.T).reshape(-1)
        return cosine * self.calib_scale.data[0] + self.calib_offset.data[0]

    def calibrate(self, images: Tensor, captions: Sequence[str]) -> None:
        """Fit the affine score map from training pairs (see module docstring).

        Positive pairs include each image with its full caption *and* with
        every individual caption token (queries are often single words).
        The map sends the 5th-percentile positive cosine to 0.86 and the
        mean negative cosine to 0.30, slope clamped for safety.
        """
        texts: list = []
        owners: list = []
        for i, caption in enumerate(captions):
            texts.append(caption)
            owners.append(i)
            for word in caption.split():
                if len(word) > 2:
                    texts.append(word)
                    owners.append(i)
        with no_grad():
            img = self.encode_image(images).data
            txt = self.text_tower(Tensor(text_features(texts))).data
        cosines = img @ txt.T                       # (n_images, n_texts)
        owners_arr = np.asarray(owners)
        pos_mask = owners_arr[None, :] == np.arange(img.shape[0])[:, None]
        positives = cosines[pos_mask]
        negatives = cosines[~pos_mask]
        pos_lo = float(np.percentile(positives, 5))
        neg_mean = float(negatives.mean())
        scale = (0.86 - 0.30) / max(pos_lo - neg_mean, 1e-3)
        scale = float(np.clip(scale, 0.25, 4.0))
        offset = 0.86 - scale * pos_lo
        self.calib_scale.data = np.asarray([scale], dtype=np.float32)
        self.calib_offset.data = np.asarray([offset], dtype=np.float32)


def _augment_caption(caption: str, rng: np.random.Generator) -> str:
    """Word dropout: half the time train on a random token subset.

    Queries at inference are often single words ("receipt", "dog"), while
    captions are full sentences; subsampling tokens during training aligns
    the towers for both granularities (the BoW analogue of CLIP's prompt
    robustness).
    """
    if rng.random() < 0.5:
        return caption
    words = [w for w in caption.split() if len(w) > 2]
    if not words:
        return caption
    keep = rng.integers(1, len(words) + 1)
    chosen = rng.choice(len(words), size=keep, replace=False)
    return " ".join(words[i] for i in sorted(chosen))


def train_tiny_clip(images: np.ndarray, captions: Sequence[str], steps: int = 800,
                    batch_size: int = 32, lr: float = 3e-3, seed: int = 7,
                    verbose: bool = False) -> TinyCLIP:
    """Contrastive (symmetric InfoNCE) training on (image, caption) pairs."""
    rng = fork_generator(seed)
    model = TinyCLIP()
    opt = optim.Adam(model.parameters(), lr=lr)
    loss_fn = nn.CrossEntropyLoss()
    n = images.shape[0]
    # Pre-downsample once: the tower only ever sees 25x25 inputs in training.
    down = preprocess_images(Tensor(images)).data
    for step in range(steps):
        idx = rng.choice(n, size=min(batch_size, n), replace=False)
        batch_images = Tensor(down[idx])
        batch_captions = [_augment_caption(captions[i], rng) for i in idx]
        logits = model.logits_per_image(batch_images, batch_captions)
        targets = Tensor(np.arange(len(idx), dtype=np.int64))
        loss = loss_fn(logits, targets) + loss_fn(logits.T, targets)
        opt.zero_grad()
        loss.backward()
        opt.step()
        if verbose and step % 50 == 0:
            print(f"tinyclip step {step}: loss={loss.item():.4f}")
    model.eval()
    model.calibrate(Tensor(down), list(captions))
    return model


def cache_dir() -> str:
    return os.environ.get(
        "REPRO_CACHE_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), ".cache"),
    )


def load_pretrained_clip(images: Optional[np.ndarray] = None,
                         captions: Optional[Sequence[str]] = None,
                         steps: int = 800, refresh: bool = False) -> TinyCLIP:
    """Load cached TinyCLIP weights, training them first if absent.

    When no training data is supplied, the default attachment dataset is
    generated (same seed the benchmarks use).
    """
    path = os.path.join(cache_dir(), "tinyclip.npz")
    model = TinyCLIP()
    if not refresh and os.path.exists(path):
        model.load_state_dict(load_state(path))
        model.eval()
        return model
    if images is None or captions is None:
        from repro.datasets.attachments import make_attachments
        data = make_attachments(rng=np.random.default_rng(0))
        images, captions = data.images, data.captions
    model = train_tiny_clip(images, captions, steps=steps)
    save_state(model, path)
    return model
