"""CNN architectures for the MNISTGrid experiments (paper §3, §5.4, §5.5).

``CNN`` is the tile-level digit/size parser used inside the
``parse_mnist_grid`` TVF (Listing 4). ``CNNSmall`` is the monolithic
regression baseline from Experiment 1 — "similar architecture to the CNNs we
use in the MNISTGrid TVF, and ... similar number of trainable parameters"
(~850K) — that must learn group-by/count behaviour from scratch.
"""

from __future__ import annotations

from repro.tcr import nn
from repro.tcr.tensor import Tensor


class CNN(nn.Module):
    """Small conv net classifying 28x28 single-channel tiles.

    Used as ``digit_parser = CNN(num_classes=10)`` and
    ``size_parser = CNN(num_classes=2)``.
    """

    def __init__(self, num_classes: int, in_channels: int = 1, width: int = 8):
        super().__init__()
        self.num_classes = num_classes
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, width, kernel_size=3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),                      # 28 -> 14
            nn.Conv2d(width, width * 2, kernel_size=3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),                      # 14 -> 7
        )
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(width * 2 * 7 * 7, 64),
            nn.ReLU(),
            nn.Linear(64, num_classes),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


class CNNSmall(nn.Module):
    """Monolithic grid-to-counts regressor (~850K parameters).

    Consumes the whole 84x84 grid and regresses the 20 grouped counts
    directly, entangling classification with the relational logic — the
    anti-pattern the paper's neurosymbolic decomposition avoids.
    """

    def __init__(self, out_dim: int = 20, in_channels: int = 1):
        super().__init__()
        self.out_dim = out_dim
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, 16, kernel_size=3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),                      # 84 -> 42
            nn.Conv2d(16, 32, kernel_size=3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),                      # 42 -> 21
            nn.Conv2d(32, 64, kernel_size=3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),                      # 21 -> 10
        )
        self.regressor = nn.Sequential(
            nn.Flatten(),
            nn.Linear(64 * 10 * 10, 128),
            nn.ReLU(),
            nn.Linear(128, out_dim),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.regressor(self.features(x))
