"""OCR pipeline: table detection + glyph recognition from pixels (paper §5.2).

The paper's ``extract_table`` UDF "internally employs a pipeline of ML models
to: (1) recognize where the table is in the image; and (2) OCR the image and
convert it into a plain tensor". Our offline equivalent:

* :class:`TableDetector` — locates text bands via ink projection profiles
  (rows from horizontal projections, columns from vertical ones);
* :class:`CharacterOCR` — classifies each character cell by correlating it
  against the bitmap-font template atlas under a 3x3 grid of pixel shifts
  (test-time alignment jitter), computed as a batched tensor contraction.

The pipeline reads numbers back from raw pixels — no layout metadata is
smuggled in — so the conversion cost behind the TVF is genuine, which is the
property Fig 3-left's lazy-vs-bulk comparison measures.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.fonts import GLYPH_HEIGHT, GLYPH_WIDTH, NUMERIC_CHARSET, glyph_atlas
from repro.errors import ExecutionError
from repro.tcr import ops
from repro.tcr.tensor import Tensor


@dataclasses.dataclass
class Band:
    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


def _bands(profile: np.ndarray, threshold: float, min_gap: int = 2) -> List[Band]:
    """Contiguous runs where the ink profile exceeds ``threshold``."""
    active = profile > threshold
    bands: List[Band] = []
    start = None
    gap = 0
    for i, flag in enumerate(active):
        if flag:
            if start is None:
                start = i
            gap = 0
        elif start is not None:
            gap += 1
            if gap >= min_gap:
                bands.append(Band(start, i - gap + 1))
                start = None
                gap = 0
    if start is not None:
        bands.append(Band(start, len(active)))
    return bands


class TableDetector:
    """Stage 1: find the table's text rows and columns from projections."""

    def __init__(self, ink_threshold: float = 0.35):
        self.ink_threshold = ink_threshold

    def ink(self, image: np.ndarray) -> np.ndarray:
        """White-on-black ink map from a white-page grayscale image."""
        if image.ndim == 3:
            image = image[0]
        return np.clip(1.0 - image, 0.0, 1.0)

    def detect(self, image: np.ndarray) -> Tuple[np.ndarray, List[Band], List[Band]]:
        """Return (ink map, row bands, column bands) — header row included."""
        ink = self.ink(image)
        binary = ink > self.ink_threshold
        rows = _bands(binary.sum(axis=1).astype(np.float64), 0.5, min_gap=3)
        if not rows:
            raise ExecutionError("table detector found no text rows")
        # Column bands from the data rows only (header words are wider).
        data_top = rows[1].start if len(rows) > 1 else rows[0].start
        cols = _bands(binary[data_top:].sum(axis=0).astype(np.float64), 0.5,
                      min_gap=GLYPH_WIDTH * 2)
        if not cols:
            raise ExecutionError("table detector found no text columns")
        return ink, rows, cols


class CharacterOCR:
    """Stage 2: template-correlation glyph classifier with shift ensemble."""

    def __init__(self, scale: int = 2, charset: str = NUMERIC_CHARSET.strip(),
                 shifts: int = 1):
        self.scale = scale
        self.charset = charset
        self.shifts = shifts              # radius of the alignment jitter grid
        atlas = glyph_atlas(charset, scale=scale)
        self.glyph_h = GLYPH_HEIGHT * scale
        self.glyph_w = GLYPH_WIDTH * scale
        templates = np.stack([atlas[c] for c in charset])
        norms = np.sqrt((templates ** 2).sum(axis=(1, 2), keepdims=True))
        self.templates = Tensor((templates / np.maximum(norms, 1e-6))
                                .reshape(len(charset), -1).astype(np.float32))

    def classify_cells(self, cells: np.ndarray) -> str:
        """Classify a batch of (n, glyph_h, glyph_w) character crops."""
        n = cells.shape[0]
        if n == 0:
            return ""
        best_scores = np.full((n, len(self.charset)), -np.inf, dtype=np.float32)
        radius = self.shifts
        padded = np.pad(cells, ((0, 0), (radius, radius), (radius, radius)))
        for dr in range(2 * radius + 1):
            for dc in range(2 * radius + 1):
                view = padded[:, dr:dr + self.glyph_h, dc:dc + self.glyph_w]
                flat = Tensor(np.ascontiguousarray(view.reshape(n, -1)))
                # Normalised cross-correlation against every template.
                scores = ops.matmul(flat, self.templates.T).data
                best_scores = np.maximum(best_scores, scores)
        indices = best_scores.argmax(axis=1)
        return "".join(self.charset[i] for i in indices)

    def read_cell(self, ink: np.ndarray) -> str:
        """Segment one table cell into character crops and classify them."""
        profile = (ink > 0.35).sum(axis=0).astype(np.float64)
        chars = _bands(profile, 0.5, min_gap=2)
        crops = []
        for band in chars:
            crop = ink[:, band.start:band.stop]
            canvas = np.zeros((self.glyph_h, self.glyph_w), dtype=np.float32)
            h = min(crop.shape[0], self.glyph_h)
            w = min(crop.shape[1], self.glyph_w)
            canvas[:h, :w] = crop[:h, :w]
            crops.append(canvas)
        if not crops:
            return ""
        return self.classify_cells(np.stack(crops))


class TableExtractor:
    """The full pipeline behind the paper's ``extract_table`` TVF."""

    def __init__(self, detector: Optional[TableDetector] = None,
                 recognizer: Optional[CharacterOCR] = None):
        self.detector = detector or TableDetector()
        self.recognizer = recognizer or CharacterOCR()

    def extract(self, image: np.ndarray) -> List[List[float]]:
        """Image → rows of floats (header row recognised then skipped)."""
        ink, rows, cols = self.detector.detect(image)
        data: List[List[float]] = []
        for row_band in rows[1:]:
            row_values: List[float] = []
            for col_band in cols:
                cell = ink[row_band.start:row_band.stop, col_band.start:col_band.stop]
                text = self.recognizer.read_cell(cell)
                row_values.append(_parse_float(text))
            data.append(row_values)
        if not data:
            raise ExecutionError("no data rows recognised in document image")
        return data

    def extract_columns(self, images: np.ndarray) -> np.ndarray:
        """Batch of (n, 1, H, W) images → stacked (total_rows, n_cols) floats."""
        all_rows: List[List[float]] = []
        for i in range(images.shape[0]):
            all_rows.extend(self.extract(images[i]))
        return np.asarray(all_rows, dtype=np.float32)


def _parse_float(text: str) -> float:
    cleaned = text.strip().strip("-") if text.strip() == "-" else text.strip()
    try:
        return float(cleaned)
    except ValueError:
        # Recover common single-glyph confusions rather than dropping the row.
        digits = "".join(c for c in cleaned if c.isdigit() or c == ".")
        try:
            return float(digits) if digits else float("nan")
        except ValueError:
            return float("nan")
