"""Linear classifiers (LLP experiments use a plain linear model)."""

from __future__ import annotations

import numpy as np

from repro.tcr import nn
from repro.tcr.tensor import Tensor


class LinearClassifier(nn.Module):
    """``torch.nn.Linear(d, num_classes)`` analogue with an accuracy helper."""

    def __init__(self, in_features: int, num_classes: int = 2):
        super().__init__()
        self.linear = nn.Linear(in_features, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)

    def predict(self, features: np.ndarray) -> np.ndarray:
        from repro.tcr.autograd import no_grad
        with no_grad():
            logits = self.linear(Tensor(features.astype(np.float32)))
        return logits.data.argmax(axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(features) == labels).mean())

    def error(self, features: np.ndarray, labels: np.ndarray) -> float:
        return 1.0 - self.accuracy(features, labels)
