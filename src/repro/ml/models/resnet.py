"""ResNet (BasicBlock) architectures.

``ResNet18`` reproduces the 11.1M-parameter baseline of paper Experiment 1.
Because this runtime executes convolutions on 2 CPU cores in numpy, the
benchmark defaults to the reduced ``ResNet8`` (same residual structure, fewer
blocks/channels) with the full ResNet18 available and unit-tested; the
scale-down is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List

from repro.tcr import nn, ops
from repro.tcr.tensor import Tensor


class BasicBlock(nn.Module):
    def __init__(self, in_channels: int, out_channels: int, stride: int = 1):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride,
                               padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1,
                               padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return ops.relu(out + self.downsample(x))


class ResNet(nn.Module):
    """Configurable BasicBlock ResNet over single- or three-channel images."""

    def __init__(self, blocks_per_stage: List[int], channels: List[int],
                 num_outputs: int, in_channels: int = 1, stem_pool: bool = True):
        super().__init__()
        if len(blocks_per_stage) != len(channels):
            raise ValueError("blocks_per_stage and channels must align")
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, channels[0], 3, stride=1, padding=1, bias=False),
            nn.BatchNorm2d(channels[0]),
            nn.ReLU(),
        )
        self.stem_pool = nn.MaxPool2d(2) if stem_pool else nn.Identity()
        stages = []
        current = channels[0]
        for stage_idx, (num_blocks, width) in enumerate(zip(blocks_per_stage, channels)):
            for block_idx in range(num_blocks):
                stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
                stages.append(BasicBlock(current, width, stride=stride))
                current = width
        self.stages = nn.Sequential(*stages)
        self.head = nn.Sequential(
            nn.AdaptiveAvgPool2d(1),
            nn.Flatten(),
            nn.Linear(current, num_outputs),
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_pool(self.stem(x))
        out = self.stages(out)
        return self.head(out)


def ResNet18(num_outputs: int = 20, in_channels: int = 1) -> ResNet:
    """The paper's 11.1M-parameter baseline configuration."""
    return ResNet([2, 2, 2, 2], [64, 128, 256, 512], num_outputs, in_channels)


def ResNet8(num_outputs: int = 20, in_channels: int = 1) -> ResNet:
    """Reduced variant used by default in the CPU-bound benchmarks."""
    return ResNet([1, 1, 1], [16, 32, 64], num_outputs, in_channels)
