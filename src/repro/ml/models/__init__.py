"""Model zoo used by the paper's use cases."""

from repro.ml.models.clip import (
    TinyCLIP,
    load_pretrained_clip,
    preprocess_images,
    text_features,
    train_tiny_clip,
)
from repro.ml.models.cnn import CNN, CNNSmall
from repro.ml.models.linear import LinearClassifier
from repro.ml.models.ocr import CharacterOCR, TableDetector, TableExtractor
from repro.ml.models.resnet import BasicBlock, ResNet, ResNet8, ResNet18

__all__ = [
    "BasicBlock", "CNN", "CNNSmall", "CharacterOCR", "LinearClassifier",
    "ResNet", "ResNet8", "ResNet18", "TableDetector", "TableExtractor",
    "TinyCLIP", "load_pretrained_clip", "preprocess_images", "text_features",
    "train_tiny_clip",
]
