"""``repro.ml`` — model zoo, training loops and metrics."""

from repro.ml import metrics, train
from repro.ml.models import (
    CNN,
    CNNSmall,
    CharacterOCR,
    LinearClassifier,
    ResNet,
    ResNet8,
    ResNet18,
    TableDetector,
    TableExtractor,
    TinyCLIP,
    load_pretrained_clip,
    preprocess_images,
    train_tiny_clip,
)

__all__ = [
    "CNN", "CNNSmall", "CharacterOCR", "LinearClassifier", "ResNet",
    "ResNet8", "ResNet18", "TableDetector", "TableExtractor", "TinyCLIP",
    "load_pretrained_clip", "metrics", "preprocess_images", "train",
    "train_tiny_clip",
]
