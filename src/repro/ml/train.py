"""Training utilities shared by examples and benchmarks."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.tcr import nn, optim
from repro.tcr.autograd import no_grad
from repro.tcr.nn.module import Module
from repro.tcr.random import fork_generator
from repro.tcr.tensor import Tensor


def train_classifier(model: Module, features: np.ndarray, labels: np.ndarray,
                     epochs: int = 20, batch_size: int = 64, lr: float = 1e-2,
                     seed: int = 0, weight_decay: float = 0.0) -> List[float]:
    """Supervised cross-entropy training; returns the per-epoch mean loss."""
    rng = fork_generator(seed)
    opt = optim.Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    loss_fn = nn.CrossEntropyLoss()
    n = features.shape[0]
    history: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(n)
        losses = []
        for start in range(0, n, batch_size):
            idx = order[start:start + batch_size]
            x = Tensor(features[idx])
            y = Tensor(labels[idx].astype(np.int64))
            opt.zero_grad()
            loss = loss_fn(model(x), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)))
    return history


def train_regressor(model: Module, inputs: np.ndarray, targets: np.ndarray,
                    iterations: int, batch_size: int = 8, lr: float = 1e-3,
                    seed: int = 0,
                    eval_every: Optional[int] = None,
                    eval_fn: Optional[Callable[[Module], float]] = None
                    ) -> List[Tuple[int, float]]:
    """MSE training loop for the pure-DL MNISTGrid baselines.

    Returns [(iteration, eval value)] measured every ``eval_every`` steps.
    """
    rng = fork_generator(seed)
    opt = optim.Adam(model.parameters(), lr=lr)
    loss_fn = nn.MSELoss()
    n = inputs.shape[0]
    curve: List[Tuple[int, float]] = []
    for step in range(iterations):
        idx = rng.integers(0, n, size=batch_size)
        x = Tensor(inputs[idx])
        y = Tensor(targets[idx])
        opt.zero_grad()
        loss = loss_fn(model(x), y)
        loss.backward()
        opt.step()
        if eval_fn is not None and eval_every and (step + 1) % eval_every == 0:
            model.eval()
            curve.append((step + 1, eval_fn(model)))
            model.train()
    return curve


def evaluate_mse(model: Module, inputs: np.ndarray, targets: np.ndarray,
                 batch_size: int = 32) -> float:
    """Mean squared error over a dataset (no gradients)."""
    total, count = 0.0, 0
    with no_grad():
        for start in range(0, inputs.shape[0], batch_size):
            x = Tensor(inputs[start:start + batch_size])
            pred = model(x).data
            diff = pred - targets[start:start + batch_size]
            total += float((diff ** 2).sum())
            count += diff.size
    return total / max(count, 1)
