"""Evaluation metrics."""

from __future__ import annotations

import numpy as np


def classification_error(predictions: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        return 0.0
    return float((predictions != labels).mean())


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    return 1.0 - classification_error(predictions, labels)


def mse(predictions: np.ndarray, targets: np.ndarray) -> float:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    return float(((predictions - targets) ** 2).mean())


def precision_at_k(retrieved: np.ndarray, relevant: np.ndarray, k: int) -> float:
    """Fraction of the top-k retrieved items that are relevant."""
    top = set(np.asarray(retrieved)[:k].tolist())
    rel = set(np.asarray(relevant).tolist())
    if k == 0:
        return 0.0
    return len(top & rel) / k
