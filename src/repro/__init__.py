"""Reproduction of "The Tensor Data Platform" (CIDR 2023).

The package exposes a default session mirroring the paper's ``tdp`` object:

>>> import repro as tdp
>>> tdp.sql.register_df(frame, "numbers", device="cuda")
>>> q = tdp.sql.spark.query("SELECT Digits, COUNT(*) FROM numbers GROUP BY Digits")
>>> q.run(toPandas=True)

Sub-packages:
  * :mod:`repro.tcr` - tensor runtime (autograd, nn, optim; PyTorch stand-in)
  * :mod:`repro.sql` - SQL parser/binder/optimizer (Spark/Substrait stand-in)
  * :mod:`repro.storage` - columnar tensor storage and encodings
  * :mod:`repro.core` - the TDP engine: compilation, operators, soft SQL
  * :mod:`repro.ml` - model zoo (CNN parsers, ResNet, TinyCLIP, OCR)
  * :mod:`repro.datasets` - synthetic datasets for every experiment
  * :mod:`repro.baselines` - MiniDuck engine and pure-DL baselines
"""

from repro import tcr
from repro.core.config import constants
from repro.core.session import Session
from repro.storage.encodings import PEEncoding
from repro.storage.frame import DataFrame

__version__ = "0.1.0"

# Default session: `import repro as tdp; tdp.sql...` works like the paper.
_default_session = Session()
sql = _default_session.sql
spark = _default_session.spark
catalog = _default_session.catalog
functions = _default_session.functions
tdp_udf = _default_session.udf
# The paper's earlier listings also spell the decorator `tqp_udf` (Listing 7).
tqp_udf = tdp_udf


def default_session() -> Session:
    return _default_session


def reset_session() -> None:
    """Clear the default session's catalog and function registry."""
    _default_session.reset()


__all__ = [
    "DataFrame", "PEEncoding", "Session", "catalog", "constants",
    "default_session", "functions", "reset_session", "spark", "sql", "tcr",
    "tdp_udf", "tqp_udf",
]
