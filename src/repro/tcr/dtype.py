"""Dtype policy for the tensor runtime.

We follow PyTorch's defaults: Python floats and float arrays become
``float32``, Python ints become ``int64``, and bools stay ``bool``. numpy's
own promotion rules apply inside kernels; :func:`result_type` is used where
we need to decide a promotion explicitly.
"""

from __future__ import annotations

import numpy as np

float32 = np.float32
float64 = np.float64
int32 = np.int32
int64 = np.int64
uint8 = np.uint8
bool_ = np.bool_

_FLOAT_KINDS = ("f",)
_INT_KINDS = ("i", "u")


def default_dtype_for(array: np.ndarray) -> np.dtype:
    """Return the canonical storage dtype for a freshly ingested array."""
    kind = array.dtype.kind
    if kind == "f":
        return np.dtype(np.float32)
    if kind in ("i", "u"):
        return np.dtype(np.int64)
    if kind == "b":
        return np.dtype(np.bool_)
    raise TypeError(f"unsupported dtype {array.dtype} for tensor data")


def canonicalize(array: np.ndarray) -> np.ndarray:
    """Cast an ingested array to its canonical dtype (no-op when it already is)."""
    target = default_dtype_for(array)
    if array.dtype == target:
        return array
    return array.astype(target)


def is_float(dtype) -> bool:
    return np.dtype(dtype).kind in _FLOAT_KINDS


def is_int(dtype) -> bool:
    return np.dtype(dtype).kind in _INT_KINDS


def is_bool(dtype) -> bool:
    return np.dtype(dtype).kind == "b"


def result_type(*dtypes) -> np.dtype:
    return np.result_type(*dtypes)
