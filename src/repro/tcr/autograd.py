"""Reverse-mode automatic differentiation engine.

This is the capability the paper gets from PyTorch [26]: every operation on
tensors that require gradients records a node in a dynamic (define-by-run)
graph; ``Tensor.backward()`` replays the graph in reverse topological order,
accumulating gradients into leaves. Trainable queries (paper §4) rely on this
engine to backpropagate through soft relational operators into UDF models.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AutogradError

# Backward functions receive the gradient flowing into the node's output and
# return one gradient array (or None) per parent, in parent order.
BackwardFn = Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]


class _GradMode(threading.local):
    """Thread-local flag mirroring torch.is_grad_enabled()."""

    def __init__(self):
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations should record autograd graph nodes."""
    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (torch.no_grad)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording inside no_grad."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = True
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Broadcasting can add leading axes and stretch size-1 axes; the adjoint of
    broadcasting is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def topo_order(root) -> list:
    """Iterative post-order topological sort of the autograd graph."""
    order = []
    visited = set()
    stack = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))
    return order


def run_backward(root, grad: np.ndarray) -> None:
    """Propagate ``grad`` from ``root`` through the recorded graph.

    Gradients are accumulated (`+=`) into every tensor that requires grad,
    matching PyTorch's leaf accumulation semantics. Non-leaf gradients are
    also retained; at the scale of this reproduction the memory cost is
    negligible and it simplifies debugging of soft operators.
    """
    if not root.requires_grad:
        raise AutogradError("backward() called on a tensor that does not require grad")
    # NB: np.ascontiguousarray would promote 0-d seeds to 1-d; keep the shape.
    grads: dict[int, np.ndarray] = {id(root): np.asarray(grad)}
    for node in reversed(topo_order(root)):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        if node.grad is None:
            node.grad = node_grad.copy()
        else:
            node.grad = node.grad + node_grad
        if node._backward is None:
            continue
        parent_grads = node._backward(node_grad)
        if len(parent_grads) != len(node._parents):
            raise AutogradError(
                f"op {node._op!r} returned {len(parent_grads)} gradients for "
                f"{len(node._parents)} parents"
            )
        for parent, parent_grad in zip(node._parents, parent_grads):
            if parent_grad is None or not parent.requires_grad:
                continue
            parent_grad = np.asarray(parent_grad)
            if parent_grad.shape != parent.shape:
                parent_grad = unbroadcast(parent_grad, parent.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + parent_grad
            else:
                grads[key] = parent_grad


def grad_of(outputs, inputs, grad_outputs=None) -> list:
    """Functional gradient API: d(outputs)/d(inputs) without touching .grad.

    A small analogue of ``torch.autograd.grad`` used by tests to verify
    operator adjoints against numerical differentiation.
    """
    saved = {}

    def _collect(node):
        for t in topo_order(node):
            if id(t) not in saved:
                saved[id(t)] = t.grad
                t.grad = None

    _collect(outputs)
    try:
        if grad_outputs is None:
            outputs.backward()
        else:
            outputs.backward(grad_outputs)
        result = [t.grad.copy() if t.grad is not None else None for t in inputs]
    finally:
        for t in topo_order(outputs):
            t.grad = saved.get(id(t))
    return result
