"""A small einops-style ``rearrange`` implementation.

Paper Listing 4 tiles an MNISTGrid image with
``einops.rearrange(grid, "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2", h1=3, w1=3)``.
This module supports exactly that pattern language: space-separated axes,
parenthesised groups, ``1`` singleton literals, and named-size keyword
arguments. The transformation compiles to reshape + permute + reshape on our
autograd ops, so gradients flow through it for free.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.tensor import Tensor

_TOKEN_RE = re.compile(r"\(|\)|[A-Za-z_][A-Za-z0-9_]*|1|\S")


def _parse_side(side: str) -> List[List[str]]:
    """Parse one side of a pattern into a list of groups of axis names."""
    groups: List[List[str]] = []
    current: List[str] | None = None
    for token in _TOKEN_RE.findall(side):
        if token == "(":
            if current is not None:
                raise ShapeError(f"nested parentheses in pattern side {side!r}")
            current = []
            groups.append(current)
        elif token == ")":
            if current is None:
                raise ShapeError(f"unbalanced ')' in pattern side {side!r}")
            current = None
        elif token == "1" or token.isidentifier():
            if current is not None:
                current.append(token)
            else:
                groups.append([token])
        else:
            raise ShapeError(f"unexpected token {token!r} in pattern side {side!r}")
    if current is not None:
        raise ShapeError(f"unbalanced '(' in pattern side {side!r}")
    return groups


def rearrange(tensor: Tensor, pattern: str, **axis_sizes: int) -> Tensor:
    """Rearrange tensor dimensions according to an einops pattern."""
    if "->" not in pattern:
        raise ShapeError(f"pattern {pattern!r} must contain '->'")
    left_str, right_str = pattern.split("->")
    left = _parse_side(left_str)
    right = _parse_side(right_str)

    if len(left) != tensor.ndim:
        raise ShapeError(
            f"pattern left side has {len(left)} dims but tensor has {tensor.ndim}"
        )

    # Resolve every named axis size from kwargs + input shape.
    sizes = dict(axis_sizes)
    singleton_count = 0
    flat_left: List[str] = []
    for group, dim_size in zip(left, tensor.shape):
        known = 1
        unknown = None
        for name in group:
            if name == "1":
                # Rename each literal to a unique singleton axis.
                name = f"__one{singleton_count}"
                singleton_count += 1
                sizes[name] = 1
            if name in sizes:
                known *= sizes[name]
            else:
                if unknown is not None:
                    raise ShapeError(
                        f"cannot infer sizes of both {unknown!r} and {name!r} in one group"
                    )
                unknown = name
            flat_left.append(name)
        if unknown is not None:
            if dim_size % known:
                raise ShapeError(
                    f"dim of size {dim_size} not divisible by known product {known}"
                )
            sizes[unknown] = dim_size // known
        elif known != dim_size:
            raise ShapeError(
                f"group {group} implies size {known} but dim has size {dim_size}"
            )

    # The left side may rename literals; rebuild groups with resolved names.
    resolved_left: List[List[str]] = []
    cursor = 0
    for group in left:
        resolved_left.append(flat_left[cursor:cursor + len(group)])
        cursor += len(group)

    flat_right: List[str] = []
    one_pool = [n for n in flat_left if n.startswith("__one")]
    for group in right:
        for name in group:
            if name == "1":
                # Consume an unused left singleton, or synthesise a new one.
                if one_pool:
                    name = one_pool.pop(0)
                else:
                    name = f"__one{singleton_count}"
                    singleton_count += 1
                    sizes[name] = 1
            flat_right.append(name)

    missing = [n for n in flat_left if n not in flat_right and not n.startswith("__one")]
    if missing:
        raise ShapeError(f"axes {missing} appear on the left but not the right")
    new_axes = [n for n in flat_right if n not in flat_left]
    for name in new_axes:
        if sizes.get(name) != 1:
            raise ShapeError(f"new axis {name!r} on the right must have size 1")

    # Step 1: reshape to fully decomposed left shape.
    decomposed_shape = tuple(sizes[name] for name in flat_left)
    out = ops.reshape(tensor, decomposed_shape)

    # Step 2: permute decomposed axes into right-side order (existing axes only).
    right_existing = [n for n in flat_right if n in flat_left]
    perm = tuple(flat_left.index(name) for name in right_existing)
    dropped = [i for i, n in enumerate(flat_left) if n not in flat_right]
    if dropped:
        # Only singleton axes may be dropped; squeeze them first.
        keep = [i for i in range(len(flat_left)) if i not in dropped]
        out = ops.reshape(out, tuple(decomposed_shape[i] for i in keep))
        flat_kept = [flat_left[i] for i in keep]
        perm = tuple(flat_kept.index(name) for name in right_existing)
    if perm != tuple(range(len(perm))):
        out = ops.permute(out, perm)

    # Step 3: reshape into grouped right-side shape (inserting new singletons).
    final_shape = []
    for group in right:
        size = 1
        for name in group:
            if name == "1":
                continue
            size *= sizes[name]
        if group == ["1"] or (len(group) == 1 and group[0] == "1"):
            size = 1
        final_shape.append(size)
    return ops.reshape(out, tuple(final_shape))
