"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from repro.errors import TdpError
from repro.tcr.tensor import Tensor


class Optimizer:
    """Holds a parameter list and per-parameter state dictionaries."""

    def __init__(self, params: Iterable[Tensor], lr: float):
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise TdpError("optimizer got an empty parameter list")
        for p in self.params:
            if not isinstance(p, Tensor):
                raise TdpError(f"optimizer parameters must be tensors, got {type(p).__name__}")
        if lr <= 0:
            raise TdpError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.state: List[dict] = [{} for _ in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError
