"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations


from repro.tcr.optim.optimizer import Optimizer


class SGD(Optimizer):
    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def step(self) -> None:
        for p, state in zip(self.params, self.state):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = state.get("momentum_buffer")
                if buf is None:
                    buf = grad.copy()
                else:
                    buf = self.momentum * buf + grad
                state["momentum_buffer"] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            p.data = p.data - self.lr * grad.astype(p.data.dtype, copy=False)
