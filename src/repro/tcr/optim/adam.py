"""Adam / AdamW optimisers."""

from __future__ import annotations

import numpy as np

from repro.tcr.optim.optimizer import Optimizer


class Adam(Optimizer):
    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, p, state, grad):
        step = state.get("step", 0) + 1
        state["step"] = step
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = np.zeros_like(p.data, dtype=np.float32)
            v = np.zeros_like(p.data, dtype=np.float32)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        state["m"], state["v"] = m, v
        m_hat = m / (1 - self.beta1 ** step)
        v_hat = v / (1 - self.beta2 ** step)
        return m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        for p, state in zip(self.params, self.state):
            if p.grad is None:
                continue
            grad = p.grad.astype(np.float32, copy=False)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            update = self._update(p, state, grad)
            p.data = p.data - self.lr * update.astype(p.data.dtype, copy=False)


class AdamW(Adam):
    """Adam with decoupled weight decay."""

    def step(self) -> None:
        for p, state in zip(self.params, self.state):
            if p.grad is None:
                continue
            grad = p.grad.astype(np.float32, copy=False)
            update = self._update(p, state, grad)
            p.data = p.data - self.lr * (
                update.astype(p.data.dtype, copy=False) + self.weight_decay * p.data
            )
