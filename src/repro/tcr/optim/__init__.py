"""Gradient-descent optimisers (paper Listing 5 uses Adam)."""

from repro.tcr.optim.optimizer import Optimizer
from repro.tcr.optim.sgd import SGD
from repro.tcr.optim.adam import Adam, AdamW

__all__ = ["Adam", "AdamW", "Optimizer", "SGD"]
