"""Device abstraction for the tensor runtime.

The paper runs TDP on CPU and on an NVIDIA V100 GPU. This environment has no
GPU, so ``cuda`` is a *simulated accelerator*: tensors tagged ``cuda`` hold
ordinary numpy buffers, but the engine consults the device's
:class:`DeviceProfile` to decide how work is batched. The profile models the
one mechanism behind the paper's CPU/GPU gap (Fig 2): accelerators amortise
kernel dispatch over large batches, CPUs process small micro-batches. The
operator code is identical on both devices — only the batching granularity
differs — so measured speedups come from real wall-clock behaviour of the
same code path, not from a hard-coded constant.
"""

from __future__ import annotations

import dataclasses

from repro.errors import DeviceError


@dataclasses.dataclass(frozen=True)
class DeviceProfile:
    """Execution characteristics the engine uses when planning for a device.

    Attributes:
        exec_batch_rows: number of table rows the engine fuses into one
            operator invocation. Large values amortise per-call overhead
            (accelerator-style), small values model cache-resident CPU
            micro-batching.
        supports_large_fusion: whether the planner may fuse an entire
            pipeline into a single batched kernel program.
    """

    exec_batch_rows: int
    supports_large_fusion: bool


_PROFILES = {
    # CPU: row-at-a-time streaming execution (the Volcano-style granularity
    # classic engines use); the accelerator amortises dispatch over large
    # data-parallel batches. This asymmetry is the measurable mechanism
    # behind the paper's Fig 2 CPU/GPU gap (see DESIGN.md substitutions).
    "cpu": DeviceProfile(exec_batch_rows=1, supports_large_fusion=False),
    "cuda": DeviceProfile(exec_batch_rows=512, supports_large_fusion=True),
}


class Device:
    """A compute device tag (``cpu`` or ``cuda[:index]``)."""

    __slots__ = ("type", "index")

    def __init__(self, spec: "str | Device" = "cpu"):
        if isinstance(spec, Device):
            self.type = spec.type
            self.index = spec.index
            return
        if not isinstance(spec, str):
            raise DeviceError(f"device spec must be str or Device, got {type(spec).__name__}")
        name, _, idx = spec.partition(":")
        if name not in _PROFILES:
            raise DeviceError(f"unknown device {spec!r}; expected 'cpu' or 'cuda[:N]'")
        if idx and not idx.isdigit():
            raise DeviceError(f"invalid device index in {spec!r}")
        self.type = name
        self.index = int(idx) if idx else 0

    @property
    def profile(self) -> DeviceProfile:
        return _PROFILES[self.type]

    def __eq__(self, other) -> bool:
        if isinstance(other, str):
            try:
                other = Device(other)
            except DeviceError:
                return NotImplemented
        if not isinstance(other, Device):
            return NotImplemented
        return self.type == other.type and self.index == other.index

    def __hash__(self) -> int:
        return hash((self.type, self.index))

    def __repr__(self) -> str:
        return f"device(type={self.type!r}, index={self.index})"

    def __str__(self) -> str:
        return self.type if self.type == "cpu" else f"{self.type}:{self.index}"


CPU = Device("cpu")
CUDA = Device("cuda")


def as_device(spec: "str | Device | None") -> Device:
    """Coerce a user-supplied device spec to a :class:`Device` (None → cpu)."""
    if spec is None:
        return CPU
    return Device(spec)


def same_device(*devices: Device) -> Device:
    """Check all devices are equal and return the common one.

    Raises:
        DeviceError: if tensors live on different devices (mirrors the
            runtime check PyTorch performs).
    """
    first = devices[0]
    for dev in devices[1:]:
        if dev != first:
            raise DeviceError(
                f"expected all tensors on the same device, found {first} and {dev}"
            )
    return first
