"""Save/load module state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.errors import TdpError
from repro.tcr.nn.module import Module


def save_state(module_or_state, path: str) -> None:
    """Write a module's (or raw) state dict to ``path`` (.npz)."""
    if isinstance(module_or_state, Module):
        state = module_or_state.state_dict()
    elif isinstance(module_or_state, dict):
        state = module_or_state
    else:
        raise TdpError(f"cannot serialise {type(module_or_state).__name__}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict saved by :func:`save_state`."""
    if not os.path.exists(path):
        raise TdpError(f"no saved state at {path}")
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


def load_into(module: Module, path: str, strict: bool = True) -> Module:
    module.load_state_dict(load_state(path), strict=strict)
    return module
