"""``Module``/``Parameter`` base classes (the torch.nn.Module analogue).

Compiled TDP queries are themselves Modules (paper §2: "the output of query
compilation is a PyTorch model"), so everything trainable in the system —
UDF networks, soft operators, whole queries — shares this one abstraction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import TdpError
from repro.tcr.tensor import Tensor


class Parameter(Tensor):
    """A Tensor registered as a trainable module attribute."""

    def __init__(self, data, requires_grad: bool = True, device=None):
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(data, requires_grad=requires_grad, device=device)

    def __repr__(self) -> str:
        return "Parameter containing:\n" + super().__repr__()


class Module:
    """Base class for neural network modules and compiled query operators."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, tensor: Optional[Tensor]) -> None:
        """Track non-trainable state (e.g. batch-norm running stats)."""
        self._buffers[name] = tensor
        object.__setattr__(self, name, tensor)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def add_module(self, name: str, module: "Module") -> None:
        self.register_module(name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self, recurse: bool = True) -> Iterator[Parameter]:
        for _, param in self.named_parameters(recurse=recurse):
            yield param

    def named_parameters(self, prefix: str = "", recurse: bool = True
                         ) -> Iterator[Tuple[str, Parameter]]:
        seen = set()
        for name, param in self._parameters.items():
            if id(param) not in seen:
                seen.add(id(param))
                yield (prefix + name, param)
        if recurse:
            for mod_name, module in self._modules.items():
                sub_prefix = f"{prefix}{mod_name}."
                for name, param in module.named_parameters(prefix=sub_prefix):
                    if id(param) not in seen:
                        seen.add(id(param))
                        yield (name, param)

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, buf in self._buffers.items():
            yield (prefix + name, buf)
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{mod_name}.")

    def buffers(self) -> Iterator[Tensor]:
        for _, buf in self.named_buffers():
            yield buf

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        yield from self._modules.items()

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    def num_parameters(self, trainable_only: bool = True) -> int:
        """Total number of scalar parameters (paper quotes 850K / 11.1M)."""
        total = 0
        for param in self.parameters():
            if not trainable_only or param.requires_grad:
                total += param.data.size
        return total

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def to(self, device) -> "Module":
        for name, param in list(self._parameters.items()):
            moved = param.to(device=device)
            new_param = Parameter(moved.data, requires_grad=param.requires_grad, device=device)
            self._parameters[name] = new_param
            object.__setattr__(self, name, new_param)
        for name, buf in list(self._buffers.items()):
            if buf is not None:
                self.register_buffer(name, buf.to(device=device))
        for child in self._modules.values():
            child.to(device)
        return self

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters(prefix=prefix):
            state[name] = param.data.copy()
        for name, buf in self.named_buffers(prefix=prefix):
            if buf is not None:
                state[name] = buf.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = dict(self.named_buffers())
        targets = {**own_buffers, **own_params}
        missing = [k for k in targets if k not in state]
        unexpected = [k for k in state if k not in targets]
        if strict and (missing or unexpected):
            raise TdpError(
                f"state_dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for key, value in state.items():
            target = targets.get(key)
            if target is None:
                continue
            if target.data.shape != value.shape:
                raise TdpError(
                    f"shape mismatch for {key}: {target.data.shape} vs {value.shape}"
                )
            target.data = np.asarray(value, dtype=target.data.dtype).copy()

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError(f"{type(self).__name__} must implement forward()")

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}("]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}()"
