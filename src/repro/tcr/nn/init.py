"""Weight initialisation schemes (kaiming/xavier/constant)."""

from __future__ import annotations

import math

import numpy as np

from repro.tcr.random import get_generator
from repro.tcr.tensor import Tensor


def _fan_in_out(tensor: Tensor) -> tuple:
    shape = tensor.shape
    if len(shape) < 2:
        return shape[0], shape[0]
    receptive = 1
    for n in shape[2:]:
        receptive *= n
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0) -> Tensor:
    tensor.data = get_generator().uniform(low, high, tensor.shape).astype(tensor.dtype)
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    tensor.data = get_generator().normal(mean, std, tensor.shape).astype(tensor.dtype)
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    tensor.data = np.zeros_like(tensor.data)
    return tensor


def ones_(tensor: Tensor) -> Tensor:
    tensor.data = np.ones_like(tensor.data)
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data = np.full_like(tensor.data, value)
    return tensor


def kaiming_uniform_(tensor: Tensor, a: float = math.sqrt(5)) -> Tensor:
    fan_in, _ = _fan_in_out(tensor)
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return uniform_(tensor, -bound, bound)


def kaiming_normal_(tensor: Tensor) -> Tensor:
    fan_in, _ = _fan_in_out(tensor)
    std = math.sqrt(2.0 / fan_in)
    return normal_(tensor, 0.0, std)


def xavier_uniform_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound)


def xavier_normal_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = _fan_in_out(tensor)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return normal_(tensor, 0.0, std)
