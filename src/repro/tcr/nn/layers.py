"""Core layers: Linear, Conv2d, pooling, activations, dropout, flatten."""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.nn import init
from repro.tcr.nn.module import Module, Parameter
from repro.tcr.random import get_generator
from repro.tcr.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W^T + b`` with kaiming-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features), dtype=np.float32))
        init.kaiming_uniform_(self.weight)
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(np.empty(out_features, dtype=np.float32))
            init.uniform_(self.bias, -bound, bound)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")


class Conv2d(Module):
    """2-d convolution over (N, C, H, W) inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            np.empty((out_channels, in_channels, kh, kw), dtype=np.float32)
        )
        init.kaiming_uniform_(self.weight)
        if bias:
            bound = 1.0 / math.sqrt(in_channels * kh * kw)
            self.bias = Parameter(np.empty(out_channels, dtype=np.float32))
            init.uniform_(self.bias, -bound, bound)
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding})")


class MaxPool2d(Module):
    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size, stride=None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return ops.adaptive_avg_pool2d(x, self.output_size)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Softmax(Module):
    def __init__(self, dim: int = -1):
        super().__init__()
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        return ops.softmax(x, self.dim)


class Flatten(Module):
    def __init__(self, start_dim: int = 1, end_dim: int = -1):
        super().__init__()
        self.start_dim = start_dim
        self.end_dim = end_dim

    def forward(self, x: Tensor) -> Tensor:
        return ops.flatten(x, self.start_dim, self.end_dim)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (get_generator().random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask, device=x.device)


class Embedding(Module):
    """Lookup table mapping int64 indices to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(np.empty((num_embeddings, embedding_dim), dtype=np.float32))
        init.normal_(self.weight, 0.0, 1.0)

    def forward(self, index: Tensor) -> Tensor:
        return ops.getitem(self.weight, index)
