"""Functional interface (torch.nn.functional analogue)."""

from repro.tcr.ops import (
    adaptive_avg_pool2d,
    avg_pool2d,
    conv2d,
    gelu,
    leaky_relu,
    log_softmax,
    logsumexp,
    max_pool2d,
    one_hot,
    pad2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.tcr.tensor import Tensor


def linear(x: Tensor, weight: Tensor, bias: Tensor = None) -> Tensor:
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def mse_loss(input: Tensor, target: Tensor) -> Tensor:
    diff = input - target
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, target: Tensor) -> Tensor:
    from repro.tcr.nn.loss import CrossEntropyLoss
    return CrossEntropyLoss()(logits, target)


def normalize(x: Tensor, dim: int = -1, eps: float = 1e-8) -> Tensor:
    """L2-normalise along ``dim`` (used for embedding similarity)."""
    norm = (x * x).sum(dim=dim, keepdim=True).sqrt()
    return x / (norm + eps)


def cosine_similarity(a: Tensor, b: Tensor, dim: int = -1) -> Tensor:
    return (normalize(a, dim) * normalize(b, dim)).sum(dim=dim)


__all__ = [
    "adaptive_avg_pool2d", "avg_pool2d", "conv2d", "cosine_similarity",
    "cross_entropy", "gelu", "leaky_relu", "linear", "log_softmax",
    "logsumexp", "max_pool2d", "mse_loss", "normalize", "one_hot", "pad2d",
    "relu", "sigmoid", "softmax", "tanh",
]
