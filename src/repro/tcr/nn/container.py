"""Module containers: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.tcr.nn.module import Module
from repro.tcr.tensor import Tensor


class Sequential(Module):
    """Chain modules; forward feeds each output into the next module."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def append(self, module: Module) -> "Sequential":
        self.register_module(str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """A list of registered submodules (no implicit forward)."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._modules)), module)
        return self
