"""Neural-network building blocks on top of the tensor runtime."""

from repro.tcr.nn import functional, init
from repro.tcr.nn.container import ModuleList, Sequential
from repro.tcr.nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    Identity,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.tcr.nn.loss import (
    BCEWithLogitsLoss,
    CrossEntropyLoss,
    KLDivLoss,
    L1Loss,
    MSELoss,
    NLLLoss,
)
from repro.tcr.nn.module import Module, Parameter
from repro.tcr.nn.norm import BatchNorm2d, LayerNorm

__all__ = [
    "AdaptiveAvgPool2d", "AvgPool2d", "BatchNorm2d", "BCEWithLogitsLoss",
    "Conv2d", "CrossEntropyLoss", "Dropout", "Embedding", "Flatten",
    "Identity", "KLDivLoss", "L1Loss", "LayerNorm", "LeakyReLU", "Linear",
    "MaxPool2d", "Module", "ModuleList", "MSELoss", "NLLLoss", "Parameter",
    "ReLU", "Sequential", "Sigmoid", "Softmax", "Tanh", "functional", "init",
]
