"""Loss functions used by the paper's training loops."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.nn.module import Module
from repro.tcr.tensor import Tensor


def _reduce(value: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return ops.mean(value)
    if reduction == "sum":
        return ops.sum(value)
    if reduction == "none":
        return value
    raise ValueError(f"unknown reduction {reduction!r}")


class MSELoss(Module):
    """Mean squared error (Listing 5 computes this inline)."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, input: Tensor, target: Tensor) -> Tensor:
        if input.shape != target.shape:
            raise ShapeError(f"MSELoss shapes differ: {input.shape} vs {target.shape}")
        diff = input - target
        return _reduce(diff * diff, self.reduction)


class L1Loss(Module):
    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, input: Tensor, target: Tensor) -> Tensor:
        return _reduce(ops.abs(input - target), self.reduction)


class NLLLoss(Module):
    """Negative log-likelihood over log-probabilities and int64 targets."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, target: Tensor) -> Tensor:
        if log_probs.ndim != 2:
            raise ShapeError("NLLLoss expects (N, C) log-probabilities")
        n = log_probs.shape[0]
        idx = target.data.astype(np.int64)
        picked = ops.getitem(log_probs, (np.arange(n), idx))
        return _reduce(-picked, self.reduction)


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over raw logits and int64 class targets."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction
        self._nll = NLLLoss(reduction=reduction)

    def forward(self, logits: Tensor, target: Tensor) -> Tensor:
        return self._nll(ops.log_softmax(logits, dim=-1), target)


class BCEWithLogitsLoss(Module):
    """Numerically stable binary cross-entropy on logits."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, target: Tensor) -> Tensor:
        # max(x,0) - x*t + log(1 + exp(-|x|))
        zeros = ops.clamp(logits, min=0.0)
        loss = zeros - logits * target + ops.log1p(ops.exp(-ops.abs(logits)))
        return _reduce(loss, self.reduction)


class KLDivLoss(Module):
    """KL divergence between target probabilities and input log-probabilities."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, log_probs: Tensor, target_probs: Tensor) -> Tensor:
        eps = 1e-12
        target_log = ops.log(ops.clamp(target_probs, min=eps))
        value = target_probs * (target_log - log_probs)
        return _reduce(value, self.reduction)
