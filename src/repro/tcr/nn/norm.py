"""Normalisation layers (BatchNorm2d for ResNet, LayerNorm for text towers)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.autograd import no_grad
from repro.tcr.nn.module import Module, Parameter
from repro.tcr.tensor import Tensor


class BatchNorm2d(Module):
    """Batch normalisation over (N, C, H, W) with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", Tensor(np.zeros(num_features, dtype=np.float32)))
        self.register_buffer("running_var", Tensor(np.ones(num_features, dtype=np.float32)))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ShapeError(f"BatchNorm2d expects 4-d input, got {x.shape}")
        if x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d configured for {self.num_features} channels, got {x.shape[1]}"
            )
        if self.training:
            mean = ops.mean(x, dim=(0, 2, 3), keepdim=True)
            var = ops.var(x, dim=(0, 2, 3), keepdim=True, unbiased=False)
            with no_grad():
                m = self.momentum
                self.running_mean.data = (
                    (1 - m) * self.running_mean.data + m * mean.data.reshape(-1)
                )
                n = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
                unbias = n / max(n - 1, 1)
                self.running_var.data = (
                    (1 - m) * self.running_var.data + m * var.data.reshape(-1) * unbias
                )
        else:
            mean = ops.reshape(self.running_mean, (1, -1, 1, 1))
            var = ops.reshape(self.running_var, (1, -1, 1, 1))
        inv = ops.div(1.0, ops.sqrt(var + self.eps))
        normed = (x - mean) * inv
        w = ops.reshape(self.weight, (1, -1, 1, 1))
        b = ops.reshape(self.bias, (1, -1, 1, 1))
        return normed * w + b


class LayerNorm(Module):
    """Layer normalisation over the trailing dimension(s)."""

    def __init__(self, normalized_shape, eps: float = 1e-5):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = Parameter(np.ones(self.normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(self.normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        dims = tuple(range(x.ndim - len(self.normalized_shape), x.ndim))
        mean = ops.mean(x, dim=dims, keepdim=True)
        var = ops.var(x, dim=dims, keepdim=True, unbiased=False)
        normed = (x - mean) / ops.sqrt(var + self.eps)
        return normed * self.weight + self.bias
