"""``repro.tcr`` — the Tensor Computation Runtime substrate.

A from-scratch stand-in for PyTorch: numpy-backed tensors with reverse-mode
autograd, a functional op library, ``nn`` modules, optimisers, einops-style
``rearrange`` and (simulated) device placement. The TDP engine (``repro.core``)
compiles SQL to programs over this runtime, exactly as the paper compiles SQL
to PyTorch programs.
"""

from repro.tcr import einops, nn, optim, ops
from repro.tcr.autograd import enable_grad, grad_of, is_grad_enabled, no_grad
from repro.tcr.device import CPU, CUDA, Device, DeviceProfile, as_device
from repro.tcr.ops import (
    cat,
    matmul,
    one_hot,
    softmax,
    stack,
    where,
)
from repro.tcr.random import (
    bernoulli,
    fork_generator,
    get_generator,
    manual_seed,
    normal,
    rand,
    randint,
    randn,
    randperm,
)
from repro.tcr.serialization import load_into, load_state, save_state
from repro.tcr.tensor import (
    Tensor,
    arange,
    ensure_tensor,
    eye,
    from_numpy,
    full,
    linspace,
    ones,
    ones_like,
    tensor,
    zeros,
    zeros_like,
)

__all__ = [
    "CPU", "CUDA", "Device", "DeviceProfile", "Tensor", "arange", "as_device",
    "bernoulli", "cat", "einops", "enable_grad", "ensure_tensor", "eye",
    "fork_generator", "from_numpy", "full", "get_generator", "grad_of",
    "is_grad_enabled", "linspace", "load_into", "load_state", "manual_seed",
    "matmul", "nn", "no_grad", "normal", "one_hot", "ones", "ones_like",
    "ops", "optim", "rand", "randint", "randn", "randperm", "save_state",
    "softmax", "stack", "tensor", "where", "zeros", "zeros_like",
]
