"""Seeded random number generation for the tensor runtime.

A single module-level generator keeps every experiment reproducible:
``manual_seed`` resets it exactly like ``torch.manual_seed``.
"""

from __future__ import annotations

import numpy as np

from repro.tcr.tensor import Tensor

_generator = np.random.default_rng(0)


def manual_seed(seed: int) -> None:
    """Reset the global generator (mirrors torch.manual_seed)."""
    global _generator
    _generator = np.random.default_rng(seed)


def get_generator() -> np.random.Generator:
    return _generator


def fork_generator(seed: int) -> np.random.Generator:
    """Return an independent generator without disturbing the global one."""
    return np.random.default_rng(seed)


def randn(*shape, device=None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    data = _generator.standard_normal(shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad, device=device)


def rand(*shape, device=None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    data = _generator.random(shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad, device=device)


def randint(low: int, high: int, shape, device=None) -> Tensor:
    data = _generator.integers(low, high, size=tuple(shape), dtype=np.int64)
    return Tensor(data, device=device)


def randperm(n: int, device=None) -> Tensor:
    return Tensor(_generator.permutation(n).astype(np.int64), device=device)


def bernoulli(p, shape, device=None) -> Tensor:
    data = (_generator.random(tuple(shape)) < p)
    return Tensor(data, device=device)


def normal(mean: float, std: float, shape, device=None) -> Tensor:
    data = _generator.normal(mean, std, size=tuple(shape)).astype(np.float32)
    return Tensor(data, device=device)
