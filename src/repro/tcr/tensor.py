"""The ``Tensor`` type: a numpy-backed, autograd-capable multi-d array.

This mirrors the subset of ``torch.Tensor`` that the paper's listings use:
arithmetic with broadcasting, matmul, reductions, shape ops, indexing,
activations, ``backward()``, ``detach()``, ``item()``, device placement and
dtype casts. Operator implementations live in :mod:`repro.tcr.ops`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AutogradError, ShapeError
from repro.tcr import dtype as dtypes
from repro.tcr.autograd import BackwardFn, is_grad_enabled, run_backward
from repro.tcr.device import CPU, Device, as_device


class Tensor:
    """A multidimensional array with optional gradient tracking.

    Attributes:
        data: the underlying numpy array (never shared with autograd state).
        requires_grad: whether operations on this tensor are recorded.
        grad: accumulated gradient (numpy array) after ``backward()``.
        device: placement tag (``cpu`` or simulated ``cuda``).
    """

    __slots__ = ("data", "requires_grad", "grad", "device", "_parents", "_backward", "_op",
                 # Lazily-assigned content-identity metadata for the engine's
                 # materialization cache (see repro.core.tensor_cache).
                 # _cache_tag_refs counts concurrent queries sharing one
                 # in-flight tag on a shared base-column tensor.
                 "_cache_token", "_cache_tag", "_cache_tag_refs")

    def __init__(self, data, requires_grad: bool = False, device=None, dtype=None):
        array = np.asarray(data)
        if dtype is not None:
            array = array.astype(dtype, copy=False)
        elif array.dtype == np.float64 or array.dtype.kind not in "fiub":
            array = dtypes.canonicalize(array)
        if requires_grad and not dtypes.is_float(array.dtype):
            raise AutogradError("only floating-point tensors can require gradients")
        self.data = array
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self.device = as_device(device)
        self._parents: tuple = ()
        self._backward: Optional[BackwardFn] = None
        self._op = ""

    # ------------------------------------------------------------------
    # Internal graph-node constructor
    # ------------------------------------------------------------------
    @classmethod
    def _make(cls, data: np.ndarray, parents: Sequence["Tensor"], backward: Optional[BackwardFn],
              op: str, device: Device) -> "Tensor":
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        out.device = device
        grad_needed = (
            is_grad_enabled()
            and backward is not None
            and any(p.requires_grad for p in parents)
        )
        if grad_needed:
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        else:
            out.requires_grad = False
            out._parents = ()
            out._backward = None
        out._op = op
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        from repro.tcr import ops
        if self.ndim < 2:
            return self
        return ops.permute(self, tuple(reversed(range(self.ndim))))

    @property
    def is_leaf(self) -> bool:
        return self._backward is None

    def numel(self) -> int:
        return self.data.size

    def size(self, dim: Optional[int] = None):
        if dim is None:
            return self.data.shape
        return self.data.shape[dim]

    def dim(self) -> int:
        return self.data.ndim

    def __len__(self) -> int:
        if self.ndim == 0:
            raise ShapeError("len() of a 0-d tensor")
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        dev_note = f", device='{self.device}'" if self.device != CPU else ""
        return f"tensor({np.array2string(self.data, precision=4, threshold=20)}{dev_note}{grad_note})"

    def __bool__(self) -> bool:
        if self.data.size != 1:
            raise ShapeError("truth value of a multi-element tensor is ambiguous")
        return bool(self.data.reshape(()))

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Return the underlying array (detached view)."""
        if self.requires_grad:
            raise AutogradError("call .detach().numpy() on a tensor that requires grad")
        return self.data

    def tolist(self):
        return self.data.tolist()

    def item(self):
        if self.data.size != 1:
            raise ShapeError(f"item() requires a single-element tensor, got shape {self.shape}")
        return self.data.reshape(()).item()

    def detach(self) -> "Tensor":
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.device = self.device
        out.requires_grad = False
        out._parents = ()
        out._backward = None
        out._op = "detach"
        return out

    def clone(self) -> "Tensor":
        from repro.tcr import ops
        return ops.clone(self)

    def to(self, device=None, dtype=None) -> "Tensor":
        """Move to a device and/or cast dtype (differentiable for float casts)."""
        from repro.tcr import ops
        out = self
        if dtype is not None and np.dtype(dtype) != self.dtype:
            out = ops.astype(out, dtype)
        if device is not None:
            target = as_device(device)
            if target != out.device:
                out = ops.to_device(out, target)
        return out

    def cpu(self) -> "Tensor":
        return self.to(device="cpu")

    def cuda(self) -> "Tensor":
        return self.to(device="cuda")

    def astype(self, dtype) -> "Tensor":
        from repro.tcr import ops
        return ops.astype(self, dtype)

    def float(self) -> "Tensor":
        return self.astype(np.float32)

    def double(self) -> "Tensor":
        return self.astype(np.float64)

    def long(self) -> "Tensor":
        return self.astype(np.int64)

    def bool(self) -> "Tensor":
        return self.astype(np.bool_)

    # ------------------------------------------------------------------
    # Autograd entry points
    # ------------------------------------------------------------------
    def backward(self, gradient: "Tensor | np.ndarray | None" = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if gradient is None:
            if self.data.size != 1:
                raise AutogradError("grad can be implicitly created only for scalar outputs")
            seed = np.ones_like(self.data)
        elif isinstance(gradient, Tensor):
            seed = gradient.data
        else:
            seed = np.asarray(gradient, dtype=self.data.dtype)
        if seed.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {seed.shape} does not match output shape {self.data.shape}"
            )
        run_backward(self, seed)

    def zero_grad(self) -> None:
        self.grad = None

    def requires_grad_(self, flag: bool = True) -> "Tensor":
        if flag and not dtypes.is_float(self.dtype):
            raise AutogradError("only floating-point tensors can require gradients")
        self.requires_grad = flag
        return self

    # ------------------------------------------------------------------
    # Arithmetic operators (delegating to ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.tcr import ops
        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.tcr import ops
        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.tcr import ops
        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.tcr import ops
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.tcr import ops
        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.tcr import ops
        return ops.div(other, self)

    def __pow__(self, other):
        from repro.tcr import ops
        return ops.pow(self, other)

    def __neg__(self):
        from repro.tcr import ops
        return ops.neg(self)

    def __matmul__(self, other):
        from repro.tcr import ops
        return ops.matmul(self, other)

    def __mod__(self, other):
        from repro.tcr import ops
        return ops.remainder(self, other)

    # Comparisons (never differentiable; produce bool tensors).
    def __eq__(self, other):  # type: ignore[override]
        from repro.tcr import ops
        return ops.eq(self, other)

    def __ne__(self, other):  # type: ignore[override]
        from repro.tcr import ops
        return ops.ne(self, other)

    def __lt__(self, other):
        from repro.tcr import ops
        return ops.lt(self, other)

    def __le__(self, other):
        from repro.tcr import ops
        return ops.le(self, other)

    def __gt__(self, other):
        from repro.tcr import ops
        return ops.gt(self, other)

    def __ge__(self, other):
        from repro.tcr import ops
        return ops.ge(self, other)

    __hash__ = object.__hash__

    # Logical operators on bool tensors.
    def __invert__(self):
        from repro.tcr import ops
        return ops.logical_not(self)

    def __and__(self, other):
        from repro.tcr import ops
        return ops.logical_and(self, other)

    def __or__(self, other):
        from repro.tcr import ops
        return ops.logical_or(self, other)

    def __xor__(self, other):
        from repro.tcr import ops
        return ops.logical_xor(self, other)

    # Indexing.
    def __getitem__(self, index):
        from repro.tcr import ops
        return ops.getitem(self, index)

    def __setitem__(self, index, value):
        if self.requires_grad or self._backward is not None:
            raise AutogradError("in-place assignment on a graph tensor is not supported")
        if isinstance(index, Tensor):
            index = index.data
        elif isinstance(index, tuple):
            index = tuple(i.data if isinstance(i, Tensor) else i for i in index)
        if isinstance(value, Tensor):
            value = value.data
        self.data[index] = value

    # ------------------------------------------------------------------
    # Method forms of common ops
    # ------------------------------------------------------------------
    def add(self, other):
        return self + other

    def mul(self, other):
        return self * other

    def matmul(self, other):
        from repro.tcr import ops
        return ops.matmul(self, other)

    def mm(self, other):
        from repro.tcr import ops
        return ops.matmul(self, other)

    def exp(self):
        from repro.tcr import ops
        return ops.exp(self)

    def log(self):
        from repro.tcr import ops
        return ops.log(self)

    def sqrt(self):
        from repro.tcr import ops
        return ops.sqrt(self)

    def abs(self):
        from repro.tcr import ops
        return ops.abs(self)

    def clamp(self, min=None, max=None):
        from repro.tcr import ops
        return ops.clamp(self, min, max)

    def sigmoid(self):
        from repro.tcr import ops
        return ops.sigmoid(self)

    def tanh(self):
        from repro.tcr import ops
        return ops.tanh(self)

    def relu(self):
        from repro.tcr import ops
        return ops.relu(self)

    def softmax(self, dim: int = -1):
        from repro.tcr import ops
        return ops.softmax(self, dim)

    def log_softmax(self, dim: int = -1):
        from repro.tcr import ops
        return ops.log_softmax(self, dim)

    def sum(self, dim=None, keepdim: bool = False):
        from repro.tcr import ops
        return ops.sum(self, dim, keepdim)

    def mean(self, dim=None, keepdim: bool = False):
        from repro.tcr import ops
        return ops.mean(self, dim, keepdim)

    def var(self, dim=None, keepdim: bool = False, unbiased: bool = True):
        from repro.tcr import ops
        return ops.var(self, dim, keepdim, unbiased)

    def std(self, dim=None, keepdim: bool = False, unbiased: bool = True):
        from repro.tcr import ops
        return ops.std(self, dim, keepdim, unbiased)

    def max(self, dim=None, keepdim: bool = False):
        from repro.tcr import ops
        return ops.max(self, dim, keepdim)

    def min(self, dim=None, keepdim: bool = False):
        from repro.tcr import ops
        return ops.min(self, dim, keepdim)

    def argmax(self, dim=None, keepdim: bool = False):
        from repro.tcr import ops
        return ops.argmax(self, dim, keepdim)

    def argmin(self, dim=None, keepdim: bool = False):
        from repro.tcr import ops
        return ops.argmin(self, dim, keepdim)

    def cumsum(self, dim: int = 0):
        from repro.tcr import ops
        return ops.cumsum(self, dim)

    def all(self, dim=None):
        from repro.tcr import ops
        return ops.all(self, dim)

    def any(self, dim=None):
        from repro.tcr import ops
        return ops.any(self, dim)

    def reshape(self, *shape):
        from repro.tcr import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def view(self, *shape):
        return self.reshape(*shape)

    def transpose(self, dim0: int, dim1: int):
        from repro.tcr import ops
        return ops.transpose(self, dim0, dim1)

    def permute(self, *dims):
        from repro.tcr import ops
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        return ops.permute(self, dims)

    def squeeze(self, dim=None):
        from repro.tcr import ops
        return ops.squeeze(self, dim)

    def unsqueeze(self, dim: int):
        from repro.tcr import ops
        return ops.unsqueeze(self, dim)

    def flatten(self, start_dim: int = 0, end_dim: int = -1):
        from repro.tcr import ops
        return ops.flatten(self, start_dim, end_dim)

    def expand(self, *shape):
        from repro.tcr import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.broadcast_to(self, shape)

    def broadcast_to(self, shape):
        from repro.tcr import ops
        return ops.broadcast_to(self, tuple(shape))

    def repeat(self, *reps):
        from repro.tcr import ops
        if len(reps) == 1 and isinstance(reps[0], (tuple, list)):
            reps = tuple(reps[0])
        return ops.tile(self, reps)

    def gather(self, dim: int, index: "Tensor"):
        from repro.tcr import ops
        return ops.gather(self, dim, index)

    def index_select(self, dim: int, index: "Tensor"):
        from repro.tcr import ops
        return ops.index_select(self, dim, index)

    def masked_select(self, mask: "Tensor"):
        from repro.tcr import ops
        return ops.masked_select(self, mask)

    def sort(self, dim: int = -1, descending: bool = False):
        from repro.tcr import ops
        return ops.sort(self, dim, descending)

    def argsort(self, dim: int = -1, descending: bool = False):
        from repro.tcr import ops
        return ops.argsort(self, dim, descending)

    def topk(self, k: int, dim: int = -1, largest: bool = True):
        from repro.tcr import ops
        return ops.topk(self, k, dim, largest)

    def unique(self, return_counts: bool = False):
        from repro.tcr import ops
        return ops.unique(self, return_counts=return_counts)


TensorLike = "Tensor | np.ndarray | float | int | bool | list | tuple"


def ensure_tensor(value, device: Optional[Device] = None, dtype=None) -> Tensor:
    """Coerce scalars/arrays/lists into a Tensor on ``device``."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, device=device, dtype=dtype)


# ----------------------------------------------------------------------
# Creation functions (torch-style free functions)
# ----------------------------------------------------------------------

def tensor(data, dtype=None, device=None, requires_grad: bool = False) -> Tensor:
    return Tensor(data, requires_grad=requires_grad, device=device, dtype=dtype)


def from_numpy(array: np.ndarray, device=None) -> Tensor:
    return Tensor(array, device=device)


def zeros(*shape, dtype=np.float32, device=None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad, device=device)

def ones(*shape, dtype=np.float32, device=None, requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad, device=device)


def full(shape, fill_value, dtype=None, device=None) -> Tensor:
    if dtype is None:
        dtype = np.float32 if isinstance(fill_value, float) else np.int64
    return Tensor(np.full(shape, fill_value, dtype=dtype), device=device)


def zeros_like(t: Tensor, dtype=None) -> Tensor:
    return Tensor(np.zeros_like(t.data, dtype=dtype), device=t.device)


def ones_like(t: Tensor, dtype=None) -> Tensor:
    return Tensor(np.ones_like(t.data, dtype=dtype), device=t.device)


def arange(*args, dtype=None, device=None) -> Tensor:
    array = np.arange(*args)
    if dtype is not None:
        array = array.astype(dtype)
    elif array.dtype.kind == "i":
        array = array.astype(np.int64)
    else:
        array = array.astype(np.float32)
    return Tensor(array, device=device)


def linspace(start, stop, steps, device=None) -> Tensor:
    return Tensor(np.linspace(start, stop, steps, dtype=np.float32), device=device)


def eye(n: int, m: Optional[int] = None, device=None) -> Tensor:
    return Tensor(np.eye(n, m, dtype=np.float32), device=device)
