"""Shared helpers for operator implementations."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.tcr.device import Device, same_device
from repro.tcr.tensor import Tensor, ensure_tensor


def coerce_pair(a, b) -> Tuple[Tensor, Tensor, Device]:
    """Promote a binary op's operands to tensors on a common device.

    Python scalars / numpy arrays are wrapped on the device of the tensor
    operand; two tensor operands must already share a device.
    """
    if isinstance(a, Tensor) and isinstance(b, Tensor):
        device = same_device(a.device, b.device)
        return a, b, device
    if isinstance(a, Tensor):
        return a, ensure_tensor(b, device=a.device), a.device
    if isinstance(b, Tensor):
        return ensure_tensor(a, device=b.device), b, b.device
    a_t = ensure_tensor(a)
    b_t = ensure_tensor(b, device=a_t.device)
    return a_t, b_t, a_t.device


def normalize_dim(dim: int, ndim: int) -> int:
    """Convert a possibly-negative axis to its positive form with bounds check."""
    if not -ndim <= dim < max(ndim, 1):
        raise IndexError(f"dim {dim} out of range for tensor with {ndim} dimensions")
    return dim % ndim if ndim else 0


def reduction_axes(dim, ndim: int) -> Optional[Tuple[int, ...]]:
    """Normalise a reduction's ``dim`` argument to a tuple of axes (None = all)."""
    if dim is None:
        return None
    if isinstance(dim, (tuple, list)):
        return tuple(normalize_dim(d, ndim) for d in dim)
    return (normalize_dim(dim, ndim),)


def expand_reduced(grad: np.ndarray, shape: tuple, axes: Optional[Tuple[int, ...]],
                   keepdim: bool) -> np.ndarray:
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axes is None:
        return np.broadcast_to(grad, shape)
    if not keepdim:
        for axis in sorted(axes):
            grad = np.expand_dims(grad, axis)
    return np.broadcast_to(grad, shape)
