"""Sorting, top-k, unique and search operators.

The relational engine leans on these: ORDER BY lowers to (lex)argsort,
LIMIT+ORDER BY to topk, DISTINCT and group-key factorisation to unique.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tcr.ops.common import normalize_dim
from repro.tcr.tensor import Tensor


def argsort(a: Tensor, dim: int = -1, descending: bool = False, stable: bool = True) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    kind = "stable" if stable else "quicksort"
    if descending:
        # Stable descending: sort the negated rank trick via flipping a stable
        # ascending sort of the reversed array.
        order = np.argsort(-a.data if a.dtype.kind in "fiu" else a.data[::-1], axis=axis, kind=kind)
        if a.dtype.kind not in "fiu":
            order = np.flip(a.shape[axis] - 1 - order, axis=axis)
    else:
        order = np.argsort(a.data, axis=axis, kind=kind)
    return Tensor._make(order.astype(np.int64), (a,), None, "argsort", a.device)


def sort(a: Tensor, dim: int = -1, descending: bool = False):
    axis = normalize_dim(dim, a.ndim)
    indices = argsort(a, dim=axis, descending=descending)
    values = np.take_along_axis(a.data, indices.data, axis=axis)
    idx_data = indices.data
    shape = a.shape

    def backward(grad):
        out = np.zeros(shape, dtype=grad.dtype)
        np.put_along_axis(out, idx_data, grad, axis=axis)
        return (out,)

    values_t = Tensor._make(values, (a,), backward, "sort", a.device)
    return values_t, indices


def topk(a: Tensor, k: int, dim: int = -1, largest: bool = True):
    axis = normalize_dim(dim, a.ndim)
    if k < 0 or k > a.shape[axis]:
        raise ShapeError(f"topk k={k} out of range for dim of size {a.shape[axis]}")
    order = argsort(a, dim=axis, descending=largest).data
    take = [slice(None)] * a.ndim
    take[axis] = slice(0, k)
    idx = np.ascontiguousarray(order[tuple(take)])
    values = np.take_along_axis(a.data, idx, axis=axis)
    shape = a.shape

    def backward(grad):
        out = np.zeros(shape, dtype=grad.dtype)
        np.put_along_axis(out, idx, grad, axis=axis)
        return (out,)

    values_t = Tensor._make(values, (a,), backward, "topk", a.device)
    indices_t = Tensor._make(idx.astype(np.int64), (a,), None, "topk_idx", a.device)
    return values_t, indices_t


def unique(a: Tensor, return_inverse: bool = False, return_counts: bool = False):
    results = np.unique(a.data, return_inverse=return_inverse, return_counts=return_counts)
    if not (return_inverse or return_counts):
        return Tensor._make(results, (a,), None, "unique", a.device)
    out = [Tensor._make(results[0], (a,), None, "unique", a.device)]
    pos = 1
    if return_inverse:
        out.append(Tensor._make(results[pos].reshape(a.shape).astype(np.int64),
                                (a,), None, "unique_inv", a.device))
        pos += 1
    if return_counts:
        out.append(Tensor._make(results[pos].astype(np.int64), (a,), None, "unique_cnt", a.device))
    return tuple(out)


def searchsorted(sorted_seq: Tensor, values: Tensor, side: str = "left") -> Tensor:
    if sorted_seq.ndim != 1:
        raise ShapeError("searchsorted expects a 1-d sorted sequence")
    idx = np.searchsorted(sorted_seq.data, values.data, side=side)
    return Tensor._make(np.asarray(idx, dtype=np.int64), (sorted_seq, values), None,
                        "searchsorted", sorted_seq.device)


def bincount(a: Tensor, minlength: int = 0) -> Tensor:
    if a.ndim != 1:
        raise ShapeError("bincount expects a 1-d tensor")
    data = np.bincount(a.data, minlength=minlength)
    return Tensor._make(data.astype(np.int64), (a,), None, "bincount", a.device)


def nonzero(a: Tensor) -> Tensor:
    idx = np.argwhere(a.data)
    return Tensor._make(idx.astype(np.int64), (a,), None, "nonzero", a.device)


def lexsort_rows(keys: Sequence[Tensor]) -> Tensor:
    """Stable row order by multiple 1-d key columns (first key most significant).

    This is the tensor-level primitive behind multi-column ORDER BY and the
    sort-based group-by: ``np.lexsort`` sorts by the *last* key first, so the
    caller's most-significant-first list is reversed here.
    """
    if not keys:
        raise ShapeError("lexsort_rows requires at least one key")
    arrays = [k.data for k in keys]
    length = arrays[0].shape[0]
    for arr in arrays:
        if arr.ndim != 1 or arr.shape[0] != length:
            raise ShapeError("lexsort_rows keys must be 1-d and equal length")
    order = np.lexsort(tuple(reversed(arrays)))
    return Tensor._make(order.astype(np.int64), tuple(keys), None, "lexsort", keys[0].device)
