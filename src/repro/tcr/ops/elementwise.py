"""Element-wise arithmetic, comparison and logical operators."""

from __future__ import annotations

import numpy as np

from repro.tcr import dtype as dtypes
from repro.tcr.ops.common import coerce_pair
from repro.tcr.tensor import Tensor


def _binary(a, b, op_name, forward, grad_a, grad_b) -> Tensor:
    a, b, device = coerce_pair(a, b)
    data = forward(a.data, b.data)
    a_data, b_data = a.data, b.data

    def backward(grad):
        ga = grad_a(grad, a_data, b_data, data) if a.requires_grad else None
        gb = grad_b(grad, a_data, b_data, data) if b.requires_grad else None
        return (ga, gb)

    return Tensor._make(data, (a, b), backward, op_name, device)


def add(a, b) -> Tensor:
    return _binary(a, b, "add", np.add,
                   lambda g, x, y, o: g,
                   lambda g, x, y, o: g)


def sub(a, b) -> Tensor:
    return _binary(a, b, "sub", np.subtract,
                   lambda g, x, y, o: g,
                   lambda g, x, y, o: -g)


def mul(a, b) -> Tensor:
    return _binary(a, b, "mul", np.multiply,
                   lambda g, x, y, o: g * y,
                   lambda g, x, y, o: g * x)


def div(a, b) -> Tensor:
    def forward(x, y):
        if dtypes.is_int(x.dtype) and dtypes.is_int(y.dtype):
            return np.true_divide(x, y).astype(np.float32)
        return np.true_divide(x, y)

    return _binary(a, b, "div", forward,
                   lambda g, x, y, o: g / y,
                   lambda g, x, y, o: -g * x / (y * y))


def pow(a, b) -> Tensor:
    def grad_base(g, x, y, o):
        return g * y * np.power(x, y - 1)

    def grad_exp(g, x, y, o):
        with np.errstate(divide="ignore", invalid="ignore"):
            logx = np.where(x > 0, np.log(np.where(x > 0, x, 1.0)), 0.0)
        return g * o * logx

    return _binary(a, b, "pow", np.power, grad_base, grad_exp)


def remainder(a, b) -> Tensor:
    return _binary(a, b, "remainder", np.remainder,
                   lambda g, x, y, o: g,
                   lambda g, x, y, o: -g * np.floor_divide(x, y))


def maximum(a, b) -> Tensor:
    return _binary(a, b, "maximum", np.maximum,
                   lambda g, x, y, o: g * (x >= y),
                   lambda g, x, y, o: g * (y > x))


def minimum(a, b) -> Tensor:
    return _binary(a, b, "minimum", np.minimum,
                   lambda g, x, y, o: g * (x <= y),
                   lambda g, x, y, o: g * (y < x))


def _unary(a: Tensor, op_name, forward, grad_fn) -> Tensor:
    data = forward(a.data)
    a_data = a.data

    def backward(grad):
        return (grad_fn(grad, a_data, data),)

    return Tensor._make(data, (a,), backward, op_name, a.device)


def neg(a: Tensor) -> Tensor:
    return _unary(a, "neg", np.negative, lambda g, x, o: -g)


def exp(a: Tensor) -> Tensor:
    return _unary(a, "exp", np.exp, lambda g, x, o: g * o)


def log(a: Tensor) -> Tensor:
    return _unary(a, "log", np.log, lambda g, x, o: g / x)


def log1p(a: Tensor) -> Tensor:
    return _unary(a, "log1p", np.log1p, lambda g, x, o: g / (1.0 + x))


def sqrt(a: Tensor) -> Tensor:
    return _unary(a, "sqrt", np.sqrt, lambda g, x, o: g / (2.0 * o))


def abs(a: Tensor) -> Tensor:
    return _unary(a, "abs", np.abs, lambda g, x, o: g * np.sign(x))


def sign(a: Tensor) -> Tensor:
    return Tensor._make(np.sign(a.data), (a,), None, "sign", a.device)


def floor(a: Tensor) -> Tensor:
    return Tensor._make(np.floor(a.data), (a,), None, "floor", a.device)


def ceil(a: Tensor) -> Tensor:
    return Tensor._make(np.ceil(a.data), (a,), None, "ceil", a.device)


def round(a: Tensor) -> Tensor:
    return Tensor._make(np.round(a.data), (a,), None, "round", a.device)


def clamp(a: Tensor, min=None, max=None) -> Tensor:
    if min is None and max is None:
        raise ValueError("clamp requires at least one of min/max")

    def forward(x):
        return np.clip(x, min, max)

    def grad_fn(g, x, o):
        mask = np.ones_like(g)
        if min is not None:
            mask = mask * (x >= min)
        if max is not None:
            mask = mask * (x <= max)
        return g * mask

    return _unary(a, "clamp", forward, grad_fn)


def where(cond, a, b) -> Tensor:
    a, b, device = coerce_pair(a, b)
    cond_t = cond if isinstance(cond, Tensor) else Tensor(np.asarray(cond))
    cond_data = cond_t.data.astype(bool)
    data = np.where(cond_data, a.data, b.data)

    def backward(grad):
        ga = np.where(cond_data, grad, 0) if a.requires_grad else None
        gb = np.where(cond_data, 0, grad) if b.requires_grad else None
        return (ga, gb)

    return Tensor._make(data, (a, b), backward, "where", device)


# ----------------------------------------------------------------------
# Comparisons (non-differentiable; output dtype bool)
# ----------------------------------------------------------------------

def _compare(a, b, op_name, forward) -> Tensor:
    a, b, device = coerce_pair(a, b)
    return Tensor._make(forward(a.data, b.data), (a, b), None, op_name, device)


def eq(a, b) -> Tensor:
    return _compare(a, b, "eq", np.equal)


def ne(a, b) -> Tensor:
    return _compare(a, b, "ne", np.not_equal)


def lt(a, b) -> Tensor:
    return _compare(a, b, "lt", np.less)


def le(a, b) -> Tensor:
    return _compare(a, b, "le", np.less_equal)


def gt(a, b) -> Tensor:
    return _compare(a, b, "gt", np.greater)


def ge(a, b) -> Tensor:
    return _compare(a, b, "ge", np.greater_equal)


def isclose(a, b, rtol=1e-5, atol=1e-8) -> Tensor:
    a, b, device = coerce_pair(a, b)
    return Tensor._make(np.isclose(a.data, b.data, rtol=rtol, atol=atol),
                        (a, b), None, "isclose", device)


def isnan(a: Tensor) -> Tensor:
    return Tensor._make(np.isnan(a.data), (a,), None, "isnan", a.device)


# ----------------------------------------------------------------------
# Logical ops on bool tensors
# ----------------------------------------------------------------------

def logical_not(a: Tensor) -> Tensor:
    return Tensor._make(np.logical_not(a.data), (a,), None, "logical_not", a.device)


def logical_and(a, b) -> Tensor:
    return _compare(a, b, "logical_and", np.logical_and)


def logical_or(a, b) -> Tensor:
    return _compare(a, b, "logical_or", np.logical_or)


def logical_xor(a, b) -> Tensor:
    return _compare(a, b, "logical_xor", np.logical_xor)


# ----------------------------------------------------------------------
# Casting / device movement / identity
# ----------------------------------------------------------------------

def astype(a: Tensor, dtype) -> Tensor:
    target = np.dtype(dtype)
    data = a.data.astype(target)
    if dtypes.is_float(a.dtype) and dtypes.is_float(target):
        source = a.dtype

        def backward(grad):
            return (grad.astype(source),)
    else:
        backward = None
    return Tensor._make(data, (a,), backward, "astype", a.device)


def to_device(a: Tensor, device) -> Tensor:
    # Simulated transfer: a metadata retag. Copying here would charge the
    # accelerator path hundreds of MB of artificial memcpy per query; tensors
    # are immutable-by-convention in the engine, so aliasing is safe.
    def backward(grad):
        return (grad,)

    return Tensor._make(a.data, (a,), backward, "to_device", device)


def clone(a: Tensor) -> Tensor:
    def backward(grad):
        return (grad,)

    return Tensor._make(a.data.copy(), (a,), backward, "clone", a.device)
