"""Reduction operators: sum/mean/var/max/min/argmax/cumsum/logsumexp."""

from __future__ import annotations

import builtins

import numpy as np

from repro.tcr.ops.common import expand_reduced, normalize_dim, reduction_axes
from repro.tcr.tensor import Tensor


def sum(a: Tensor, dim=None, keepdim: bool = False) -> Tensor:
    axes = reduction_axes(dim, a.ndim)
    data = a.data.sum(axis=axes, keepdims=keepdim)
    shape = a.shape

    def backward(grad):
        return (expand_reduced(grad, shape, axes, keepdim),)

    return Tensor._make(np.asarray(data), (a,), backward, "sum", a.device)


def mean(a: Tensor, dim=None, keepdim: bool = False) -> Tensor:
    axes = reduction_axes(dim, a.ndim)
    data = a.data.mean(axis=axes, keepdims=keepdim)
    shape = a.shape
    if axes is None:
        count = a.data.size
    else:
        count = 1
        for axis in axes:
            count *= shape[axis]

    def backward(grad):
        return (expand_reduced(grad, shape, axes, keepdim) / count,)

    return Tensor._make(np.asarray(data), (a,), backward, "mean", a.device)


def var(a: Tensor, dim=None, keepdim: bool = False, unbiased: bool = True) -> Tensor:
    axes = reduction_axes(dim, a.ndim)
    ddof = 1 if unbiased else 0
    data = a.data.var(axis=axes, keepdims=keepdim, ddof=ddof)
    shape = a.shape
    if axes is None:
        count = a.data.size
    else:
        count = 1
        for axis in axes:
            count *= shape[axis]
    centred = a.data - a.data.mean(axis=axes, keepdims=True)
    denom = builtins.max(count - ddof, 1)

    def backward(grad):
        g = expand_reduced(grad, shape, axes, keepdim)
        return (2.0 * centred * g / denom,)

    return Tensor._make(np.asarray(data), (a,), backward, "var", a.device)


def std(a: Tensor, dim=None, keepdim: bool = False, unbiased: bool = True) -> Tensor:
    from repro.tcr.ops.elementwise import sqrt
    return sqrt(var(a, dim, keepdim, unbiased))


def _extremum(a: Tensor, dim, keepdim: bool, np_fn, np_arg_fn, op_name):
    if dim is None:
        data = np_fn(a.data)
        flat_arg = np_arg_fn(a.data)
        shape = a.shape

        def backward(grad):
            out = np.zeros(a.data.size, dtype=grad.dtype)
            out[flat_arg] = grad
            return (out.reshape(shape),)

        return Tensor._make(np.asarray(data), (a,), backward, op_name, a.device)

    axis = normalize_dim(dim, a.ndim)
    values = np_fn(a.data, axis=axis, keepdims=keepdim)
    indices = np_arg_fn(a.data, axis=axis)
    shape = a.shape

    def backward(grad):
        g = grad if keepdim else np.expand_dims(grad, axis)
        out = np.zeros(shape, dtype=g.dtype)
        np.put_along_axis(out, np.expand_dims(indices, axis), g, axis=axis)
        return (out,)

    values_t = Tensor._make(np.asarray(values), (a,), backward, op_name, a.device)
    index_data = indices if keepdim is False else np.expand_dims(indices, axis)
    indices_t = Tensor._make(index_data.astype(np.int64), (a,), None, op_name + "_idx", a.device)
    return values_t, indices_t


def max(a: Tensor, dim=None, keepdim: bool = False):
    return _extremum(a, dim, keepdim, np.max, np.argmax, "max")


def min(a: Tensor, dim=None, keepdim: bool = False):
    return _extremum(a, dim, keepdim, np.min, np.argmin, "min")


def argmax(a: Tensor, dim=None, keepdim: bool = False) -> Tensor:
    if dim is None:
        data = np.asarray(np.argmax(a.data))
    else:
        axis = normalize_dim(dim, a.ndim)
        data = np.argmax(a.data, axis=axis)
        if keepdim:
            data = np.expand_dims(data, axis)
    return Tensor._make(data.astype(np.int64), (a,), None, "argmax", a.device)


def argmin(a: Tensor, dim=None, keepdim: bool = False) -> Tensor:
    if dim is None:
        data = np.asarray(np.argmin(a.data))
    else:
        axis = normalize_dim(dim, a.ndim)
        data = np.argmin(a.data, axis=axis)
        if keepdim:
            data = np.expand_dims(data, axis)
    return Tensor._make(data.astype(np.int64), (a,), None, "argmin", a.device)


def cumsum(a: Tensor, dim: int = 0) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    data = np.cumsum(a.data, axis=axis)

    def backward(grad):
        flipped = np.flip(grad, axis=axis)
        return (np.flip(np.cumsum(flipped, axis=axis), axis=axis),)

    return Tensor._make(data, (a,), backward, "cumsum", a.device)


def logsumexp(a: Tensor, dim: int = -1, keepdim: bool = False) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    peak = a.data.max(axis=axis, keepdims=True)
    shifted = np.exp(a.data - peak)
    total = shifted.sum(axis=axis, keepdims=True)
    data = (np.log(total) + peak)
    softmax_vals = shifted / total
    if not keepdim:
        data = np.squeeze(data, axis=axis)

    def backward(grad):
        g = grad if keepdim else np.expand_dims(grad, axis)
        return (g * softmax_vals,)

    return Tensor._make(data, (a,), backward, "logsumexp", a.device)


def all(a: Tensor, dim=None) -> Tensor:
    axes = reduction_axes(dim, a.ndim)
    return Tensor._make(np.asarray(a.data.all(axis=axes)), (a,), None, "all", a.device)


def any(a: Tensor, dim=None) -> Tensor:
    axes = reduction_axes(dim, a.ndim)
    return Tensor._make(np.asarray(a.data.any(axis=axes)), (a,), None, "any", a.device)


def prod(a: Tensor, dim=None, keepdim: bool = False) -> Tensor:
    axes = reduction_axes(dim, a.ndim)
    data = a.data.prod(axis=axes, keepdims=keepdim)
    shape = a.shape
    a_data = a.data

    def backward(grad):
        g = expand_reduced(grad, shape, axes, keepdim)
        full = np.asarray(a_data.prod(axis=axes, keepdims=True))
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(a_data != 0, full / np.where(a_data != 0, a_data, 1.0), 0.0)
        return (g * ratio,)

    return Tensor._make(np.asarray(data), (a,), backward, "prod", a.device)
