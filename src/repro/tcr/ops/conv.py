"""Convolution and pooling kernels (im2col-based), with full adjoints.

These back the CNN digit/size parsers, CNN-Small and ResNet used in the
MNISTGrid experiments (paper §5.4/§5.5), and the TinyCLIP image tower.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tcr.device import same_device
from repro.tcr.tensor import Tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _im2col(x: np.ndarray, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Extract sliding windows: (N,C,H,W) -> (N, Ho, Wo, C, kh, kw)."""
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (N, C, Ho_full, Wo_full, kh, kw); apply stride then reorder.
    windows = windows[:, :, ::sh, ::sw, :, :]
    return np.ascontiguousarray(windows.transpose(0, 2, 3, 1, 4, 5))


def _col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int, sh: int, sw: int) -> np.ndarray:
    """Adjoint of _im2col: scatter window grads back to input positions."""
    n, c, h, w = x_shape
    ho = (h - kh) // sh + 1
    wo = (w - kw) // sw + 1
    out = np.zeros(x_shape, dtype=cols.dtype)
    # cols: (N, Ho, Wo, C, kh, kw). Loop over the (small) kernel footprint;
    # each (i,j) offset maps windows onto a strided slab of the input.
    for i in range(kh):
        h_end = i + sh * ho
        for j in range(kw):
            w_end = j + sw * wo
            out[:, :, i:h_end:sh, j:w_end:sw] += cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    return out


def conv2d(x: Tensor, weight: Tensor, bias: Tensor = None, stride=1, padding=0) -> Tensor:
    """2-d cross-correlation: x (N,C,H,W) * weight (O,C,kh,kw) -> (N,O,Ho,Wo)."""
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError(f"conv2d expects 4-d input/weight, got {x.shape}/{weight.shape}")
    if x.shape[1] != weight.shape[1]:
        raise ShapeError(f"conv2d channel mismatch: input {x.shape[1]} vs weight {weight.shape[1]}")
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    parents = [x, weight] + ([bias] if bias is not None else [])
    device = same_device(*[p.device for p in parents])

    x_data = x.data
    if ph or pw:
        x_data = np.pad(x_data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x_data.shape
    o, _, kh, kw = weight.shape
    if h < kh or w < kw:
        raise ShapeError(f"conv2d kernel {kh}x{kw} larger than (padded) input {h}x{w}")
    cols = _im2col(x_data, kh, kw, sh, sw)          # (N,Ho,Wo,C,kh,kw)
    ho, wo = cols.shape[1], cols.shape[2]
    cols_mat = cols.reshape(n * ho * wo, c * kh * kw)
    w_mat = weight.data.reshape(o, c * kh * kw)
    out = cols_mat @ w_mat.T                        # (N*Ho*Wo, O)
    out = out.reshape(n, ho, wo, o).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, o, 1, 1)
    out = np.ascontiguousarray(out)
    padded_shape = x_data.shape
    orig_shape = x.shape

    def backward(grad):
        g_mat = grad.transpose(0, 2, 3, 1).reshape(n * ho * wo, o)
        gx = gw = gb = None
        if x.requires_grad:
            gcols = (g_mat @ w_mat).reshape(n, ho, wo, c, kh, kw)
            gx_padded = _col2im(gcols, padded_shape, kh, kw, sh, sw)
            gx = gx_padded[:, :, ph:ph + orig_shape[2], pw:pw + orig_shape[3]] if (ph or pw) else gx_padded
        if weight.requires_grad:
            gw = (g_mat.T @ cols_mat).reshape(o, c, kh, kw)
        if bias is not None and bias.requires_grad:
            gb = grad.sum(axis=(0, 2, 3)).reshape(bias.shape)
        result = [gx, gw]
        if bias is not None:
            result.append(gb)
        return tuple(result)

    return Tensor._make(out, tuple(parents), backward, "conv2d", device)


def max_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    if x.ndim != 4:
        raise ShapeError(f"max_pool2d expects a 4-d tensor, got {x.shape}")
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]        # (N,C,Ho,Wo,kh,kw)
    n, c, ho, wo = windows.shape[:4]
    flat = windows.reshape(n, c, ho, wo, kh * kw)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    shape = x.shape

    def backward(grad):
        gx = np.zeros(shape, dtype=grad.dtype)
        ki, kj = np.divmod(arg, kw)
        ni, ci, hi, wi = np.meshgrid(
            np.arange(n), np.arange(c), np.arange(ho), np.arange(wo), indexing="ij"
        )
        rows = hi * sh + ki
        cols = wi * sw + kj
        np.add.at(gx, (ni, ci, rows, cols), grad)
        return (gx,)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward, "max_pool2d", x.device)


def avg_pool2d(x: Tensor, kernel_size, stride=None) -> Tensor:
    if x.ndim != 4:
        raise ShapeError(f"avg_pool2d expects a 4-d tensor, got {x.shape}")
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]
    out = windows.mean(axis=(-1, -2))
    n, c, ho, wo = out.shape
    shape = x.shape
    scale = 1.0 / (kh * kw)

    def backward(grad):
        gx = np.zeros(shape, dtype=grad.dtype)
        g = grad * scale
        for i in range(kh):
            for j in range(kw):
                gx[:, :, i:i + sh * ho:sh, j:j + sw * wo:sw] += g
        return (gx,)

    return Tensor._make(np.ascontiguousarray(out), (x,), backward, "avg_pool2d", x.device)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Global (or integer-divisor) average pooling used by ResNet heads."""
    if output_size != 1:
        h, w = x.shape[2], x.shape[3]
        if h % output_size or w % output_size:
            raise ShapeError("adaptive_avg_pool2d supports only divisor output sizes")
        return avg_pool2d(x, (h // output_size, w // output_size))
    from repro.tcr.ops.reduction import mean
    return mean(x, dim=(2, 3), keepdim=True)
