"""Matrix multiplication (1-d, 2-d and batched with broadcasting)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tcr.ops.common import coerce_pair
from repro.tcr.tensor import Tensor


def matmul(a, b) -> Tensor:
    a, b, device = coerce_pair(a, b)
    if a.ndim == 0 or b.ndim == 0:
        raise ShapeError("matmul does not support 0-d tensors; use * for scalars")
    a_vec = a.ndim == 1
    b_vec = b.ndim == 1
    a_data = a.data[None, :] if a_vec else a.data
    b_data = b.data[:, None] if b_vec else b.data
    try:
        out = np.matmul(a_data, b_data)
    except ValueError as exc:
        raise ShapeError(f"matmul shapes {a.shape} x {b.shape} incompatible") from exc
    if a_vec:
        out = np.squeeze(out, axis=-2)
    if b_vec:
        out = np.squeeze(out, axis=-1)

    def backward(grad):
        g = grad
        # Re-insert squeezed axes innermost-first so 0-d grads expand cleanly.
        if b_vec:
            g = np.expand_dims(g, -1)
        if a_vec:
            g = np.expand_dims(g, -2)
        ga = gb = None
        if a.requires_grad:
            ga = np.matmul(g, np.swapaxes(b_data, -1, -2))
            if a_vec:
                ga = np.squeeze(ga, axis=-2)
        if b.requires_grad:
            gb = np.matmul(np.swapaxes(a_data, -1, -2), g)
            if b_vec:
                gb = np.squeeze(gb, axis=-1)
        return (ga, gb)

    return Tensor._make(out, (a, b), backward, "matmul", device)


def dot(a: Tensor, b: Tensor) -> Tensor:
    """1-d dot product (alias of matmul on vectors)."""
    if a.ndim != 1 or b.ndim != 1:
        raise ShapeError("dot expects 1-d tensors")
    return matmul(a, b)


def outer(a: Tensor, b: Tensor) -> Tensor:
    if a.ndim != 1 or b.ndim != 1:
        raise ShapeError("outer expects 1-d tensors")
    from repro.tcr.ops.shape import reshape
    return matmul(reshape(a, (-1, 1)), reshape(b, (1, -1)))


def einsum_pair(equation: str, a: Tensor, b: Tensor) -> Tensor:
    """Two-operand einsum with autograd (used by n-way soft group-by).

    Supports equations like ``"ri,rj->ij"`` — explicit output, no ellipsis.
    """
    lhs, _, out_spec = equation.partition("->")
    if not out_spec:
        raise ShapeError("einsum_pair requires an explicit '->' output spec")
    spec_a, _, spec_b = lhs.partition(",")
    if not spec_b:
        raise ShapeError("einsum_pair requires exactly two operands")
    data = np.einsum(equation, a.data, b.data)
    a_data, b_data = a.data, b.data

    def backward(grad):
        ga = gb = None
        if a.requires_grad:
            ga = np.einsum(f"{out_spec},{spec_b}->{spec_a}", grad, b_data)
        if b.requires_grad:
            gb = np.einsum(f"{out_spec},{spec_a}->{spec_b}", grad, a_data)
        return (ga, gb)

    return Tensor._make(data, (a, b), backward, "einsum", a.device)
