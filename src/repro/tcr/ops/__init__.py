"""Operator library for the tensor runtime.

Import surface mirrors a functional subset of ``torch``: every op takes and
returns :class:`~repro.tcr.tensor.Tensor` values and participates in
autograd where mathematically meaningful.
"""

from repro.tcr.ops.activation import (
    gelu,
    leaky_relu,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.tcr.ops.conv import (
    adaptive_avg_pool2d,
    avg_pool2d,
    conv2d,
    max_pool2d,
)
from repro.tcr.ops.elementwise import (
    abs,
    add,
    astype,
    ceil,
    clamp,
    clone,
    div,
    eq,
    exp,
    floor,
    ge,
    gt,
    isclose,
    isnan,
    le,
    log,
    log1p,
    logical_and,
    logical_not,
    logical_or,
    logical_xor,
    lt,
    maximum,
    minimum,
    mul,
    ne,
    neg,
    pow,
    remainder,
    round,
    sign,
    sqrt,
    sub,
    to_device,
    where,
)
from repro.tcr.ops.indexing import (
    gather,
    getitem,
    index_select,
    masked_select,
    one_hot,
    repeat_interleave,
    scatter_add,
    segment_sum,
)
from repro.tcr.ops.linalg import dot, einsum_pair, matmul, outer
from repro.tcr.ops.reduction import (
    all,
    any,
    argmax,
    argmin,
    cumsum,
    logsumexp,
    max,
    mean,
    min,
    prod,
    std,
    sum,
    var,
)
from repro.tcr.ops.shape import (
    broadcast_to,
    cat,
    chunk,
    flatten,
    flip,
    pad2d,
    permute,
    reshape,
    split,
    squeeze,
    stack,
    tile,
    transpose,
    unsqueeze,
)
from repro.tcr.ops.sorting import (
    argsort,
    bincount,
    lexsort_rows,
    nonzero,
    searchsorted,
    sort,
    topk,
    unique,
)

__all__ = [
    "abs", "adaptive_avg_pool2d", "add", "all", "any", "argmax", "argmin",
    "argsort", "astype", "avg_pool2d", "bincount", "broadcast_to", "cat",
    "ceil", "chunk", "clamp", "clone", "conv2d", "cumsum", "div", "dot",
    "einsum_pair", "eq", "exp", "flatten", "flip", "floor", "gather", "ge",
    "gelu", "getitem", "gt", "index_select", "isclose", "isnan", "le",
    "leaky_relu", "lexsort_rows", "log", "log1p", "log_softmax",
    "logical_and", "logical_not", "logical_or", "logical_xor", "logsumexp",
    "lt", "masked_select", "matmul", "max", "max_pool2d", "maximum", "mean",
    "min", "minimum", "mul", "ne", "neg", "nonzero", "one_hot", "outer",
    "pad2d", "permute", "pow", "prod", "relu", "remainder",
    "repeat_interleave", "reshape", "round", "scatter_add", "searchsorted",
    "segment_sum", "sigmoid", "sign", "softmax", "sort", "split", "sqrt",
    "squeeze", "stack", "std", "sub", "sum", "tanh", "tile", "to_device",
    "topk", "transpose", "unique", "unsqueeze", "var", "where",
]
