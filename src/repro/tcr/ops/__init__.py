"""Operator library for the tensor runtime.

Import surface mirrors a functional subset of ``torch``: every op takes and
returns :class:`~repro.tcr.tensor.Tensor` values and participates in
autograd where mathematically meaningful.
"""

from repro.tcr.ops.activation import (
    gelu,
    leaky_relu,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from repro.tcr.ops.conv import (
    adaptive_avg_pool2d,
    avg_pool2d,
    conv2d,
    max_pool2d,
)
from repro.tcr.ops.elementwise import (
    abs,
    add,
    astype,
    ceil,
    clamp,
    clone,
    div,
    eq,
    exp,
    floor,
    ge,
    gt,
    isclose,
    isnan,
    le,
    log,
    log1p,
    logical_and,
    logical_not,
    logical_or,
    logical_xor,
    lt,
    maximum,
    minimum,
    mul,
    ne,
    neg,
    pow,
    remainder,
    round,
    sign,
    sqrt,
    sub,
    to_device,
    where,
)
from repro.tcr.ops.indexing import (
    gather,
    getitem,
    index_select,
    masked_select,
    one_hot,
    repeat_interleave,
    scatter_add,
    segment_sum,
)
from repro.tcr.ops.linalg import dot, einsum_pair, matmul, outer
from repro.tcr.ops.reduction import (
    all,
    any,
    argmax,
    argmin,
    cumsum,
    logsumexp,
    max,
    mean,
    min,
    prod,
    std,
    sum,
    var,
)
from repro.tcr.ops.shape import (
    broadcast_to,
    cat,
    chunk,
    flatten,
    flip,
    pad2d,
    permute,
    reshape,
    split,
    squeeze,
    stack,
    tile,
    transpose,
    unsqueeze,
)
from repro.tcr.ops.sorting import (
    argsort,
    bincount,
    lexsort_rows,
    nonzero,
    searchsorted,
    sort,
    topk,
    unique,
)

__all__ = [name for name in dir() if not name.startswith("_")]
