"""Activation functions and their smooth relaxations.

``softmax`` doubles as the paper's differentiable argmax proxy (§4), the key
relaxation behind Probability Encoding and soft relational operators.
"""

from __future__ import annotations

import numpy as np

from repro.tcr.ops.common import normalize_dim
from repro.tcr.tensor import Tensor


def relu(a: Tensor) -> Tensor:
    data = np.maximum(a.data, 0)
    mask = a.data > 0

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(data, (a,), backward, "relu", a.device)


def leaky_relu(a: Tensor, negative_slope: float = 0.01) -> Tensor:
    data = np.where(a.data > 0, a.data, negative_slope * a.data)
    mask = a.data > 0

    def backward(grad):
        return (np.where(mask, grad, negative_slope * grad),)

    return Tensor._make(data, (a,), backward, "leaky_relu", a.device)


def sigmoid(a: Tensor) -> Tensor:
    # Numerically stable: never exponentiate a large positive number.
    x = a.data
    data = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))),
                    np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))

    def backward(grad):
        return (grad * data * (1.0 - data),)

    return Tensor._make(data.astype(x.dtype, copy=False), (a,), backward, "sigmoid", a.device)


def tanh(a: Tensor) -> Tensor:
    data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - data * data),)

    return Tensor._make(data, (a,), backward, "tanh", a.device)


def gelu(a: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = a.data
    c = np.sqrt(2.0 / np.pi).astype(np.float32)
    inner = c * (x + 0.044715 * x ** 3)
    t = np.tanh(inner)
    data = 0.5 * x * (1.0 + t)

    def backward(grad):
        dt = (1.0 - t * t) * c * (1.0 + 3 * 0.044715 * x ** 2)
        return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

    return Tensor._make(data.astype(x.dtype, copy=False), (a,), backward, "gelu", a.device)


def softmax(a: Tensor, dim: int = -1) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        inner = (grad * data).sum(axis=axis, keepdims=True)
        return (data * (grad - inner),)

    return Tensor._make(data, (a,), backward, "softmax", a.device)


def log_softmax(a: Tensor, dim: int = -1) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm
    softmax_vals = np.exp(data)

    def backward(grad):
        return (grad - softmax_vals * grad.sum(axis=axis, keepdims=True),)

    return Tensor._make(data, (a,), backward, "log_softmax", a.device)
