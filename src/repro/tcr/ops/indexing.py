"""Indexing, gather/scatter and segment operators.

``segment_sum`` is the workhorse of the exact sort-based group-by (TQP-style):
after sorting rows by group key, per-group aggregates reduce to
``np.add.reduceat`` over segment starts — expressed here with a proper adjoint
so that even exact aggregation remains differentiable where the values (not
the grouping) carry gradients.
"""

from __future__ import annotations


import numpy as np

from repro.errors import ShapeError
from repro.tcr.ops.common import normalize_dim
from repro.tcr.tensor import Tensor


def _unwrap_index(index):
    """Convert Tensor indices (and tuples containing them) to numpy."""
    if isinstance(index, Tensor):
        return index.data
    if isinstance(index, tuple):
        return tuple(_unwrap_index(i) for i in index)
    if isinstance(index, list):
        return np.asarray(index)
    return index


def getitem(a: Tensor, index) -> Tensor:
    np_index = _unwrap_index(index)
    data = a.data[np_index]
    if np.isscalar(data) or data.ndim == 0:
        data = np.asarray(data)
    else:
        data = np.ascontiguousarray(data)
    shape = a.shape

    def backward(grad):
        out = np.zeros(shape, dtype=grad.dtype)
        np.add.at(out, np_index, grad)
        return (out,)

    return Tensor._make(data, (a,), backward, "getitem", a.device)


def index_select(a: Tensor, dim: int, index) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    idx = _unwrap_index(index)
    idx = np.asarray(idx)
    data = np.take(a.data, idx, axis=axis)
    shape = a.shape

    def backward(grad):
        out = np.zeros(shape, dtype=grad.dtype)
        # np.add.at with an axis: build index tuple
        full_index = [slice(None)] * len(shape)
        full_index[axis] = idx
        np.add.at(out, tuple(full_index), grad)
        return (out,)

    return Tensor._make(data, (a,), backward, "index_select", a.device)


def masked_select(a: Tensor, mask) -> Tensor:
    mask_data = _unwrap_index(mask)
    return getitem(a, np.asarray(mask_data, dtype=bool))


def gather(a: Tensor, dim: int, index) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    idx = np.asarray(_unwrap_index(index))
    data = np.take_along_axis(a.data, idx, axis=axis)
    shape = a.shape

    def backward(grad):
        out = np.zeros(shape, dtype=grad.dtype)
        # Scatter-add along the axis (indices may repeat).
        mesh = np.meshgrid(*[np.arange(n) for n in idx.shape], indexing="ij")
        full_index = list(mesh)
        full_index[axis] = idx
        np.add.at(out, tuple(full_index), grad)
        return (out,)

    return Tensor._make(data, (a,), backward, "gather", a.device)


def scatter_add(a: Tensor, dim: int, index, src: Tensor) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    idx = np.asarray(_unwrap_index(index))
    if idx.shape != src.shape:
        raise ShapeError(f"scatter_add index shape {idx.shape} != src shape {src.shape}")
    data = a.data.copy()
    mesh = np.meshgrid(*[np.arange(n) for n in idx.shape], indexing="ij")
    full_index = list(mesh)
    full_index[axis] = idx
    np.add.at(data, tuple(full_index), src.data)

    def backward(grad):
        ga = grad if a.requires_grad else None
        gs = grad[tuple(full_index)] if src.requires_grad else None
        return (ga, gs)

    return Tensor._make(data, (a, src), backward, "scatter_add", a.device)


def one_hot(index: Tensor, num_classes: int) -> Tensor:
    idx = index.data.astype(np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= num_classes):
        raise ShapeError(f"one_hot indices out of range [0, {num_classes})")
    data = np.zeros(idx.shape + (num_classes,), dtype=np.float32)
    np.put_along_axis(
        data, idx[..., None], 1.0, axis=-1
    )
    return Tensor._make(data, (index,), None, "one_hot", index.device)


def segment_sum(values: Tensor, starts) -> Tensor:
    """Sum contiguous row segments of ``values`` (axis 0).

    Args:
        values: tensor of shape (n, ...).
        starts: 1-d int array of segment start offsets; must begin with 0.
    """
    start_idx = np.asarray(_unwrap_index(starts), dtype=np.int64)
    if start_idx.size == 0:
        return Tensor._make(
            np.zeros((0,) + values.shape[1:], dtype=values.dtype),
            (values,), None, "segment_sum", values.device,
        )
    if start_idx[0] != 0:
        raise ShapeError("segment starts must begin with 0")
    n = values.shape[0]
    data = np.add.reduceat(values.data, start_idx, axis=0)
    lengths = np.diff(np.append(start_idx, n))

    def backward(grad):
        return (np.repeat(grad, lengths, axis=0),)

    return Tensor._make(data, (values,), backward, "segment_sum", values.device)


def repeat_interleave(a: Tensor, repeats, dim: int = 0) -> Tensor:
    axis = normalize_dim(dim, a.ndim)
    reps = _unwrap_index(repeats)
    data = np.repeat(a.data, reps, axis=axis)
    shape = a.shape

    if isinstance(reps, int):
        lengths = np.full(shape[axis], reps, dtype=np.int64)
    else:
        lengths = np.asarray(reps, dtype=np.int64)

    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])

    def backward(grad):
        moved = np.moveaxis(grad, axis, 0)
        if moved.shape[0] == 0:
            summed = np.zeros((len(lengths),) + moved.shape[1:], dtype=grad.dtype)
        else:
            summed = np.add.reduceat(moved, starts, axis=0)
            summed[lengths == 0] = 0
        return (np.moveaxis(summed, 0, axis),)

    return Tensor._make(data, (a,), backward, "repeat_interleave", a.device)
