"""Shape-manipulation operators: reshape/transpose/cat/stack/pad/etc."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tcr.device import same_device
from repro.tcr.ops.common import normalize_dim
from repro.tcr.tensor import Tensor


def reshape(a: Tensor, shape: tuple) -> Tensor:
    old_shape = a.shape
    data = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(old_shape),)

    return Tensor._make(data, (a,), backward, "reshape", a.device)


def transpose(a: Tensor, dim0: int, dim1: int) -> Tensor:
    d0 = normalize_dim(dim0, a.ndim)
    d1 = normalize_dim(dim1, a.ndim)
    data = np.swapaxes(a.data, d0, d1)

    def backward(grad):
        return (np.swapaxes(grad, d0, d1),)

    return Tensor._make(data, (a,), backward, "transpose", a.device)


def permute(a: Tensor, dims: tuple) -> Tensor:
    dims = tuple(normalize_dim(d, a.ndim) for d in dims)
    if sorted(dims) != list(range(a.ndim)):
        raise ShapeError(f"permute dims {dims} is not a permutation of {a.ndim} axes")
    inverse = np.argsort(dims)
    data = np.transpose(a.data, dims)

    def backward(grad):
        return (np.transpose(grad, inverse),)

    return Tensor._make(data, (a,), backward, "permute", a.device)


def squeeze(a: Tensor, dim=None) -> Tensor:
    old_shape = a.shape
    if dim is None:
        data = np.squeeze(a.data)
    else:
        axis = normalize_dim(dim, a.ndim)
        if a.shape[axis] != 1:
            return a
        data = np.squeeze(a.data, axis=axis)

    def backward(grad):
        return (grad.reshape(old_shape),)

    return Tensor._make(data, (a,), backward, "squeeze", a.device)


def unsqueeze(a: Tensor, dim: int) -> Tensor:
    if not -(a.ndim + 1) <= dim <= a.ndim:
        raise IndexError(f"unsqueeze dim {dim} out of range")
    axis = dim % (a.ndim + 1)
    old_shape = a.shape
    data = np.expand_dims(a.data, axis)

    def backward(grad):
        return (grad.reshape(old_shape),)

    return Tensor._make(data, (a,), backward, "unsqueeze", a.device)


def flatten(a: Tensor, start_dim: int = 0, end_dim: int = -1) -> Tensor:
    start = normalize_dim(start_dim, a.ndim)
    end = normalize_dim(end_dim, a.ndim)
    if start > end:
        raise ShapeError(f"flatten start_dim {start} > end_dim {end}")
    merged = 1
    for n in a.shape[start:end + 1]:
        merged *= n
    new_shape = a.shape[:start] + (merged,) + a.shape[end + 1:]
    return reshape(a, new_shape)


def broadcast_to(a: Tensor, shape: tuple) -> Tensor:
    shape = tuple(a.shape[i - (len(shape) - a.ndim)] if n == -1 else n
                  for i, n in enumerate(shape))
    data = np.broadcast_to(a.data, shape).copy()
    old_shape = a.shape

    def backward(grad):
        from repro.tcr.autograd import unbroadcast
        return (unbroadcast(grad, old_shape),)

    return Tensor._make(data, (a,), backward, "broadcast_to", a.device)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    if not tensors:
        raise ShapeError("cat expects a non-empty sequence of tensors")
    device = same_device(*[t.device for t in tensors])
    axis = normalize_dim(dim, tensors[0].ndim)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        return tuple(
            np.take(grad, np.arange(offsets[i], offsets[i + 1]), axis=axis)
            for i in range(len(sizes))
        )

    return Tensor._make(data, tuple(tensors), backward, "cat", device)


def stack(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    if not tensors:
        raise ShapeError("stack expects a non-empty sequence of tensors")
    device = same_device(*[t.device for t in tensors])
    ndim = tensors[0].ndim + 1
    axis = dim % ndim
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(data, tuple(tensors), backward, "stack", device)


def split(a: Tensor, split_size_or_sections, dim: int = 0) -> list:
    axis = normalize_dim(dim, a.ndim)
    total = a.shape[axis]
    if isinstance(split_size_or_sections, int):
        size = split_size_or_sections
        sections = [size] * (total // size)
        if total % size:
            sections.append(total % size)
    else:
        sections = list(split_size_or_sections)
        if builtins_sum(sections) != total:
            raise ShapeError(f"split sections {sections} do not sum to {total}")
    pieces = []
    offset = 0
    for size in sections:
        index = [slice(None)] * a.ndim
        index[axis] = slice(offset, offset + size)
        from repro.tcr.ops.indexing import getitem
        pieces.append(getitem(a, tuple(index)))
        offset += size
    return pieces


def chunk(a: Tensor, chunks: int, dim: int = 0) -> list:
    axis = normalize_dim(dim, a.ndim)
    size = -(-a.shape[axis] // chunks)
    return split(a, size, dim)


def pad2d(a: Tensor, padding) -> Tensor:
    """Zero-pad the last two dimensions. ``padding`` = int or (left,right,top,bottom)."""
    if isinstance(padding, int):
        left = right = top = bottom = padding
    else:
        left, right, top, bottom = padding
    if a.ndim < 2:
        raise ShapeError("pad2d requires at least a 2-d tensor")
    widths = [(0, 0)] * (a.ndim - 2) + [(top, bottom), (left, right)]
    data = np.pad(a.data, widths)
    slices = tuple(
        slice(w[0], dim_size + w[0]) for w, dim_size in zip(widths, a.shape)
    )

    def backward(grad):
        return (grad[slices],)

    return Tensor._make(data, (a,), backward, "pad2d", a.device)


def tile(a: Tensor, reps: tuple) -> Tensor:
    data = np.tile(a.data, reps)
    old_shape = a.shape
    full_reps = (1,) * (data.ndim - len(reps)) + tuple(reps)
    padded_shape = (1,) * (data.ndim - a.ndim) + old_shape

    def backward(grad):
        # Fold each tiled axis back with a sum.
        work = grad.reshape(
            tuple(n for pair in zip(full_reps, padded_shape) for n in pair)
        )
        work = work.sum(axis=tuple(range(0, work.ndim, 2)))
        return (work.reshape(old_shape),)

    return Tensor._make(data, (a,), backward, "tile", a.device)


def flip(a: Tensor, dims) -> Tensor:
    if isinstance(dims, int):
        dims = (dims,)
    axes = tuple(normalize_dim(d, a.ndim) for d in dims)
    data = np.flip(a.data, axis=axes).copy()

    def backward(grad):
        return (np.flip(grad, axis=axes),)

    return Tensor._make(data, (a,), backward, "flip", a.device)


def builtins_sum(values):
    total = 0
    for v in values:
        total += v
    return total
