"""Setup shim for offline editable installs (no wheel/build isolation needed)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'The Tensor Data Platform: Towards an AI-centric "
        "Database System' (CIDR 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
