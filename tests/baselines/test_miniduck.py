"""MiniDuck engine: behaviour + differential testing against TDP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.miniduck import MiniDuck
from repro.core.session import Session
from repro.errors import BindError, SqlError
from repro.storage.frame import DataFrame


@pytest.fixture
def duck():
    engine = MiniDuck()
    engine.register("t", DataFrame({
        "k": ["a", "b", "a", "c", "b", "a"],
        "v": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        "n": [10, 20, 30, 40, 50, 60],
    }))
    return engine


class TestMiniDuck:
    def test_projection_filter(self, duck):
        out = duck.execute("SELECT n FROM t WHERE v > 2.5")
        assert out["n"].tolist() == [30, 40, 50, 60]

    def test_string_filter(self, duck):
        out = duck.execute("SELECT v FROM t WHERE k = 'a'")
        assert out["v"].tolist() == [1.0, 3.0, 6.0]

    def test_group_by(self, duck):
        out = duck.execute("SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k "
                           "ORDER BY k")
        assert out["k"].tolist() == ["a", "b", "c"]
        assert out["COUNT(*)"].tolist() == [3, 2, 1]
        assert out["SUM(v)"].tolist() == [10.0, 7.0, 4.0]

    def test_global_aggregates(self, duck):
        out = duck.execute("SELECT AVG(v), MIN(n), MAX(n) FROM t")
        assert out["AVG(v)"][0] == pytest.approx(3.5)
        assert out["MIN(n)"][0] == 10
        assert out["MAX(n)"][0] == 60

    def test_order_limit(self, duck):
        out = duck.execute("SELECT n FROM t ORDER BY v DESC LIMIT 2")
        assert out["n"].tolist() == [60, 50]

    def test_distinct(self, duck):
        out = duck.execute("SELECT DISTINCT k FROM t ORDER BY k")
        assert out["k"].tolist() == ["a", "b", "c"]

    def test_between_in_like(self, duck):
        assert len(duck.execute("SELECT v FROM t WHERE v BETWEEN 2 AND 4")) == 3
        assert len(duck.execute("SELECT v FROM t WHERE k IN ('a','c')")) == 4
        assert len(duck.execute("SELECT v FROM t WHERE k LIKE 'a%'")) == 3

    def test_subquery(self, duck):
        out = duck.execute("SELECT COUNT(*) FROM (SELECT v FROM t WHERE v > 3)")
        assert out["COUNT(*)"].tolist() == [3]

    def test_having(self, duck):
        out = duck.execute("SELECT k, COUNT(*) FROM t GROUP BY k "
                           "HAVING COUNT(*) > 1 ORDER BY k")
        assert out["k"].tolist() == ["a", "b"]

    def test_unknown_table_and_function(self, duck):
        with pytest.raises(BindError):
            duck.execute("SELECT * FROM missing")
        with pytest.raises(SqlError):
            duck.execute("SELECT my_udf(v) FROM t")


class TestDifferentialAgainstTdp:
    """MiniDuck and TDP are independent engines; they must agree."""

    @given(
        st.lists(st.tuples(st.sampled_from("abcd"), st.integers(-20, 20)),
                 min_size=1, max_size=50),
        st.integers(-20, 20),
    )
    @settings(max_examples=25, deadline=None)
    def test_filter_aggregate_agreement(self, rows, threshold):
        keys = [r[0] for r in rows]
        values = np.asarray([r[1] for r in rows], dtype=np.int64)

        duck = MiniDuck()
        duck.register("data", DataFrame({"k": keys, "v": values}))
        session = Session()
        session.sql.register_dict({"k": keys, "v": values}, "data")

        sql = (f"SELECT k, COUNT(*), SUM(v) FROM data WHERE v >= {threshold} "
               f"GROUP BY k ORDER BY k")
        duck_out = duck.execute(sql)
        tdp_out = session.spark.query(sql).run(toPandas=True)

        assert duck_out["k"].tolist() == tdp_out["k"].tolist()
        assert duck_out["COUNT(*)"].tolist() == tdp_out["COUNT(*)"].tolist()
        assert [float(x) for x in duck_out["SUM(v)"]] == \
               [float(x) for x in tdp_out["SUM(v)"]]

    @given(st.lists(st.floats(-100, 100, allow_nan=False, width=32),
                    min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_order_limit_agreement(self, values):
        duck = MiniDuck()
        duck.register("data", DataFrame({"v": np.asarray(values, dtype=np.float32)}))
        session = Session()
        session.sql.register_dict({"v": np.asarray(values, dtype=np.float32)},
                                  "data")
        sql = "SELECT v FROM data ORDER BY v DESC LIMIT 5"
        duck_out = duck.execute(sql)["v"]
        tdp_out = session.spark.query(sql).run(toPandas=True)["v"]
        np.testing.assert_allclose(duck_out.astype(float),
                                   tdp_out.astype(float), rtol=1e-5)
