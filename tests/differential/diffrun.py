"""Multi-way differential runner: engine interpreter/kernels × serial/sharded,
plus the miniduck oracle.

``run_differential(seed, count)`` executes every generated statement:

1. engine ``shards=1`` with ``compile_exprs=False`` (the serial interpreter —
   the base every other engine leg is compared **bitwise** against),
2. engine ``shards=4`` (interpreter) with a tiny ``parallel_min_rows`` so
   even small tables actually split: sharded execution must be
   indistinguishable from serial;
3. & 4. the same two configurations with ``compile_exprs=True`` (vectorized
   expression kernels): compiled execution must be bitwise-indistinguishable
   from the interpreter at every shard count. These legs are skipped when
   ``REPRO_COMPILE_EXPRS=0`` (the CI matrix runs both settings);
5.–7. ``compile_pipelines=True`` at shards 1, 3 and 4 (whole-pipeline
   codegen with sharded grouped-aggregate partials, PR 8): the fused
   callables must also be bitwise-indistinguishable from the serial
   interpreter. Skipped when ``REPRO_COMPILE_PIPELINES=0`` (or when the
   kernel legs are off — fusion builds on the expression kernels);
8. & 9. the exchange legs: the hash-repartitioned join/grouped-aggregate
   drivers at shards=3 and the explicit ``exchange=False`` off-path at
   shards=4 — both always run, while ``REPRO_EXCHANGE=0/1`` flips the knob
   in the default sharded legs above (the CI matrix runs both settings);
10. the ``baselines.miniduck`` oracle — compared after order normalisation
   on the statement's exact-typed key columns, NaN-aware, with the float
   tolerance documented in ``ALLOWLIST``.

Failures carry the seed, case index and SQL; reproduce with
``python tests/differential/diffrun.py --seed S --count N`` (see README.md).

ALLOWLIST — benign engine/oracle differences accepted by the comparator,
each with its justification; anything outside these is a failure:

* ``float-precision``: the engine materialises float results as float32
  (tensor-runtime convention) and reduces float aggregates with
  vectorised/pairwise accumulators, while miniduck computes in float64 with
  ``np.add.at`` ordering. Same math, different precision and summation
  order — float comparisons therefore use ``rtol=1e-4, atol=1e-6`` against
  the float64-cast values instead of bit equality. (Engine-vs-engine
  comparisons are still bitwise; the tolerance applies only to the oracle.)
* ``int-widening``: miniduck computes every aggregate in float64, so an
  engine int64 SUM/MIN/MAX compares against a float64 oracle value;
  the comparator casts both to float64, exact up to 2^53 (generated values
  keep sums far below that).
* ``nan-vs-null``: both systems model NULL as NaN; NaN outputs compare
  equal positionally (``equal_nan``), and predicates drop NaN rows in both.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from diffgen import DiffStatement, gen_statements, gen_tables  # noqa: E402

from repro.baselines.miniduck import MiniDuck  # noqa: E402
from repro.core.session import Session  # noqa: E402
from repro.errors import TdpError  # noqa: E402

# REPRO_EXCHANGE=0 turns the exchange rewrite (hash-repartitioned joins and
# grouped aggregates) off in every sharded leg; CI runs a 0/1 matrix so both
# sides of the knob keep full-stream coverage.
_EXCHANGE_ON = os.environ.get("REPRO_EXCHANGE", "1") != "0"

SERIAL_CONFIG = {"compile_exprs": False, "compile_pipelines": False}
SHARD_CONFIG = {"shards": 4, "parallel_min_rows": 2, "compile_exprs": False,
                "compile_pipelines": False, "exchange": _EXCHANGE_ON}
KERNEL_CONFIG = {"compile_exprs": True, "compile_pipelines": False}
KERNEL_SHARD_CONFIG = {"shards": 4, "parallel_min_rows": 2,
                       "compile_exprs": True, "compile_pipelines": False,
                       "exchange": _EXCHANGE_ON}
# Whole-pipeline codegen legs (PR 8): fused scan→filter→project[→aggregate]
# callables, serial and sharded (including the odd shard count, which
# exercises unequal grouped-partial splits).
PIPELINE_CONFIGS = [
    ("pipelines shards=1", {"compile_exprs": True, "compile_pipelines": True}),
    ("pipelines shards=3", {"shards": 3, "parallel_min_rows": 2,
                            "compile_exprs": True, "compile_pipelines": True,
                            "exchange": _EXCHANGE_ON}),
    ("pipelines shards=4", {"shards": 4, "parallel_min_rows": 2,
                            "compile_exprs": True, "compile_pipelines": True,
                            "exchange": _EXCHANGE_ON}),
]
# Exchange legs: the repartitioned join/grouped-aggregate drivers at an odd
# shard count, plus the explicit off-path — both must stay bitwise equal to
# the serial interpreter regardless of how REPRO_EXCHANGE set the legs above.
EXCHANGE_CONFIGS = [
    ("exchange shards=3", {"shards": 3, "parallel_min_rows": 2,
                           "compile_exprs": False, "compile_pipelines": False,
                           "exchange": True}),
    ("no-exchange shards=4", {"shards": 4, "parallel_min_rows": 2,
                              "compile_exprs": False,
                              "compile_pipelines": False, "exchange": False}),
]
FLOAT_RTOL = 1e-4
FLOAT_ATOL = 1e-6


def _kernel_legs_enabled() -> bool:
    return os.environ.get("REPRO_COMPILE_EXPRS", "1") != "0"


def _pipeline_legs_enabled() -> bool:
    # Pipeline fusion builds on the expression kernels: the legs only run
    # when both knobs are on (CI runs a 0/1 matrix on each).
    return (_kernel_legs_enabled()
            and os.environ.get("REPRO_COMPILE_PIPELINES", "1") != "0")


class Divergence(Exception):
    """One differential failure, annotated with its reproduction recipe."""

    def __init__(self, seed: int, case: int, stmt: DiffStatement, detail: str):
        self.seed = seed
        self.case = case
        self.stmt = stmt
        self.detail = detail
        super().__init__(
            f"seed={seed} case={case}\n  sql: {stmt.sql}\n  {detail}\n"
            f"  reproduce: python tests/differential/diffrun.py "
            f"--seed {seed} --case {case}"
        )


def _engine_result(session: Session, sql: str,
                   extra: Optional[dict]) -> Dict[str, np.ndarray]:
    result = session.sql.query(sql, extra_config=extra).run()
    return {name: np.asarray(result.column(name))
            for name in result.column_names}


def _oracle_result(duck: MiniDuck, sql: str) -> Dict[str, np.ndarray]:
    frame = duck.execute(sql)
    return {name: np.asarray(frame[name]) for name in frame.columns}


# ----------------------------------------------------------------------
# Comparators
# ----------------------------------------------------------------------
def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    if a.dtype != b.dtype or a.shape != b.shape:
        return False
    if a.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def compare_engine_runs(serial: Dict[str, np.ndarray],
                        other: Dict[str, np.ndarray],
                        label: str = "shards=4") -> Optional[str]:
    """Bitwise comparison (the shard/kernel-invariance contract). Returns a
    description of the first difference, or None."""
    if list(serial) != list(other):
        return f"column sets differ: {list(serial)} vs {list(other)}"
    for name in serial:
        if not _bitwise_equal(serial[name], other[name]):
            return (f"column {name!r} differs between base and {label}: "
                    f"{serial[name][:8]!r} vs {other[name][:8]!r}")
    return None


def _sort_order(result: Dict[str, np.ndarray], keys: List[str]) -> np.ndarray:
    n = len(next(iter(result.values()))) if result else 0
    arrays = []
    for key in reversed(keys):
        values = result[key]
        if values.dtype.kind in ("U", "S", "O"):
            arrays.append(np.asarray([str(v) for v in values], dtype="U64"))
        else:
            arrays.append(values.astype(np.float64))
    if not arrays:
        return np.arange(n)
    return np.lexsort(tuple(arrays))


def compare_with_oracle(engine: Dict[str, np.ndarray],
                        oracle: Dict[str, np.ndarray],
                        stmt: DiffStatement) -> Optional[str]:
    if list(engine) != list(oracle):
        return f"column sets differ: {list(engine)} vs {list(oracle)}"
    if len({len(v) for v in engine.values()}) > 1:
        return "engine produced ragged columns"
    if len(next(iter(engine.values()), ())) != len(next(iter(oracle.values()), ())):
        return (f"row counts differ: engine "
                f"{len(next(iter(engine.values())))} vs oracle "
                f"{len(next(iter(oracle.values())))}")
    if stmt.ordered:
        eng, orc = engine, oracle
    else:
        keys = [k for k in stmt.sort_keys if k in engine] or list(engine)
        eng_order = _sort_order(engine, keys)
        orc_order = _sort_order(oracle, keys)
        eng = {k: v[eng_order] for k, v in engine.items()}
        orc = {k: v[orc_order] for k, v in oracle.items()}
    for name in eng:
        a, b = eng[name], orc[name]
        if a.dtype.kind in ("U", "S", "O") or b.dtype.kind in ("U", "S", "O"):
            if not np.array_equal(np.asarray([str(v) for v in a]),
                                  np.asarray([str(v) for v in b])):
                return f"string column {name!r}: {a[:8]!r} vs {b[:8]!r}"
            continue
        af = a.astype(np.float64)
        bf = b.astype(np.float64)
        if not np.allclose(af, bf, rtol=FLOAT_RTOL, atol=FLOAT_ATOL,
                           equal_nan=True):
            worst = np.nanmax(np.abs(af - bf)) if af.size else 0.0
            return (f"column {name!r} diverges (max abs diff {worst:g}): "
                    f"{a[:8]!r} vs {b[:8]!r}")
    return None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_differential(seed: int, count: int = 120,
                     only_case: Optional[int] = None,
                     verbose: bool = False) -> dict:
    """Run one seed's statement stream; raises Divergence on the first
    failure. Returns counters for reporting/asserting coverage."""
    tables = gen_tables(seed)
    session = Session()
    duck = MiniDuck()
    for name, data in tables.items():
        session.sql.register_dict(dict(data), name)
        duck.register(name, dict(data))
    statements = gen_statements(seed, count)
    kernel_legs = _kernel_legs_enabled()
    pipeline_legs = _pipeline_legs_enabled()
    stats = {"statements": 0, "oracle_checked": 0, "oracle_skipped": 0,
             "engine_only": 0, "kernel_checked": 0, "pipeline_checked": 0,
             "exchange_checked": 0}
    for case, stmt in enumerate(statements):
        if only_case is not None and case != only_case:
            continue
        stats["statements"] += 1
        if verbose:
            print(f"[{seed}:{case}] {stmt.sql}")
        try:
            serial = _engine_result(session, stmt.sql, SERIAL_CONFIG)
            legs = [("shards=4", SHARD_CONFIG)] + EXCHANGE_CONFIGS
            if kernel_legs:
                legs += [("kernels shards=1", KERNEL_CONFIG),
                         ("kernels shards=4", KERNEL_SHARD_CONFIG)]
            if pipeline_legs:
                legs += PIPELINE_CONFIGS
            for label, extra in legs:
                other = _engine_result(session, stmt.sql, extra)
                detail = compare_engine_runs(serial, other, label)
                if detail is not None:
                    raise Divergence(seed, case, stmt, detail)
                if "kernels" in label:
                    stats["kernel_checked"] += 1
                elif "pipelines" in label:
                    stats["pipeline_checked"] += 1
                elif "exchange" in label:
                    stats["exchange_checked"] += 1
        except TdpError as exc:
            raise Divergence(seed, case, stmt,
                             f"engine rejected generated statement: {exc}")
        if not stmt.oracle:
            stats["engine_only"] += 1
            continue
        try:
            oracle = _oracle_result(duck, stmt.sql)
        except TdpError as exc:
            # The oracle's surface is narrower by design; skips are counted
            # and bounded by the caller so grammar drift cannot silently
            # hollow out the oracle comparison.
            stats["oracle_skipped"] += 1
            if verbose:
                print(f"    oracle skip: {exc}")
            continue
        stats["oracle_checked"] += 1
        detail = compare_with_oracle(serial, oracle, stmt)
        if detail is not None:
            raise Divergence(seed, case, stmt, detail)
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--count", type=int, default=120)
    parser.add_argument("--case", type=int, default=None,
                        help="run only this case index (reproduction)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    try:
        stats = run_differential(args.seed, args.count, only_case=args.case,
                                 verbose=args.verbose)
    except Divergence as exc:
        print(f"DIVERGENCE\n{exc}")
        return 1
    print(f"ok: {stats}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
