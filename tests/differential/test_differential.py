"""Differential-testing entry point (see README.md in this directory).

Each seed drives a full stream of generated statements through
``diffrun.run_differential``: engine interpreter/kernels × serial/sharded
(all bitwise against the serial interpreter) plus the miniduck oracle. The
default budget keeps tier-1 fast; CI's ``differential`` job widens it via
the environment:

* ``REPRO_DIFF_SEEDS``  — comma-separated seed list (default ``1,2``)
* ``REPRO_DIFF_STATEMENTS`` — statements per seed (default ``60``)
* ``REPRO_COMPILE_EXPRS`` — ``0`` skips the compiled-kernel legs (CI runs
  a 0/1 matrix so both engine modes keep full-stream coverage)
* ``REPRO_COMPILE_PIPELINES`` — ``0`` skips the whole-pipeline codegen legs
  (shards 1/3/4 with ``compile_pipelines=True``); they also require the
  kernel legs to be on
* ``REPRO_EXCHANGE`` — ``0`` turns the exchange rewrite off in the default
  sharded legs (the explicit exchange-on/off legs always run)
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from diffrun import run_differential  # noqa: E402


def _seeds():
    raw = os.environ.get("REPRO_DIFF_SEEDS", "1,2")
    return [int(part) for part in raw.split(",") if part.strip()]


def _count():
    return int(os.environ.get("REPRO_DIFF_STATEMENTS", "60"))


@pytest.mark.parametrize("seed", _seeds())
def test_differential_seed(seed):
    stats = run_differential(seed, _count())
    assert stats["statements"] == _count()
    # The oracle comparison must retain real coverage: grammar drift that
    # silently pushes most statements outside miniduck's surface would turn
    # the harness into a shards-only check without anyone noticing.
    oracle_eligible = stats["oracle_checked"] + stats["oracle_skipped"]
    assert stats["oracle_checked"] >= 0.8 * max(oracle_eligible, 1), stats
    assert stats["oracle_checked"] > 0
    # Compiled-kernel legs (serial + sharded) run per statement unless the
    # CI matrix disabled them for this job.
    # Exchange legs (on at shards=3, explicitly off at shards=4) run for
    # every statement regardless of the REPRO_EXCHANGE matrix setting.
    assert stats["exchange_checked"] == 2 * _count(), stats
    if os.environ.get("REPRO_COMPILE_EXPRS", "1") != "0":
        assert stats["kernel_checked"] == 2 * _count(), stats
        # Whole-pipeline codegen legs (shards 1/3/4) ride on the kernels.
        if os.environ.get("REPRO_COMPILE_PIPELINES", "1") != "0":
            assert stats["pipeline_checked"] == 3 * _count(), stats
