"""Seeded random schema + SQL statement generator for differential testing.

Every artifact is a pure function of the seed: ``gen_tables(seed)`` builds
the table set and ``gen_statements(seed, count)`` the statement stream, so a
failure reported as ``seed=S case=I`` reproduces exactly (see README.md).

The grammar is restricted to the surface both the TDP engine and the
``miniduck`` oracle accept — single-table SELECT with WHERE (comparisons,
AND/OR/NOT, IN, BETWEEN, LIKE), arithmetic projections with aliases,
GROUP BY with COUNT/SUM/AVG/MIN/MAX (+ DISTINCT / HAVING), ORDER BY, LIMIT/
OFFSET and DISTINCT — plus engine-only statements (joins) that are checked
for shard-count invariance but not against the oracle.

Determinism-by-construction rules that make three-way comparison sound:

* every projection item is aliased, so output column names agree;
* every plain SELECT projects ``id`` (a unique key) and every ORDER BY ends
  with ``id``, so ordered results are totally ordered; grouped SELECTs
  project their group keys, which are unique per output row — either way
  the comparison has an exact-typed canonical sort key.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

import numpy as np

VOCAB = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "Theta", "io_ta"]
LIKE_PATTERNS = ["al%", "%ta", "%et%", "_eta", "%a_a%", "zeta", "%o%"]

INT_COLS = ("a", "b", "u")
FLOAT_COLS = ("f", "g")
STRING_COL = "s"


class DiffStatement:
    """One generated case: the SQL text plus comparison metadata."""

    __slots__ = ("sql", "table", "sort_keys", "ordered", "oracle")

    def __init__(self, sql: str, table: str, sort_keys: List[str],
                 ordered: bool, oracle: bool):
        self.sql = sql
        self.table = table
        self.sort_keys = sort_keys  # exact-typed output columns to canonicalise on
        self.ordered = ordered      # True: row order must match as produced
        self.oracle = oracle        # False: engine-only (outside miniduck surface)

    def __repr__(self) -> str:
        return f"DiffStatement({self.sql!r})"


def gen_tables(seed: int) -> Dict[str, Dict[str, np.ndarray]]:
    """The seed's table set: a general table, a NaN-heavy one, an empty one,
    a single-row one, and three join dimensions — a clean one keyed on b, an
    awkward one (duplicate/composite/NaN keys) and a zero-row one."""
    rng = np.random.default_rng(seed)

    def build(n: int, nan_rate: float = 0.1) -> Dict[str, np.ndarray]:
        ids = np.arange(n, dtype=np.int64)
        rng.shuffle(ids)
        g = rng.normal(scale=3.0, size=n)
        if n:
            g[rng.random(n) < nan_rate] = np.nan
        return {
            "id": ids,
            "a": rng.integers(-5, 21, n).astype(np.int64),
            "b": rng.integers(0, 10, n).astype(np.int64),
            "u": rng.integers(0, 1_000_000, n).astype(np.int64),
            "f": np.round(rng.normal(scale=2.0, size=n), 4),
            "g": g,
            "s": np.array([VOCAB[i] for i in rng.integers(0, len(VOCAB), n)],
                          dtype=object),
        }

    tables = {
        "t0": build(int(rng.integers(20, 70))),
        "t1": build(int(rng.integers(5, 40)), nan_rate=0.4),
        "t_empty": build(0),
        "t_one": build(1),
        "t_tiny": build(int(rng.integers(2, 5))),
    }
    # All-NULL float column variant (the satellite's all-NULL case).
    tables["t1"]["g"] = np.full_like(tables["t1"]["g"], np.nan) \
        if rng.random() < 0.3 else tables["t1"]["g"]
    # Join pair: dimension table keyed on the fact table's b column.
    dim_n = 10
    tables["dim"] = {
        "b": np.arange(dim_n, dtype=np.int64),
        "w": rng.integers(0, 50, dim_n).astype(np.int64),
        "label": np.array([VOCAB[i % len(VOCAB)] for i in range(dim_n)],
                          dtype=object),
    }
    # Awkward dimension table for multi-key joins: duplicate int keys (fan
    # out), a string key, and a float key carrying NaNs.
    dim2_n = 16
    d2g = np.round(rng.normal(scale=2.0, size=dim2_n), 4)
    d2g[rng.random(dim2_n) < 0.25] = np.nan
    tables["dim2"] = {
        "b": rng.integers(0, 10, dim2_n).astype(np.int64),
        "s": np.array([VOCAB[i] for i in rng.integers(0, len(VOCAB), dim2_n)],
                      dtype=object),
        "g": d2g,
        "w2": rng.integers(0, 100, dim2_n).astype(np.int64),
    }
    # Zero-row build side (joins against it must still type correctly).
    tables["dim_empty"] = {
        "b": np.empty(0, dtype=np.int64),
        "w": np.empty(0, dtype=np.int64),
        "label": np.empty(0, dtype=object),
    }
    return tables


# ----------------------------------------------------------------------
# Expression fragments
# ----------------------------------------------------------------------
def _int_literal(r: random.Random) -> str:
    return str(r.randint(-5, 20))


def _float_literal(r: random.Random) -> str:
    return f"{r.choice([-2.5, -1.0, -0.25, 0.0, 0.5, 1.5, 3.0]):g}"


def _numeric_expr(r: random.Random) -> Tuple[str, str]:
    """(sql, kind) — arithmetic over int/float columns and literals."""
    choice = r.random()
    if choice < 0.3:
        col = r.choice(INT_COLS)
        return f"{col} {r.choice(['+', '-', '*'])} {_int_literal(r)}", "int"
    if choice < 0.45:
        return f"{r.choice(INT_COLS)} + {r.choice(INT_COLS)} * 2", "int"
    if choice < 0.6:
        return f"{r.choice(INT_COLS)} % {r.randint(2, 9)}", "int"
    if choice < 0.75:
        return f"{r.choice(FLOAT_COLS)} * {_float_literal(r)}", "float"
    if choice < 0.9:
        return f"{r.choice(FLOAT_COLS)} + {r.choice(FLOAT_COLS)}", "float"
    return f"{r.choice(INT_COLS)} / {r.choice(['2.0', '4.0', '8.0'])}", "float"


def _comparison(r: random.Random) -> str:
    op = r.choice(["=", "!=", "<", "<=", ">", ">="])
    kind = r.random()
    if kind < 0.35:
        return f"{r.choice(INT_COLS)} {op} {_int_literal(r)}"
    if kind < 0.55:
        return f"{r.choice(FLOAT_COLS)} {op} {_float_literal(r)}"
    if kind < 0.7:
        return f"a {op} b"
    if kind < 0.85:
        return f"{STRING_COL} {op} '{r.choice(VOCAB)}'"
    return f"f {op} g"


def _atom(r: random.Random) -> str:
    kind = r.random()
    if kind < 0.55:
        return _comparison(r)
    if kind < 0.7:
        lo = r.randint(-5, 10)
        neg = "NOT " if r.random() < 0.3 else ""
        return f"{r.choice(INT_COLS)} {neg}BETWEEN {lo} AND {lo + r.randint(0, 10)}"
    if kind < 0.85:
        neg = "NOT " if r.random() < 0.3 else ""
        if r.random() < 0.5:
            values = ", ".join(str(r.randint(-5, 20)) for _ in range(r.randint(1, 4)))
            return f"{r.choice(INT_COLS)} {neg}IN ({values})"
        values = ", ".join(f"'{w}'" for w in r.sample(VOCAB, r.randint(1, 3)))
        return f"{STRING_COL} {neg}IN ({values})"
    neg = "NOT " if r.random() < 0.3 else ""
    return f"{STRING_COL} {neg}LIKE '{r.choice(LIKE_PATTERNS)}'"


def _predicate(r: random.Random) -> str:
    n = r.randint(1, 3)
    parts = []
    for _ in range(n):
        atom = _atom(r)
        if r.random() < 0.15:
            atom = f"NOT ({atom})"
        parts.append(atom)
    out = parts[0]
    for part in parts[1:]:
        out = f"{out} {r.choice(['AND', 'OR'])} {part}"
    return out


def _agg_item(r: random.Random, tag: int) -> Tuple[str, str]:
    """(sql, alias) for one aggregate output."""
    func = r.choice(["COUNT", "SUM", "AVG", "MIN", "MAX"])
    alias = f"agg{tag}"
    if func == "COUNT":
        inner = r.random()
        if inner < 0.5:
            return f"COUNT(*) AS {alias}", alias
        if inner < 0.75:
            return f"COUNT({r.choice(INT_COLS)}) AS {alias}", alias
        cols = INT_COLS + FLOAT_COLS + (STRING_COL,)
        return f"COUNT(DISTINCT {r.choice(cols)}) AS {alias}", alias
    col = r.choice(INT_COLS if r.random() < 0.6 else FLOAT_COLS)
    return f"{func}({col}) AS {alias}", alias


# ----------------------------------------------------------------------
# Statement shapes
# ----------------------------------------------------------------------
def _pick_table(r: random.Random) -> str:
    roll = r.random()
    if roll < 0.6:
        return "t0"
    if roll < 0.8:
        return "t1"
    return r.choice(["t_empty", "t_one", "t_tiny"])


def _projection_stmt(r: random.Random) -> DiffStatement:
    table = _pick_table(r)
    items = ["id"]
    for i in range(r.randint(0, 3)):
        if r.random() < 0.45:
            items.append(r.choice(INT_COLS + FLOAT_COLS + (STRING_COL,)))
        else:
            expr, _ = _numeric_expr(r)
            items.append(f"{expr} AS e{i}")
    # De-duplicate plain column repeats (duplicate output names would make
    # name-keyed comparison ambiguous).
    seen, unique = set(), []
    for item in items:
        name = item.split(" AS ")[-1]
        if name not in seen:
            seen.add(name)
            unique.append(item)
    sql = f"SELECT {', '.join(unique)} FROM {table}"
    if r.random() < 0.75:
        sql += f" WHERE {_predicate(r)}"
    ordered = False
    if r.random() < 0.5:
        # g carries NaNs: exercises NULL placement under ASC/DESC ordering.
        key = r.choice(["id", "a", "b", "f", "u", "g"])
        direction = r.choice(["ASC", "DESC"])
        order = f"{key} {direction}, id" if key != "id" else f"id {direction}"
        sql += f" ORDER BY {order}"
        ordered = True
        if r.random() < 0.6:
            sql += f" LIMIT {r.randint(1, 12)}"
            if r.random() < 0.3:
                sql += f" OFFSET {r.randint(1, 5)}"
    return DiffStatement(sql, table, ["id"], ordered, oracle=True)


def _alias_order_stmt(r: random.Random) -> DiffStatement:
    """ORDER BY a projected alias (exercises alias resolution in both)."""
    table = _pick_table(r)
    expr, _ = _numeric_expr(r)
    sql = f"SELECT id, {expr} AS v FROM {table}"
    if r.random() < 0.5:
        sql += f" WHERE {_predicate(r)}"
    sql += f" ORDER BY v {r.choice(['ASC', 'DESC'])}, id"
    if r.random() < 0.5:
        sql += f" LIMIT {r.randint(1, 10)}"
    return DiffStatement(sql, table, ["id"], ordered=True, oracle=True)


def _distinct_stmt(r: random.Random) -> DiffStatement:
    table = _pick_table(r)
    cols = r.sample(["s", "a", "b"], r.randint(1, 2))
    sql = f"SELECT DISTINCT {', '.join(cols)} FROM {table}"
    if r.random() < 0.6:
        sql += f" WHERE {_predicate(r)}"
    return DiffStatement(sql, table, cols, ordered=False, oracle=True)


def _global_agg_stmt(r: random.Random) -> DiffStatement:
    table = _pick_table(r)
    items = [_agg_item(r, i)[0] for i in range(r.randint(1, 4))]
    sql = f"SELECT {', '.join(items)} FROM {table}"
    if r.random() < 0.7:
        sql += f" WHERE {_predicate(r)}"
    return DiffStatement(sql, table, [], ordered=True, oracle=True)


def _group_agg_stmt(r: random.Random) -> DiffStatement:
    table = _pick_table(r)
    keys = r.choice([["s"], ["a"], ["b"], ["s", "a"]])
    items = list(keys)
    for i in range(r.randint(1, 3)):
        items.append(_agg_item(r, i)[0])
    sql = f"SELECT {', '.join(items)} FROM {table}"
    if r.random() < 0.6:
        sql += f" WHERE {_predicate(r)}"
    sql += f" GROUP BY {', '.join(keys)}"
    if r.random() < 0.3:
        sql += f" HAVING COUNT(*) > {r.randint(0, 3)}"
    ordered = False
    if r.random() < 0.4:
        sql += f" ORDER BY {', '.join(keys)}"
        ordered = True
    return DiffStatement(sql, table, list(keys), ordered, oracle=True)


def _pipeline_group_stmt(r: random.Random) -> DiffStatement:
    """Filter → (computed) project → GROUP BY: the exact shape PR 8's
    whole-pipeline compiler fuses (and lowers to grouped partials under
    shards), with expression-valued aggregate arguments so the fused
    projection feeds the aggregate. Miniduck evaluates expression
    aggregates, so this stays oracle-covered."""
    table = _pick_table(r)
    keys = r.choice([["s"], ["a"], ["b"], ["s", "b"]])
    items = list(keys)
    for i in range(r.randint(1, 3)):
        alias = f"agg{i}"
        roll = r.random()
        if roll < 0.3:
            items.append(f"COUNT(*) AS {alias}")
        elif roll < 0.6:
            col = r.choice(INT_COLS)
            items.append(f"SUM({col} {r.choice(['+', '*'])} "
                         f"{r.randint(1, 4)}) AS {alias}")
        elif roll < 0.8:
            items.append(f"{r.choice(['MIN', 'MAX'])}"
                         f"({r.choice(INT_COLS)} % {r.randint(2, 9)}) AS {alias}")
        else:
            items.append(f"AVG({r.choice(FLOAT_COLS)} * "
                         f"{_float_literal(r)}) AS {alias}")
    sql = f"SELECT {', '.join(items)} FROM {table}"
    sql += f" WHERE {_predicate(r)}"
    sql += f" GROUP BY {', '.join(keys)}"
    ordered = False
    if r.random() < 0.4:
        sql += f" ORDER BY {', '.join(keys)}"
        ordered = True
    return DiffStatement(sql, table, list(keys), ordered, oracle=True)


def _builtin_stmt(r: random.Random) -> DiffStatement:
    """Engine-only: scalar builtins/CAST the oracle has no functions for
    (PR 8's TRIM/SUBSTR/COALESCE and CAST-to-string kernel lowerings).
    Checked for shard- and kernel-invariance like every statement."""
    table = _pick_table(r)
    makers = [
        lambda: f"TRIM({STRING_COL})",
        lambda: f"SUBSTR({STRING_COL}, {r.randint(-1, 4)}, {r.randint(0, 5)})",
        lambda: f"SUBSTR({STRING_COL}, {r.randint(1, 3)})",
        lambda: f"COALESCE(g, {_float_literal(r)})",
        lambda: f"COALESCE(g, f, {_float_literal(r)})",
        lambda: f"CAST({r.choice(INT_COLS)} AS STRING)",
        lambda: f"CAST(f AS STRING)",
        lambda: f"CAST(f AS INT)",
        lambda: f"LENGTH(TRIM({STRING_COL}))",
        lambda: f"UPPER(SUBSTR({STRING_COL}, 1, 3))",
    ]
    items = ["id"] + [f"{maker()} AS e{i}"
                      for i, maker in enumerate(r.sample(makers, r.randint(1, 3)))]
    sql = f"SELECT {', '.join(items)} FROM {table}"
    if r.random() < 0.7:
        sql += f" WHERE {_predicate(r)}"
    if r.random() < 0.3:
        sql += " ORDER BY id"
    return DiffStatement(sql, table, ["id"], ordered="ORDER BY" in sql,
                         oracle=False)


def _join_stmt(r: random.Random) -> DiffStatement:
    """Engine-only: the oracle has no join support."""
    table = r.choice(["t0", "t1", "t_tiny"])
    kind = r.choice(["JOIN", "LEFT JOIN"])
    sql = (f"SELECT x.id, x.a, d.w, d.label FROM {table} x {kind} dim d "
           f"ON x.b = d.b")
    if r.random() < 0.5:
        sql += f" WHERE x.a > {r.randint(-5, 10)}"
    if r.random() < 0.4:
        sql += " ORDER BY x.id"
    return DiffStatement(sql, table, ["id"], ordered="ORDER BY" in sql,
                         oracle=False)


def _multikey_join_stmt(r: random.Random) -> DiffStatement:
    """Engine-only: joins through the awkward key shapes the exchange legs
    must keep bit-identical — composite keys, duplicate build keys that fan
    rows out, float keys carrying NaNs, and empty build/probe sides."""
    table = r.choice(["t0", "t1", "t_tiny", "t_one", "t_empty"])
    kind = r.choice(["JOIN", "LEFT JOIN"])
    roll = r.random()
    if roll < 0.4:
        dim, on, payload = "dim2", "x.b = d.b AND x.s = d.s", "d.w2"
    elif roll < 0.6:
        dim, on, payload = "dim2", "x.g = d.g", "d.w2"
    elif roll < 0.8:
        dim, on, payload = "dim2", "x.b = d.b", "d.w2"
    else:
        dim, on, payload = "dim_empty", "x.b = d.b", "d.w"
    sql = f"SELECT x.id, x.b, {payload} FROM {table} x {kind} {dim} d ON {on}"
    if r.random() < 0.4:
        sql += f" WHERE x.a > {r.randint(-5, 10)}"
    if r.random() < 0.3:
        sql += " ORDER BY x.id"
    return DiffStatement(sql, table, ["id"], ordered="ORDER BY" in sql,
                         oracle=False)


_SHAPES = [
    (_projection_stmt, 0.23),
    (_alias_order_stmt, 0.09),
    (_distinct_stmt, 0.08),
    (_global_agg_stmt, 0.14),
    (_group_agg_stmt, 0.16),
    (_pipeline_group_stmt, 0.10),
    (_builtin_stmt, 0.07),
    (_join_stmt, 0.06),
    (_multikey_join_stmt, 0.07),
]


def gen_statements(seed: int, count: int) -> List[DiffStatement]:
    r = random.Random(seed)
    weights = [w for _, w in _SHAPES]
    makers = [m for m, _ in _SHAPES]
    return [r.choices(makers, weights)[0](r) for _ in range(count)]
