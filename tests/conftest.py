"""Shared fixtures: seeded RNGs and fresh sessions per test."""

import numpy as np
import pytest

from repro import tcr
from repro.core.session import Session


@pytest.fixture(autouse=True)
def _seed_runtime():
    """Every test starts from the same runtime RNG state."""
    tcr.manual_seed(1234)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def session() -> Session:
    return Session()
