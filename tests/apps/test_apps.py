"""End-to-end application tests (small-scale versions of each use case)."""

import numpy as np
import pytest

from repro.apps import llp, mnistgrid, multimodal, ocr
from repro.baselines.regression import train_non_llp
from repro.core.session import Session
from repro.datasets import (
    laplace_counts,
    make_adult,
    make_attachments,
    make_bags,
    make_digits,
    make_documents,
    make_grids,
    train_test_split,
)
from repro.ml.models.clip import train_tiny_clip


class TestMnistGridApp:
    def test_query_compiles_and_counts_sum_to_nine(self, session):
        app = mnistgrid.build_app(session)
        grids = make_grids(2, np.random.default_rng(0))
        counts = app.predict_counts(grids.grids[0])
        assert counts.shape == (20,)
        assert counts.data.sum() == pytest.approx(9.0, rel=1e-4)

    def test_single_grid_training_steps_run(self, session):
        # The faithful Listing-5 loop (one grid per iteration) is mechanical
        # here; convergence needs the paper's 40k-iteration budget and is
        # exercised at benchmark scale (bench_fig3_mnistgrid).
        app = mnistgrid.build_app(session)
        train_set = make_grids(8, np.random.default_rng(0))
        curve = mnistgrid.train(app, train_set, iterations=6, eval_every=3,
                                eval_set=train_set)
        assert len(curve) == 2
        assert all(np.isfinite(mse) for _, mse in curve)

    def test_batched_training_reduces_test_mse(self, session):
        app = mnistgrid.build_batched_app(session, batch_size=8)
        train_set = make_grids(48, np.random.default_rng(0))
        test_set = make_grids(8, np.random.default_rng(1))
        before = mnistgrid.evaluate_mse(app, test_set)
        mnistgrid.train_batched(app, train_set, steps=150, batch_size=8, lr=3e-3)
        after = mnistgrid.evaluate_mse(app, test_set)
        assert after < before

    def test_eval_mode_returns_integer_counts(self, session):
        app = mnistgrid.build_app(session)
        grids = make_grids(1, np.random.default_rng(0))
        app.query.eval()
        app.register_grid(grids.grids[0])
        result = app.query.run(toPandas=True)
        assert len(result) == 20
        assert result["COUNT(*)"].sum() == 9

    def test_digit_accuracy_helper(self, session):
        app = mnistgrid.build_app(session)
        digits = make_digits(20, np.random.default_rng(0))
        acc = mnistgrid.digit_accuracy(app, digits.images, digits.digits)
        assert 0.0 <= acc <= 1.0


class TestLlpApp:
    def test_llp_beats_chance(self, session):
        adult = make_adult(1024, np.random.default_rng(0))
        (train_x, train_y), (test_x, test_y) = train_test_split(adult)
        app = llp.build_app(session, train_x.shape[1])
        bags = make_bags(train_x, train_y, 8, rng=np.random.default_rng(1))
        llp.train_on_bags(app, bags, epochs=6, lr=0.05)
        err = app.model.error(test_x, test_y)
        assert err < 0.45
        # And close to the fully supervised baseline for small bags.
        supervised = train_non_llp(train_x, train_y, epochs=10)
        assert err < supervised.error(test_x, test_y) + 0.15

    def test_noisy_counts_small_bags_hurt(self, session):
        adult = make_adult(512, np.random.default_rng(0))
        (train_x, train_y), (test_x, test_y) = train_test_split(adult)
        app = llp.build_app(session, train_x.shape[1])
        bags = make_bags(train_x, train_y, 1, rng=np.random.default_rng(1))
        noisy = laplace_counts(bags, epsilon=0.1, rng=np.random.default_rng(2))
        llp.train_on_bags(app, noisy[:64], epochs=3, lr=0.05)
        err = app.model.error(test_x, test_y)
        # With bag size 1 and eps=0.1 the signal is destroyed (paper Fig 3 mid).
        assert err > 0.25


class TestOcrApp:
    def test_paper_query_matches_truth(self, session):
        docs, _ = ocr.setup_ocr(session, make_documents(n=6, rows_per_doc=5))
        result = session.spark.query(ocr.PAPER_QUERY).run(toPandas=True)
        truth = docs.truth[0]
        assert result["AVG(SepalLength)"][0] == pytest.approx(
            float(np.mean(truth["SepalLength"])), abs=1e-3)
        assert result["AVG(PetalLength)"][0] == pytest.approx(
            float(np.mean(truth["PetalLength"])), abs=1e-3)

    def test_bulk_baseline_agrees_with_tdp(self, session):
        docs, _ = ocr.setup_ocr(session, make_documents(n=5, rows_per_doc=4))
        tdp_result = session.spark.query(ocr.PAPER_QUERY).run(toPandas=True)
        duck = ocr.load_into_miniduck(ocr.bulk_convert_all(docs))
        duck_result = duck.execute(ocr.MINIDUCK_QUERY)
        assert tdp_result["AVG(SepalLength)"][0] == pytest.approx(
            float(duck_result["AVG(SepalLength)"][0]), abs=1e-3)


class TestMultimodalApp:
    @pytest.fixture(scope="class")
    def trained(self):
        data = make_attachments(20, 10, 10, rng=np.random.default_rng(0))
        model = train_tiny_clip(data.images, data.captions, steps=400)
        return data, model

    def test_similarity_udf_in_query(self, trained):
        data, model = trained
        session = Session()
        multimodal.setup_multimodal(session, data, model)
        out = session.spark.query(
            'SELECT attachment_id, image_text_similarity("receipt", images) '
            'AS score FROM Attachments ORDER BY score DESC LIMIT 10'
        ).run(toPandas=True)
        top_ids = out["attachment_id"]
        top_labels = data.labels[top_ids]
        # The top hits must be dominated by actual receipts.
        assert (top_labels == "receipt").mean() >= 0.8

    def test_count_query_close_to_truth(self, trained):
        data, model = trained
        session = Session()
        multimodal.setup_multimodal(session, data, model)
        count = session.spark.query(
            'SELECT COUNT(*) FROM Attachments '
            'WHERE image_text_similarity("receipt", images) > 0.80'
        ).run().scalar()
        truth = int((data.labels == "receipt").sum())
        assert abs(count - truth) <= 2

    def test_workload_generator(self):
        queries = multimodal.mixed_workload(n=30)
        assert len(queries) == 30
        assert any("COUNT(*)" in q for q in queries)
        assert any("ORDER BY score DESC" in q for q in queries)
        # Deterministic for a fixed seed.
        assert multimodal.mixed_workload(n=30) == queries
