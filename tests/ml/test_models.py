"""Model zoo: shapes, parameter counts, TinyCLIP pieces, OCR units."""

import numpy as np
import pytest

from repro import tcr
from repro.ml.models import (
    CNN,
    CNNSmall,
    LinearClassifier,
    ResNet,
    ResNet8,
    ResNet18,
    TinyCLIP,
)
from repro.ml.models.clip import hash_tokens, preprocess_images, text_features
from repro.tcr.tensor import Tensor


class TestCNN:
    def test_output_shapes(self):
        digit_parser = CNN(num_classes=10)
        size_parser = CNN(num_classes=2)
        tiles = tcr.randn(9, 1, 28, 28)
        assert digit_parser(tiles).shape == (9, 10)
        assert size_parser(tiles).shape == (9, 2)

    def test_backward_flows(self):
        model = CNN(num_classes=3)
        x = tcr.randn(2, 1, 28, 28)
        model(x).sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_cnn_small_parameter_budget(self):
        # Paper: "CNN-Small with 850K trainable parameters".
        model = CNNSmall(out_dim=20)
        count = model.num_parameters()
        assert 700_000 < count < 1_000_000

    def test_cnn_small_output(self):
        model = CNNSmall(out_dim=20)
        assert model(tcr.randn(2, 1, 84, 84)).shape == (2, 20)


class TestResNet:
    def test_resnet18_parameter_count_near_paper(self):
        # Paper: "Resnet-18 with 11.1M trainable parameters".
        model = ResNet18(num_outputs=20)
        count = model.num_parameters()
        assert 10_500_000 < count < 11_800_000

    def test_resnet8_forward_backward(self):
        model = ResNet8(num_outputs=20)
        out = model(tcr.randn(2, 1, 84, 84))
        assert out.shape == (2, 20)
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters()
                   if p.requires_grad)

    def test_downsample_path_used_on_channel_change(self):
        model = ResNet([1, 1], [8, 16], num_outputs=4)
        assert model(tcr.randn(1, 1, 32, 32)).shape == (1, 4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResNet([1, 1], [8], num_outputs=2)


class TestLinearClassifier:
    def test_predict_and_error(self, rng):
        model = LinearClassifier(2, num_classes=2)
        model.linear.weight.data = np.array([[-5.0, 0.0], [5.0, 0.0]],
                                            dtype=np.float32)
        model.linear.bias.data = np.zeros(2, dtype=np.float32)
        x = rng.normal(size=(50, 2)).astype(np.float32)
        labels = (x[:, 0] > 0).astype(np.int64)
        assert model.accuracy(x, labels) == 1.0
        assert model.error(x, labels) == 0.0


class TestTinyClipPieces:
    def test_hash_tokens_stable_and_normalised(self):
        assert hash_tokens("A Dog!") == hash_tokens("a dog")
        features = text_features(["dog dog", "dog"])
        # BoW is L2-normalised so repetition does not change direction.
        np.testing.assert_allclose(features[0], features[1], rtol=1e-5)

    def test_text_features_shape(self):
        features = text_features(["a", "b c d"])
        assert features.shape[0] == 2
        np.testing.assert_allclose(np.linalg.norm(features, axis=1), 1.0,
                                   rtol=1e-5)

    def test_preprocess_downsamples(self):
        images = Tensor(np.zeros((2, 3, 200, 300), dtype=np.float32))
        assert preprocess_images(images).shape == (2, 3, 25, 25)

    def test_encoders_produce_unit_embeddings(self):
        model = TinyCLIP()
        images = tcr.randn(3, 3, 25, 25)
        img = model.encode_image(images).data
        np.testing.assert_allclose(np.linalg.norm(img, axis=1), 1.0, rtol=1e-4)
        txt = model.encode_text(["hello world"]).data
        np.testing.assert_allclose(np.linalg.norm(txt, axis=1), 1.0, rtol=1e-4)

    def test_logits_shape(self):
        model = TinyCLIP()
        logits = model.logits_per_image(tcr.randn(4, 3, 25, 25),
                                        ["a", "b", "c"])
        assert logits.shape == (4, 3)

    def test_similarity_uses_calibration(self):
        model = TinyCLIP()
        model.calib_scale.data = np.asarray([2.0], dtype=np.float32)
        model.calib_offset.data = np.asarray([0.5], dtype=np.float32)
        images = tcr.randn(2, 3, 25, 25)
        raw_img = model.encode_image(images).data
        raw_txt = model.encode_text(["q"]).data
        want = (raw_img @ raw_txt.T).ravel() * 2.0 + 0.5
        got = model.similarity("q", images).data
        np.testing.assert_allclose(got, want, rtol=1e-4)
