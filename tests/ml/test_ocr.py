"""OCR pipeline: detection, recognition, end-to-end extraction."""

import numpy as np
import pytest

from repro.datasets.documents import make_documents, render_dataframe_image
from repro.datasets.fonts import render_text
from repro.datasets.iris import FEATURES
from repro.errors import ExecutionError
from repro.ml.models.ocr import CharacterOCR, TableDetector, TableExtractor
from repro.storage.frame import DataFrame


class TestTableDetector:
    def test_finds_rows_and_columns(self):
        frame = DataFrame({"A": [1.5, 2.5], "B": [3.5, 4.5]})
        image = render_dataframe_image(frame, ["A", "B"])
        ink, rows, cols = TableDetector().detect(image)
        assert len(rows) == 3            # header + 2 data rows
        assert len(cols) == 2

    def test_empty_image_raises(self):
        blank = np.ones((1, 60, 60), dtype=np.float32)
        with pytest.raises(ExecutionError):
            TableDetector().detect(blank)


class TestCharacterOCR:
    def test_classifies_rendered_digits(self):
        ocr = CharacterOCR(scale=2)
        for text in ["0123", "456", "789", "3.5", "-2.0"]:
            ink = render_text(text, scale=2)
            assert ocr.read_cell(ink) == text

    def test_robust_to_pixel_shift(self):
        ocr = CharacterOCR(scale=2, shifts=1)
        ink = np.pad(render_text("7.2", scale=2), ((1, 0), (1, 0)))
        assert ocr.read_cell(ink) == "7.2"

    def test_empty_cell_returns_empty(self):
        assert CharacterOCR().read_cell(np.zeros((14, 20), dtype=np.float32)) == ""


class TestTableExtractor:
    def test_exact_roundtrip_single_document(self):
        frame = DataFrame({name: np.round(
            np.random.default_rng(0).uniform(0.5, 9.5, 5), 1).astype(np.float32)
            for name in FEATURES})
        image = render_dataframe_image(frame, FEATURES)
        rows = TableExtractor().extract(image)
        got = np.asarray(rows, dtype=np.float32)
        want = np.stack([frame[name] for name in FEATURES], axis=1)
        np.testing.assert_allclose(got, want, atol=1e-3)

    def test_all_documents_roundtrip(self):
        docs = make_documents(n=6, rows_per_doc=8)
        extractor = TableExtractor()
        for i in range(len(docs)):
            got = np.asarray(extractor.extract(docs.images[i]), dtype=np.float32)
            want = np.stack([docs.truth[i][name] for name in FEATURES], axis=1)
            np.testing.assert_allclose(got, want, atol=1e-3,
                                       err_msg=f"document {i} mismatch")

    def test_extract_columns_batches(self):
        docs = make_documents(n=3, rows_per_doc=4)
        values = TableExtractor().extract_columns(docs.images)
        assert values.shape == (12, 4)
