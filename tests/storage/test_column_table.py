"""Columns and tables."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import CatalogError, ShapeError
from repro.storage import types as dt
from repro.storage.column import Column
from repro.storage.encodings import DictionaryEncoding, RunLengthEncoding, PEEncoding
from repro.storage.frame import DataFrame
from repro.storage.table import Table


class TestColumn:
    def test_from_values_infers_encodings(self):
        assert isinstance(Column.from_values("s", ["a", "b"]).encoding,
                          DictionaryEncoding)
        assert Column.from_values("i", [1, 2]).data_type == dt.INT
        assert Column.from_values("f", [1.0]).data_type == dt.FLOAT
        assert Column.from_values("b", [True]).data_type == dt.BOOL

    def test_tensor_column_type(self):
        col = Column.from_values("img", np.zeros((5, 3, 8, 8)))
        assert col.data_type.kind == "tensor"
        assert col.data_type.row_shape == (3, 8, 8)

    def test_pe_column_type(self):
        enc = PEEncoding.encode(np.eye(4, dtype=np.float32))
        col = Column("p", enc)
        assert col.data_type.kind == "prob"
        assert col.data_type.num_classes == 4

    def test_take_preserves_dictionary(self):
        col = Column.from_values("s", ["x", "y", "z"])
        taken = col.take(np.array([2, 0]))
        np.testing.assert_array_equal(taken.decode(), ["z", "x"])

    def test_take_materializes_rle(self):
        enc = RunLengthEncoding.encode(np.array([7, 7, 8]))
        col = Column("r", enc)
        taken = col.take(np.array([0, 2]))
        np.testing.assert_array_equal(taken.decode(), [7, 8])

    def test_take_is_differentiable_for_float(self):
        t = tcr.tensor([1.0, 2.0, 3.0], requires_grad=True)
        col = Column.from_values("v", t)
        col.take(np.array([1, 1])).tensor.sum().backward()
        assert t.grad.tolist() == [0.0, 2.0, 0.0]

    def test_rename_and_with_tensor(self):
        col = Column.from_values("a", [1.0, 2.0])
        assert col.rename("b").name == "b"
        replaced = col.with_tensor(tcr.tensor([9.0, 9.0]))
        assert replaced.decode().tolist() == [9.0, 9.0]

    def test_device_move(self):
        col = Column.from_values("a", [1.0]).to("cuda")
        assert str(col.device) == "cuda:0"


class TestTable:
    def test_from_dict_and_schema(self):
        table = Table.from_dict("t", {"a": [1, 2], "s": ["x", "y"]})
        assert table.num_rows == 2
        assert table.schema["a"] == dt.INT
        assert table.schema["s"] == dt.STRING

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            Table.from_dict("t", {"a": [1, 2], "b": [1]})

    def test_duplicate_names_allowed_positionally(self):
        cols = [Column.from_values("x", [1]), Column.from_values("x", [2])]
        table = Table("t", cols)
        assert table.num_columns == 2
        with pytest.raises(CatalogError):
            table.column("x")          # ambiguous by name
        assert table.column_at(1).decode().tolist() == [2]

    def test_column_lookup_case_insensitive(self):
        table = Table.from_dict("t", {"Digit": [1]})
        assert table.column("digit").name == "Digit"
        with pytest.raises(CatalogError):
            table.column("nope")

    def test_take_select_head(self):
        table = Table.from_dict("t", {"a": [1, 2, 3], "b": [4.0, 5.0, 6.0]})
        taken = table.take(np.array([2, 0]))
        assert taken.column("a").decode().tolist() == [3, 1]
        assert table.select(["b"]).column_names == ["b"]
        assert table.head(2).num_rows == 2

    def test_from_tensor(self):
        table = Table.from_tensor("g", tcr.zeros(1, 8, 8))
        assert table.column_names == ["value"]
        assert table.num_rows == 1

    def test_to_frame_roundtrip(self):
        frame = DataFrame({"a": [1, 2], "s": ["p", "q"]})
        table = Table.from_frame("t", frame)
        out = table.to_frame()
        assert out["a"].tolist() == [1, 2]
        assert out["s"].tolist() == ["p", "q"]

    def test_device_move(self):
        table = Table.from_dict("t", {"a": [1.0]}).to("cuda")
        assert str(table.device) == "cuda:0"
