"""Encodings: plain, order-preserving dictionary, PE, RLE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tcr
from repro.errors import EncodingError
from repro.storage.encodings import (
    DictionaryEncoding,
    EncodedTensor,
    PEEncoding,
    PlainEncoding,
    ProbabilityEncoding,
    RunLengthEncoding,
)
from repro.tcr.tensor import Tensor

text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=400),
               max_size=12)


class TestPlain:
    def test_roundtrip(self):
        enc = PlainEncoding.encode(np.array([1.5, 2.5], dtype=np.float32))
        np.testing.assert_array_equal(enc.decode(), [1.5, 2.5])

    def test_multidimensional(self):
        enc = PlainEncoding.encode(np.zeros((4, 3, 28, 28)))
        assert enc.num_rows == 4


class TestDictionary:
    def test_roundtrip(self):
        values = ["beta", "alpha", "beta", "gamma"]
        enc = DictionaryEncoding.encode(values)
        np.testing.assert_array_equal(enc.decode(), values)

    def test_dictionary_is_2d_codepoint_tensor(self):
        enc = DictionaryEncoding.encode(["ab", "c"])
        dictionary = enc.encoding.dictionary
        assert dictionary.ndim == 2
        assert dictionary.dtype == np.uint32

    def test_codes_are_order_preserving(self):
        enc = DictionaryEncoding.encode(["pear", "apple", "zebra", "mango"])
        codes = enc.tensor.data
        strings = enc.decode()
        for i in range(len(strings)):
            for j in range(len(strings)):
                assert (codes[i] < codes[j]) == (strings[i] < strings[j])

    def test_code_for_lookup(self):
        enc = DictionaryEncoding.encode(["b", "a", "c"]).encoding
        assert enc.code_for("a") == 0
        assert enc.code_for("zzz") is None

    def test_prefix_range(self):
        enc = DictionaryEncoding.encode(
            ["app", "apple", "apply", "banana", "ap"]).encoding
        lo, hi = enc.prefix_range("app")
        matching = [s for s in enc.strings if s.startswith("app")]
        assert hi - lo == len(matching)

    def test_none_becomes_empty_string(self):
        enc = DictionaryEncoding.encode(["x", None])
        assert enc.decode()[1] == ""

    def test_validate_rejects_2d_codes(self):
        enc = DictionaryEncoding.encode(["a"]).encoding
        with pytest.raises(EncodingError):
            EncodedTensor(tcr.zeros(2, 2).long(), enc)

    def test_decode_rejects_out_of_range(self):
        enc = DictionaryEncoding.encode(["a", "b"]).encoding
        bad = Tensor(np.array([5], dtype=np.int64))
        with pytest.raises(EncodingError):
            enc.decode(bad)

    @given(st.lists(text, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        enc = DictionaryEncoding.encode(values)
        got = enc.decode().tolist()
        assert got == [v for v in values]

    @given(st.lists(text, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_order_preservation_property(self, values):
        enc = DictionaryEncoding.encode(values)
        codes = enc.tensor.data
        order_by_code = np.argsort(codes, kind="stable")
        order_by_string = np.argsort(np.asarray(values, dtype=object), kind="stable")
        got = [values[i] for i in order_by_code]
        want = [values[i] for i in order_by_string]
        assert got == want


class TestProbability:
    def test_encode_probabilities_pass_through(self):
        probs = np.array([[0.9, 0.1], [0.3, 0.7]], dtype=np.float32)
        enc = PEEncoding.encode(probs, domain=["no", "yes"])
        np.testing.assert_allclose(enc.tensor.data, probs)
        np.testing.assert_array_equal(enc.decode(), ["no", "yes"])

    def test_encode_logits_applies_softmax(self):
        logits = np.array([[10.0, 0.0]], dtype=np.float32)
        enc = PEEncoding.encode(logits)
        assert enc.tensor.data[0, 0] > 0.99
        np.testing.assert_allclose(enc.tensor.data.sum(axis=1), 1.0, rtol=1e-5)

    def test_explicit_logits_flag(self):
        probs = np.array([[0.5, 0.5]], dtype=np.float32)
        enc = PEEncoding.encode(probs, logits=True)
        np.testing.assert_allclose(enc.tensor.data, [[0.5, 0.5]])

    def test_default_domain_is_range(self):
        enc = PEEncoding.encode(np.eye(3, dtype=np.float32))
        np.testing.assert_array_equal(enc.encoding.domain, [0, 1, 2])

    def test_gradient_flows_through_encode(self):
        logits = tcr.tensor([[1.0, 2.0]], requires_grad=True)
        enc = PEEncoding.encode(logits)
        enc.tensor.sum().backward()
        assert logits.grad is not None

    def test_validate_shape_and_classes(self):
        enc = ProbabilityEncoding(num_classes=3)
        with pytest.raises(EncodingError):
            EncodedTensor(tcr.zeros(4), enc)
        with pytest.raises(EncodingError):
            EncodedTensor(tcr.zeros(4, 2), enc)

    def test_hard_codes(self):
        enc = PEEncoding.encode(np.array([[0.2, 0.8], [0.9, 0.1]],
                                         dtype=np.float32))
        assert enc.encoding.hard_codes(enc.tensor).tolist() == [1, 0]

    @given(st.lists(st.lists(st.floats(0.01, 10.0), min_size=3, max_size=3),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_rows_always_normalised(self, raw):
        scores = np.asarray(raw, dtype=np.float32)
        enc = PEEncoding.encode(scores, logits=True)
        np.testing.assert_allclose(enc.tensor.data.sum(axis=1), 1.0, rtol=1e-4)


class TestRunLength:
    def test_roundtrip(self):
        values = np.array([5, 5, 5, 2, 2, 9])
        enc = RunLengthEncoding.encode(values)
        np.testing.assert_array_equal(enc.decode(), values)
        assert enc.tensor.shape[0] == 3     # three runs

    def test_sum_fast_matches_decoded(self):
        values = np.array([1.0, 1.0, 4.0, 4.0, 4.0], dtype=np.float32)
        enc = RunLengthEncoding.encode(values)
        assert enc.encoding.sum_fast(enc.tensor) == pytest.approx(values.sum())

    def test_empty(self):
        enc = RunLengthEncoding.encode(np.zeros(0))
        assert enc.decode().shape == (0,)

    def test_rejects_2d(self):
        with pytest.raises(EncodingError):
            RunLengthEncoding.encode(np.zeros((2, 2)))

    @given(st.lists(st.integers(-3, 3), min_size=0, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        array = np.asarray(values, dtype=np.int64)
        enc = RunLengthEncoding.encode(array)
        np.testing.assert_array_equal(enc.decode(), array)
        # Compression invariant: run count never exceeds element count.
        assert enc.tensor.shape[0] <= max(len(values), 1)
