"""DataFrame, catalog, CSV/NPZ I/O."""

import numpy as np
import pytest

from repro.errors import CatalogError, TdpError
from repro.storage.catalog import Catalog
from repro.storage.frame import DataFrame
from repro.storage.io import load_table, read_csv, save_table, write_csv
from repro.storage.table import Table


class TestDataFrame:
    def test_basic_construction(self):
        f = DataFrame({"a": [1, 2], "b": ["x", "y"]})
        assert f.shape == (2, 2)
        assert f.columns == ["a", "b"]
        assert f["b"].dtype == object

    def test_length_mismatch_rejected(self):
        f = DataFrame({"a": [1, 2]})
        with pytest.raises(TdpError):
            f["b"] = [1]

    def test_unknown_column_keyerror(self):
        with pytest.raises(KeyError):
            DataFrame({"a": [1]})["zz"]

    def test_from_records(self):
        f = DataFrame.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert f["a"].tolist() == [1, 2]

    def test_row_and_itertuples(self):
        f = DataFrame({"a": [1, 2], "b": [3, 4]})
        assert f.row(1) == {"a": 2, "b": 4}
        assert list(f.itertuples()) == [(1, 3), (2, 4)]

    def test_head_select_rename(self):
        f = DataFrame({"a": [1, 2, 3], "b": [4, 5, 6]})
        assert len(f.head(2)) == 2
        assert f.select(["b"]).columns == ["b"]
        assert f.rename({"a": "z"}).columns == ["z", "b"]

    def test_sort_values(self):
        f = DataFrame({"a": [3, 1, 2]})
        assert f.sort_values("a")["a"].tolist() == [1, 2, 3]
        assert f.sort_values("a", ascending=False)["a"].tolist() == [3, 2, 1]

    def test_sort_values_is_stable_in_both_directions(self):
        f = DataFrame({"k": [1, 2, 1, 2, 1], "id": [0, 1, 2, 3, 4]})
        asc = f.sort_values("k")
        assert asc["k"].tolist() == [1, 1, 1, 2, 2]
        assert asc["id"].tolist() == [0, 2, 4, 1, 3]     # ties in input order
        desc = f.sort_values("k", ascending=False)
        assert desc["k"].tolist() == [2, 2, 1, 1, 1]
        assert desc["id"].tolist() == [1, 3, 0, 2, 4]    # ties in input order

    def test_sort_values_descending_stable_for_strings(self):
        f = DataFrame({"k": np.array(["b", "a", "b", "a"]), "id": [0, 1, 2, 3]})
        desc = f.sort_values("k", ascending=False)
        assert desc["k"].tolist() == ["b", "b", "a", "a"]
        assert desc["id"].tolist() == [0, 2, 1, 3]

    def test_equals_with_float_tolerance(self):
        a = DataFrame({"x": [1.0, 2.0]})
        b = DataFrame({"x": [1.0 + 1e-8, 2.0]})
        assert a.equals(b)
        assert not a.equals(DataFrame({"x": [1.0, 3.0]}))
        assert not a.equals(DataFrame({"y": [1.0, 2.0]}))

    def test_repr_does_not_crash_on_tensors(self):
        f = DataFrame({"img": np.zeros((3, 2, 2))})
        assert "tensor" in repr(f)


class TestCatalog:
    def test_register_get_drop(self):
        cat = Catalog()
        table = Table.from_dict("t", {"a": [1]})
        cat.register("T1", table)
        assert "t1" in cat
        assert cat.get("t1") is table
        cat.drop("T1")
        assert "t1" not in cat

    def test_replace_semantics(self):
        cat = Catalog()
        cat.register("t", Table.from_dict("t", {"a": [1]}))
        cat.register("t", Table.from_dict("t", {"a": [2]}))     # replace ok
        assert cat.get("t").column("a").decode().tolist() == [2]
        with pytest.raises(CatalogError):
            cat.register("t", Table.from_dict("t", {"a": [3]}), replace=False)

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get("missing")
        with pytest.raises(CatalogError):
            Catalog().drop("missing")


class TestIO:
    def test_csv_roundtrip(self, tmp_path):
        f = DataFrame({"a": [1, 2], "b": [1.5, 2.5], "s": ["x", "y"]})
        path = str(tmp_path / "data.csv")
        write_csv(f, path)
        back = read_csv(path)
        assert back["a"].dtype == np.int64
        assert back["b"].dtype == np.float32
        assert back["s"].tolist() == ["x", "y"]

    def test_csv_missing_file(self):
        with pytest.raises(TdpError):
            read_csv("/no/such/file.csv")

    def test_csv_empty_fields_are_nulls(self, tmp_path):
        # Seed raised ValueError on int('') for any missing field.
        path = str(tmp_path / "gaps.csv")
        with open(path, "w") as f:
            f.write("i,x,s,blank\n1,,left,\n,2.5,,\n3,9.5,right,\n")
        back = read_csv(path)
        # Int column with a hole becomes float64 with NaN (int64 has no
        # NULL; float64 keeps values exact to 2^53, unlike float32).
        assert back["i"].dtype == np.float64
        assert back["i"][0] == 1.0 and np.isnan(back["i"][1])
        assert np.isnan(back["x"][0]) and back["x"][1] == 2.5
        # String columns keep empty strings; all-empty columns are all-NaN.
        assert back["s"].tolist() == ["left", "", "right"]
        assert np.isnan(back["blank"]).all()

    def test_csv_nullable_int_column_keeps_large_values_exact(self, tmp_path):
        path = str(tmp_path / "big.csv")
        with open(path, "w") as f:
            f.write(f"id\n{2**24 + 1}\n\n{2**40 + 3}\n")
        back = read_csv(path)
        assert back["id"][0] == 2**24 + 1      # float32 would give 2^24
        assert np.isnan(back["id"][1])
        assert back["id"][2] == 2**40 + 3

    def test_csv_intact_int_column_stays_int(self, tmp_path):
        path = str(tmp_path / "ints.csv")
        with open(path, "w") as f:
            f.write("i\n1\n2\n3\n")
        assert read_csv(path)["i"].dtype == np.int64

    def test_table_npz_roundtrip(self, tmp_path):
        table = Table.from_dict("t", {"a": [1, 2], "s": ["aa", "bb"]})
        path = str(tmp_path / "table.npz")
        save_table(table, path)
        back = load_table(path)
        assert back.column("a").decode().tolist() == [1, 2]
        assert back.column("s").decode().tolist() == ["aa", "bb"]
