"""Optimisers: convergence and mechanics."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import TdpError
from repro.tcr import nn, optim


def _fit(optimizer_factory, steps=300):
    """Fit y = 3x + 1 with one Linear layer; return final loss."""
    tcr.manual_seed(0)
    model = nn.Linear(1, 1)
    opt = optimizer_factory(model.parameters())
    x = tcr.randn(64, 1)
    y = x * 3.0 + 1.0
    loss = None
    for _ in range(steps):
        opt.zero_grad()
        loss = nn.MSELoss()(model(x), y)
        loss.backward()
        opt.step()
    return loss.item(), model


class TestSGD:
    def test_converges(self):
        loss, model = _fit(lambda p: optim.SGD(p, lr=0.1))
        assert loss < 1e-3
        assert model.weight.item() == pytest.approx(3.0, abs=0.05)

    def test_momentum_accelerates(self):
        plain, _ = _fit(lambda p: optim.SGD(p, lr=0.01), steps=100)
        momentum, _ = _fit(lambda p: optim.SGD(p, lr=0.01, momentum=0.9),
                           steps=100)
        assert momentum < plain

    def test_weight_decay_shrinks_weights(self):
        _, strong = _fit(lambda p: optim.SGD(p, lr=0.1, weight_decay=0.5))
        _, free = _fit(lambda p: optim.SGD(p, lr=0.1))
        assert abs(strong.weight.item()) < abs(free.weight.item())

    def test_skips_parameters_without_grad(self):
        p = nn.Parameter(np.zeros(2, dtype=np.float32))
        opt = optim.SGD([p], lr=0.1)
        opt.step()   # no grad — must not raise or move
        assert p.data.tolist() == [0.0, 0.0]


class TestAdam:
    def test_converges(self):
        loss, model = _fit(lambda p: optim.Adam(p, lr=0.05))
        assert loss < 1e-4
        assert model.bias.item() == pytest.approx(1.0, abs=0.02)

    def test_adamw_decay_is_decoupled(self):
        _, adamw = _fit(lambda p: optim.AdamW(p, lr=0.05, weight_decay=0.2))
        _, adam = _fit(lambda p: optim.Adam(p, lr=0.05))
        assert abs(adamw.weight.item()) < abs(adam.weight.item())

    def test_bias_correction_first_step(self):
        p = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = optim.Adam([p], lr=0.1)
        p.grad = np.asarray([1.0], dtype=np.float32)
        opt.step()
        # With bias correction the first step ≈ -lr regardless of beta values.
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(TdpError):
            optim.SGD([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(TdpError):
            optim.Adam([nn.Parameter(np.zeros(1, dtype=np.float32))], lr=0.0)

    def test_zero_grad_clears(self):
        p = nn.Parameter(np.zeros(1, dtype=np.float32))
        opt = optim.SGD([p], lr=0.1)
        p.grad = np.asarray([1.0], dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None
