"""einops-style rearrange, including the paper's Listing 4 pattern."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import ShapeError
from repro.tcr.einops import rearrange

from tests.tcr.gradcheck import assert_grad_matches


class TestRearrange:
    def test_paper_grid_pattern(self):
        grid = tcr.tensor(np.arange(84 * 84, dtype=np.float32).reshape(1, 84, 84))
        tiles = rearrange(grid, "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2",
                          h1=3, w1=3)
        assert tiles.shape == (9, 1, 28, 28)
        # Tile 0 must be the top-left 28x28 block.
        np.testing.assert_array_equal(tiles.data[0, 0],
                                      grid.data[0, :28, :28])
        # Tile 5 is row 1, column 2.
        np.testing.assert_array_equal(tiles.data[5, 0],
                                      grid.data[0, 28:56, 56:84])

    def test_transpose_pattern(self):
        t = tcr.tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        got = rearrange(t, "a b -> b a")
        np.testing.assert_array_equal(got.data, t.data.T)

    def test_merge_pattern(self):
        t = tcr.zeros(2, 3, 4)
        assert rearrange(t, "a b c -> a (b c)").shape == (2, 12)
        assert rearrange(t, "a b c -> (a b) c").shape == (6, 4)

    def test_split_with_inference(self):
        t = tcr.zeros(12)
        assert rearrange(t, "(a b) -> a b", a=3).shape == (3, 4)

    def test_new_singleton_axis(self):
        t = tcr.zeros(3, 4)
        assert rearrange(t, "a b -> a 1 b").shape == (3, 1, 4)

    def test_drop_singleton_axis(self):
        t = tcr.zeros(1, 5)
        assert rearrange(t, "1 a -> a").shape == (5,)

    def test_roundtrip_identity(self):
        t = tcr.tensor(np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        there = rearrange(t, "a b c -> c (a b)")
        back = rearrange(there, "c (a b) -> a b c", a=2)
        np.testing.assert_array_equal(back.data, t.data)

    def test_errors(self):
        t = tcr.zeros(2, 3)
        with pytest.raises(ShapeError):
            rearrange(t, "a b")                  # no arrow
        with pytest.raises(ShapeError):
            rearrange(t, "a -> a")               # rank mismatch
        with pytest.raises(ShapeError):
            rearrange(t, "a b -> a")             # dropped non-singleton
        with pytest.raises(ShapeError):
            rearrange(t, "(a b) c -> a b c")     # two unknowns in one group

    def test_indivisible_group_raises(self):
        with pytest.raises(ShapeError):
            rearrange(tcr.zeros(7), "(a b) -> a b", a=3)

    def test_gradient_flows_through(self):
        assert_grad_matches(
            lambda g: (rearrange(g, "1 (h1 h2) (w1 w2) -> (h1 w1) h2 w2",
                                 h1=2, w1=2) ** 2).sum(),
            [(1, 4, 4)],
        )
