"""Indexing, gather/scatter and segment ops."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


class TestValues:
    def test_basic_slicing(self):
        t = tcr.tensor(np.arange(12).reshape(3, 4).astype(np.float32))
        assert t[1].data.tolist() == [4, 5, 6, 7]
        assert t[0:2, 1].data.tolist() == [1, 5]
        assert t[-1, -1].item() == 11

    def test_fancy_and_bool_indexing(self):
        t = tcr.tensor([10.0, 20.0, 30.0, 40.0])
        assert t[[0, 2]].data.tolist() == [10.0, 30.0]
        assert t[tcr.tensor([3, 3])].data.tolist() == [40.0, 40.0]
        mask = tcr.tensor([True, False, True, False])
        assert t[mask].data.tolist() == [10.0, 30.0]

    def test_gather(self):
        t = tcr.tensor([[1.0, 2.0], [3.0, 4.0]])
        idx = tcr.tensor([[0, 0], [1, 0]])
        got = ops.gather(t, 1, idx)
        assert got.data.tolist() == [[1.0, 1.0], [4.0, 3.0]]

    def test_index_select(self):
        t = tcr.tensor(np.arange(12).reshape(3, 4).astype(np.float32))
        got = ops.index_select(t, 0, tcr.tensor([2, 0]))
        assert got.data[0].tolist() == [8, 9, 10, 11]

    def test_masked_select(self):
        t = tcr.tensor([1.0, 2.0, 3.0])
        got = ops.masked_select(t, tcr.tensor([False, True, True]))
        assert got.data.tolist() == [2.0, 3.0]

    def test_scatter_add(self):
        base = tcr.zeros(5)
        idx = tcr.tensor([0, 0, 3])
        src = tcr.tensor([1.0, 2.0, 5.0])
        got = ops.scatter_add(base, 0, idx, src)
        assert got.data.tolist() == [3.0, 0.0, 0.0, 5.0, 0.0]

    def test_one_hot(self):
        got = ops.one_hot(tcr.tensor([0, 2]), 3)
        assert got.data.tolist() == [[1, 0, 0], [0, 0, 1]]
        with pytest.raises(ShapeError):
            ops.one_hot(tcr.tensor([5]), 3)

    def test_segment_sum(self):
        values = tcr.tensor([[1.0], [2.0], [3.0], [4.0]])
        got = ops.segment_sum(values, np.array([0, 2, 3]))
        assert got.data.tolist() == [[3.0], [3.0], [4.0]]

    def test_segment_sum_rejects_bad_starts(self):
        with pytest.raises(ShapeError):
            ops.segment_sum(tcr.ones(4), np.array([1, 2]))

    def test_repeat_interleave(self):
        t = tcr.tensor([1.0, 2.0])
        assert ops.repeat_interleave(t, 2).data.tolist() == [1.0, 1.0, 2.0, 2.0]
        got = ops.repeat_interleave(t, np.array([1, 3]))
        assert got.data.tolist() == [1.0, 2.0, 2.0, 2.0]


class TestGradients:
    def test_getitem_slice_grad(self):
        assert_grad_matches(lambda a: (a[1:3] * 2.0).sum(), [(5,)])

    def test_getitem_repeated_fancy_index_accumulates(self):
        t = tcr.tensor([1.0, 2.0], requires_grad=True)
        t[np.array([0, 0, 1])].sum().backward()
        assert t.grad.tolist() == [2.0, 1.0]

    def test_gather_grad_with_duplicates(self):
        idx = np.array([[0, 0], [1, 1]])
        assert_grad_matches(lambda a: ops.gather(a, 1, idx).sum(), [(2, 2)])

    def test_index_select_grad(self):
        idx = np.array([0, 0, 2])
        assert_grad_matches(lambda a: ops.index_select(a, 0, idx).sum(), [(3, 2)])

    def test_scatter_add_grads_both_sides(self):
        idx = np.array([1, 1, 0])
        assert_grad_matches(
            lambda a, s: (ops.scatter_add(a, 0, idx, s) ** 2).sum(),
            [(3,), (3,)],
        )

    def test_segment_sum_grad(self):
        starts = np.array([0, 2])
        weights = Tensor(np.array([[1.0], [5.0]]))
        assert_grad_matches(
            lambda a: (ops.segment_sum(a, starts) * weights).sum(), [(4, 1)]
        )

    def test_repeat_interleave_grad(self):
        reps = np.array([2, 0, 3])
        weights = Tensor(np.arange(5, dtype=np.float64))
        assert_grad_matches(
            lambda a: (ops.repeat_interleave(a, reps) * weights).sum(), [(3,)]
        )
