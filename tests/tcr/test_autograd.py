"""Autograd engine semantics + numerical gradient checks for core ops."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import AutogradError
from repro.tcr import ops
from repro.tcr.autograd import enable_grad, grad_of, no_grad, unbroadcast
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


class TestEngine:
    def test_backward_on_non_scalar_needs_gradient(self):
        t = tcr.tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(AutogradError):
            (t * 2).backward()

    def test_backward_with_explicit_gradient(self):
        t = tcr.tensor([1.0, 2.0], requires_grad=True)
        (t * 2).backward(np.array([1.0, 10.0], dtype=np.float32))
        np.testing.assert_array_equal(t.grad, [2.0, 20.0])

    def test_gradient_accumulates_across_backwards(self):
        t = tcr.tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        assert t.grad.tolist() == [5.0]

    def test_diamond_graph_accumulation(self):
        # y = x*x + x*x must give dy/dx = 4x, not 2x.
        x = tcr.tensor([3.0], requires_grad=True)
        a = x * x
        (a + a).sum().backward()
        assert x.grad.tolist() == [12.0]

    def test_reused_tensor_in_two_paths(self):
        x = tcr.tensor([2.0], requires_grad=True)
        y = (x * 3 + x * x).sum()     # dy/dx = 3 + 2x = 7
        y.backward()
        assert x.grad.tolist() == [7.0]

    def test_no_grad_blocks_taping(self):
        x = tcr.tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_enable_grad_inside_no_grad(self):
        x = tcr.tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                y = x * 2
        assert y.requires_grad

    def test_grad_of_leaves_grads_untouched(self):
        x = tcr.tensor([1.0, 2.0], requires_grad=True)
        (x * 5).sum().backward()
        before = x.grad.copy()
        (g,) = grad_of((x * x).sum(), [x])
        np.testing.assert_array_equal(g, [2.0, 4.0])
        np.testing.assert_array_equal(x.grad, before)

    def test_backward_through_non_grad_parent(self):
        a = tcr.tensor([1.0], requires_grad=True)
        b = tcr.tensor([2.0])                 # no grad
        (a * b).sum().backward()
        assert a.grad.tolist() == [2.0]
        assert b.grad is None


class TestUnbroadcast:
    def test_sum_over_prepended_axes(self):
        grad = np.ones((4, 3))
        out = unbroadcast(grad, (3,))
        np.testing.assert_array_equal(out, [4.0, 4.0, 4.0])

    def test_sum_over_stretched_axes(self):
        grad = np.ones((2, 3))
        out = unbroadcast(grad, (2, 1))
        np.testing.assert_array_equal(out, [[3.0], [3.0]])

    def test_noop_when_shapes_match(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad


class TestNumericalGradients:
    """Central-difference checks for every differentiable op family."""

    def test_add_sub_broadcast(self):
        assert_grad_matches(lambda a, b: (a + b - a * 0.5).sum(), [(3, 2), (2,)])

    def test_mul_div(self):
        assert_grad_matches(lambda a, b: (a * b / (b * b + 1.0)).sum(),
                            [(4,), (4,)])

    def test_pow_scalar_exponent(self):
        assert_grad_matches(lambda a: (a ** 3.0).sum(), [(5,)], positive=True)

    def test_pow_tensor_exponent(self):
        assert_grad_matches(lambda a, b: (a ** b).sum(), [(3,), (3,)],
                            positive=True)

    def test_exp_log_sqrt(self):
        assert_grad_matches(lambda a: (a.exp() + a.log() + a.sqrt()).sum(),
                            [(6,)], positive=True)

    def test_abs(self):
        assert_grad_matches(lambda a: a.abs().sum(), [(7,)], positive=True)

    def test_clamp(self):
        assert_grad_matches(lambda a: a.clamp(-0.5, 0.5).sum(), [(9,)])

    def test_maximum_minimum(self):
        assert_grad_matches(
            lambda a, b: (ops.maximum(a, b) + ops.minimum(a, b)).sum(),
            [(6,), (6,)],
        )

    def test_where(self):
        cond = Tensor(np.array([True, False, True, False]))
        assert_grad_matches(lambda a, b: ops.where(cond, a, b).sum(),
                            [(4,), (4,)])

    def test_sigmoid_tanh_relu(self):
        assert_grad_matches(
            lambda a: (a.sigmoid() + a.tanh() + (a + 2.0).relu()).sum(), [(8,)]
        )

    def test_leaky_relu_gelu(self):
        assert_grad_matches(
            lambda a: (ops.leaky_relu(a, 0.1) + ops.gelu(a)).sum(), [(8,)]
        )

    def test_softmax_log_softmax(self):
        weights = Tensor(np.arange(12, dtype=np.float64).reshape(3, 4))
        assert_grad_matches(
            lambda a: (a.softmax(dim=1) * weights).sum()
            + (a.log_softmax(dim=1) * 0.1).sum(),
            [(3, 4)],
        )

    def test_matmul_2d(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), [(3, 4), (4, 2)])

    def test_matmul_vector_cases(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), [(4,), (4, 2)])
        assert_grad_matches(lambda a, b: (a @ b).sum(), [(3, 4), (4,)])
        assert_grad_matches(lambda a, b: a @ b, [(4,), (4,)])

    def test_matmul_batched_broadcast(self):
        assert_grad_matches(lambda a, b: (a @ b).sum(), [(2, 3, 4), (4, 2)])

    def test_einsum_pair(self):
        assert_grad_matches(
            lambda a, b: ops.einsum_pair("ri,rj->ij", a, b).sum(),
            [(5, 2), (5, 3)],
        )

    def test_remainder(self):
        assert_grad_matches(lambda a: (a % 2.5).sum(), [(5,)], positive=True)

    def test_log1p(self):
        assert_grad_matches(lambda a: ops.log1p(a).sum(), [(4,)], positive=True)
