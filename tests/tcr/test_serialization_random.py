"""Serialization round-trips and RNG reproducibility."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import TdpError
from repro.tcr import nn
from repro.tcr.serialization import load_into, load_state, save_state


class TestSerialization:
    def test_module_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        path = str(tmp_path / "model.npz")
        save_state(model, path)
        clone = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        load_into(clone, path)
        x = tcr.randn(2, 3)
        np.testing.assert_array_equal(model(x).data, clone(x).data)

    def test_buffers_serialized(self, tmp_path):
        bn = nn.BatchNorm2d(2)
        bn(tcr.randn(4, 2, 3, 3))
        path = str(tmp_path / "bn.npz")
        save_state(bn, path)
        state = load_state(path)
        assert "running_mean" in state

    def test_raw_dict_roundtrip(self, tmp_path):
        path = str(tmp_path / "raw.npz")
        save_state({"a": np.arange(3)}, path)
        assert load_state(path)["a"].tolist() == [0, 1, 2]

    def test_missing_file_raises(self):
        with pytest.raises(TdpError):
            load_state("/nonexistent/state.npz")

    def test_bad_object_rejected(self, tmp_path):
        with pytest.raises(TdpError):
            save_state(42, str(tmp_path / "x.npz"))


class TestRandom:
    def test_manual_seed_reproduces(self):
        tcr.manual_seed(7)
        a = tcr.randn(5).data
        tcr.manual_seed(7)
        b = tcr.randn(5).data
        np.testing.assert_array_equal(a, b)

    def test_fork_generator_does_not_disturb_global(self):
        tcr.manual_seed(7)
        _ = tcr.fork_generator(99).normal(size=3)
        a = tcr.randn(3).data
        tcr.manual_seed(7)
        b = tcr.randn(3).data
        np.testing.assert_array_equal(a, b)

    def test_randint_range(self):
        values = tcr.randint(2, 5, (1000,)).data
        assert values.min() >= 2 and values.max() < 5

    def test_randperm_is_permutation(self):
        perm = tcr.randperm(10).data
        assert sorted(perm.tolist()) == list(range(10))

    def test_bernoulli_rate(self):
        draws = tcr.bernoulli(0.25, (10000,)).data
        assert abs(draws.mean() - 0.25) < 0.03
