"""Numerical gradient checking against the autograd engine."""

import numpy as np

from repro.tcr.tensor import Tensor


def numeric_grad(fn, inputs, index, eps=1e-3):
    """Central-difference gradient of scalar fn(*inputs) w.r.t. inputs[index]."""
    base = inputs[index]
    grad = np.zeros_like(base.data, dtype=np.float64)
    flat = base.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(*inputs).item()
        flat[i] = original - eps
        minus = fn(*inputs).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_matches(fn, shapes, rtol=1e-2, atol=1e-3, seed=0, positive=False):
    """Build float64 leaf tensors, compare autograd vs numerical gradients.

    ``fn`` must map the tensors to a scalar Tensor.
    """
    rng = np.random.default_rng(seed)
    inputs = []
    for shape in shapes:
        data = rng.standard_normal(shape)
        if positive:
            data = np.abs(data) + 0.5
        inputs.append(Tensor(data.astype(np.float64), requires_grad=True,
                             dtype=np.float64))
    out = fn(*inputs)
    out.backward()
    for i, tensor in enumerate(inputs):
        expected = numeric_grad(fn, inputs, i)
        assert tensor.grad is not None, f"input {i} has no gradient"
        np.testing.assert_allclose(
            tensor.grad, expected, rtol=rtol, atol=atol,
            err_msg=f"gradient mismatch for input {i}",
        )
