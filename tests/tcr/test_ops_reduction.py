"""Reductions: values and adjoints."""

import numpy as np
import pytest

from repro import tcr
from repro.tcr import ops
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


class TestValues:
    def test_sum_dims_and_keepdim(self):
        t = tcr.tensor(np.arange(24).reshape(2, 3, 4).astype(np.float32))
        assert ops.sum(t).item() == 276
        assert ops.sum(t, dim=1).shape == (2, 4)
        assert ops.sum(t, dim=(0, 2), keepdim=True).shape == (1, 3, 1)

    def test_mean_var_std(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        t = tcr.tensor(data)
        assert ops.mean(t).item() == pytest.approx(2.5)
        assert ops.var(t, unbiased=False).item() == pytest.approx(data.var())
        assert ops.std(t, dim=0, unbiased=True).shape == (2,)

    def test_max_min_global(self):
        t = tcr.tensor([[1.0, 9.0], [5.0, 2.0]])
        assert ops.max(t).item() == 9.0
        assert ops.min(t).item() == 1.0

    def test_max_with_dim_returns_values_and_indices(self):
        t = tcr.tensor([[1.0, 9.0], [5.0, 2.0]])
        values, indices = ops.max(t, dim=1)
        assert values.data.tolist() == [9.0, 5.0]
        assert indices.data.tolist() == [1, 0]

    def test_argmax_argmin(self):
        t = tcr.tensor([[1.0, 9.0], [5.0, 2.0]])
        assert ops.argmax(t).item() == 1
        assert ops.argmax(t, dim=0).data.tolist() == [1, 0]
        assert ops.argmin(t, dim=1).data.tolist() == [0, 1]

    def test_cumsum(self):
        t = tcr.tensor([1.0, 2.0, 3.0])
        assert ops.cumsum(t).data.tolist() == [1.0, 3.0, 6.0]

    def test_logsumexp_matches_naive(self):
        data = np.random.default_rng(0).normal(size=(3, 5)).astype(np.float32)
        t = tcr.tensor(data)
        got = ops.logsumexp(t, dim=1).data
        want = np.log(np.exp(data).sum(axis=1))
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_logsumexp_is_stable_for_large_inputs(self):
        t = tcr.tensor([1000.0, 1000.0])
        assert np.isfinite(ops.logsumexp(t, dim=0).item())

    def test_all_any(self):
        t = tcr.tensor([[True, False], [True, True]])
        assert not ops.all(t).item()
        assert ops.any(t).item()
        assert ops.all(t, dim=1).data.tolist() == [False, True]

    def test_prod(self):
        t = tcr.tensor([2.0, 3.0, 4.0])
        assert ops.prod(t).item() == 24.0


class TestGradients:
    def test_sum_mean_grads(self):
        assert_grad_matches(lambda a: a.sum() + a.mean(dim=0).sum(), [(3, 4)])

    def test_var_std_grads(self):
        assert_grad_matches(lambda a: a.var(dim=1).sum() + a.std().sum(),
                            [(4, 5)])

    def test_max_min_grads(self):
        assert_grad_matches(lambda a: ops.max(a, dim=1)[0].sum()
                            + ops.min(a).sum(), [(3, 4)])

    def test_cumsum_grad(self):
        weights = Tensor(np.arange(5, dtype=np.float64))
        assert_grad_matches(lambda a: (a.cumsum(0) * weights).sum(), [(5,)])

    def test_logsumexp_grad(self):
        assert_grad_matches(lambda a: ops.logsumexp(a, dim=1).sum(), [(3, 4)])

    def test_prod_grad(self):
        assert_grad_matches(lambda a: ops.prod(a).sum(), [(4,)], positive=True)
