"""Shape ops: values, errors and adjoints."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


class TestValues:
    def test_reshape_and_view(self):
        t = tcr.arange(6, dtype=np.float32)
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.view(3, -1).shape == (3, 2)

    def test_transpose_permute(self):
        t = tcr.zeros(2, 3, 4)
        assert t.transpose(0, 2).shape == (4, 3, 2)
        assert t.permute(1, 2, 0).shape == (3, 4, 2)
        assert t.T.shape == (4, 3, 2)

    def test_permute_requires_full_permutation(self):
        with pytest.raises(ShapeError):
            tcr.zeros(2, 3).permute(0, 0)

    def test_squeeze_unsqueeze(self):
        t = tcr.zeros(1, 3, 1)
        assert t.squeeze().shape == (3,)
        assert t.squeeze(0).shape == (3, 1)
        assert t.squeeze(1).shape == (1, 3, 1)    # non-1 dim: no-op
        assert t.unsqueeze(0).shape == (1, 1, 3, 1)
        assert tcr.zeros(3).unsqueeze(-1).shape == (3, 1)

    def test_flatten(self):
        t = tcr.zeros(2, 3, 4)
        assert t.flatten().shape == (24,)
        assert t.flatten(1).shape == (2, 12)
        assert t.flatten(0, 1).shape == (6, 4)

    def test_broadcast_expand(self):
        t = tcr.tensor([[1.0], [2.0]])
        assert t.expand(2, 3).data.tolist() == [[1, 1, 1], [2, 2, 2]]

    def test_cat_stack(self):
        a, b = tcr.ones(2, 2), tcr.zeros(2, 2)
        assert ops.cat([a, b], dim=0).shape == (4, 2)
        assert ops.cat([a, b], dim=1).shape == (2, 4)
        assert ops.stack([a, b], dim=0).shape == (2, 2, 2)
        assert ops.stack([a, b], dim=-1).shape == (2, 2, 2)

    def test_cat_empty_list_raises(self):
        with pytest.raises(ShapeError):
            ops.cat([], dim=0)

    def test_split_chunk(self):
        t = tcr.arange(10, dtype=np.float32)
        parts = ops.split(t, 4)
        assert [p.shape[0] for p in parts] == [4, 4, 2]
        chunks = ops.chunk(t, 3)
        assert [c.shape[0] for c in chunks] == [4, 4, 2]

    def test_pad2d(self):
        t = tcr.ones(1, 1, 2, 2)
        padded = ops.pad2d(t, 1)
        assert padded.shape == (1, 1, 4, 4)
        assert padded.data.sum() == 4.0

    def test_tile(self):
        t = tcr.tensor([[1.0, 2.0]])
        assert ops.tile(t, (2, 2)).shape == (2, 4)

    def test_flip(self):
        t = tcr.tensor([1.0, 2.0, 3.0])
        assert ops.flip(t, 0).data.tolist() == [3.0, 2.0, 1.0]


class TestGradients:
    def test_reshape_transpose_grads(self):
        assert_grad_matches(
            lambda a: (a.reshape(6) * np.arange(6)).sum()
            + a.transpose(0, 1).sum(), [(2, 3)],
        )

    def test_permute_grad(self):
        weights = Tensor(np.arange(24, dtype=np.float64).reshape(4, 3, 2))
        assert_grad_matches(lambda a: (a.permute(2, 1, 0) * weights).sum(),
                            [(2, 3, 4)])

    def test_broadcast_to_grad(self):
        assert_grad_matches(lambda a: a.broadcast_to((4, 3)).sum(), [(3,)])

    def test_cat_stack_grads(self):
        weights = Tensor(np.arange(8, dtype=np.float64).reshape(4, 2))
        assert_grad_matches(
            lambda a, b: (ops.cat([a, b], dim=0) * weights).sum(),
            [(2, 2), (2, 2)],
        )
        assert_grad_matches(
            lambda a, b: ops.stack([a, b], dim=1).sum() * 2.0,
            [(3,), (3,)],
        )

    def test_pad_tile_flip_grads(self):
        assert_grad_matches(lambda a: ops.pad2d(a, (1, 0, 2, 1)).sum() * 3.0,
                            [(1, 1, 3, 3)])
        weights = Tensor(np.arange(12, dtype=np.float64).reshape(2, 6))
        assert_grad_matches(lambda a: (ops.tile(a, (2, 3)) * weights).sum(),
                            [(1, 2)])
        weights2 = Tensor(np.arange(4, dtype=np.float64))
        assert_grad_matches(lambda a: (ops.flip(a, 0) * weights2).sum(), [(4,)])

    def test_split_grad(self):
        assert_grad_matches(
            lambda a: sum((p * (i + 1)).sum() for i, p in enumerate(ops.split(a, 2))),
            [(5,)],
        )
