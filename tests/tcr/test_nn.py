"""nn.Module system, layers, losses, norm layers."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import ShapeError, TdpError
from repro.tcr import nn
from repro.tcr.nn import functional as F
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


class TestModuleSystem:
    def test_parameter_registration(self):
        lin = nn.Linear(3, 2)
        names = dict(lin.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert lin.num_parameters() == 3 * 2 + 2

    def test_nested_modules_and_prefixes(self):
        model = nn.Sequential(nn.Linear(2, 4), nn.ReLU(), nn.Linear(4, 1))
        names = [n for n, _ in model.named_parameters()]
        assert "0.weight" in names and "2.bias" in names
        assert len(list(model.parameters())) == 4

    def test_shared_parameter_yielded_once(self):
        lin = nn.Linear(2, 2)
        holder = nn.Sequential(lin, lin)
        assert len(list(holder.parameters())) == 2

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Dropout(0.5))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_zero_grad(self):
        lin = nn.Linear(2, 1)
        (lin(tcr.ones(1, 2)).sum()).backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Linear(3, 3)
        b = nn.Linear(3, 3)
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_state_dict_strict_mismatch(self):
        a = nn.Linear(3, 3)
        with pytest.raises(TdpError):
            a.load_state_dict({"weight": np.zeros((3, 3))})

    def test_state_dict_shape_mismatch(self):
        a = nn.Linear(3, 3)
        state = a.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(TdpError):
            a.load_state_dict(state)

    def test_to_device_moves_parameters_and_buffers(self):
        bn = nn.BatchNorm2d(2)
        bn.to("cuda")
        assert all(p.device == tcr.CUDA for p in bn.parameters())
        assert bn.running_mean.device == tcr.CUDA

    def test_modules_iteration(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Sequential(nn.ReLU()))
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Sequential") == 2
        assert "ReLU" in kinds


class TestLayers:
    def test_linear_matches_manual(self, rng):
        lin = nn.Linear(4, 3)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        got = lin(Tensor(x)).data
        want = x @ lin.weight.data.T + lin.bias.data
        np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_linear_without_bias(self):
        lin = nn.Linear(4, 3, bias=False)
        assert lin.bias is None
        assert len(list(lin.parameters())) == 1

    def test_conv_output_shape(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(tcr.zeros(2, 3, 16, 16))
        assert out.shape == (2, 8, 8, 8)

    def test_dropout_eval_is_identity(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = tcr.ones(100)
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_train_scales(self):
        drop = nn.Dropout(0.5)
        x = tcr.ones(10000)
        out = drop(x).data
        assert set(np.unique(out)).issubset({0.0, 2.0})
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_invalid_p(self):
        with pytest.raises(ShapeError):
            nn.Dropout(1.0)

    def test_embedding_lookup_grad(self):
        emb = nn.Embedding(10, 4)
        out = emb(tcr.tensor([1, 1, 3]))
        out.sum().backward()
        assert emb.weight.grad[1].tolist() == [2.0] * 4
        assert emb.weight.grad[3].tolist() == [1.0] * 4

    def test_flatten_layer(self):
        assert nn.Flatten()(tcr.zeros(2, 3, 4)).shape == (2, 12)

    def test_sequential_getitem_append(self):
        model = nn.Sequential(nn.ReLU())
        model.append(nn.Tanh())
        assert len(model) == 2
        assert isinstance(model[1], nn.Tanh)

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2)])
        ml.append(nn.Linear(2, 2))
        assert len(ml) == 2
        assert len(list(nn.Sequential(*ml).parameters())) == 4


class TestNorm:
    def test_batchnorm_normalises_in_train(self, rng):
        bn = nn.BatchNorm2d(3)
        x = Tensor(rng.normal(3.0, 2.0, size=(8, 3, 4, 4)).astype(np.float32))
        out = bn(x).data
        assert abs(out.mean()) < 1e-4
        assert abs(out.std() - 1.0) < 1e-2

    def test_batchnorm_running_stats_used_in_eval(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(5.0, 1.0, size=(16, 2, 3, 3)).astype(np.float32))
        for _ in range(60):
            bn(x)
        bn.eval()
        out = bn(x).data
        assert abs(out.mean()) < 0.2

    def test_batchnorm_channel_check(self):
        bn = nn.BatchNorm2d(3)
        with pytest.raises(ShapeError):
            bn(tcr.zeros(1, 2, 4, 4))

    def test_layernorm(self, rng):
        ln = nn.LayerNorm(8)
        x = Tensor(rng.normal(2.0, 3.0, size=(4, 8)).astype(np.float32))
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-4)

    def test_batchnorm_grad(self):
        bn = nn.BatchNorm2d(2)
        x = tcr.randn(4, 2, 3, 3, requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.weight.grad is not None


class TestLosses:
    def test_mse(self):
        loss = nn.MSELoss()(tcr.tensor([1.0, 2.0]), tcr.tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_mse_shape_check(self):
        with pytest.raises(ShapeError):
            nn.MSELoss()(tcr.zeros(2), tcr.zeros(3))

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4)).astype(np.float32)
        targets = rng.integers(0, 4, size=6)
        got = nn.CrossEntropyLoss()(Tensor(logits), Tensor(targets)).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        want = -log_probs[np.arange(6), targets].mean()
        assert got == pytest.approx(want, rel=1e-5)

    def test_bce_with_logits_stable(self):
        loss = nn.BCEWithLogitsLoss()(tcr.tensor([100.0, -100.0]),
                                      tcr.tensor([1.0, 0.0]))
        assert loss.item() < 1e-6

    def test_l1(self):
        loss = nn.L1Loss()(tcr.tensor([1.0, -2.0]), tcr.tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_kldiv_zero_for_equal_distributions(self):
        probs = tcr.tensor([[0.25, 0.75]])
        loss = nn.KLDivLoss()(probs.log(), probs)
        assert abs(loss.item()) < 1e-6

    def test_cross_entropy_grad(self):
        assert_grad_matches(
            lambda logits: nn.CrossEntropyLoss()(
                logits, Tensor(np.array([0, 2, 1]))),
            [(3, 4)],
        )


class TestFunctional:
    def test_normalize_unit_norm(self, rng):
        x = Tensor(rng.normal(size=(5, 3)).astype(np.float32))
        norms = np.linalg.norm(F.normalize(x).data, axis=1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-4)

    def test_cosine_similarity_range(self, rng):
        a = Tensor(rng.normal(size=(5, 4)).astype(np.float32))
        sims = F.cosine_similarity(a, a).data
        np.testing.assert_allclose(sims, 1.0, rtol=1e-4)
