"""Tensor construction, dtype policy, conversion and device placement."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import AutogradError, DeviceError, ShapeError


class TestConstruction:
    def test_float_lists_become_float32(self):
        t = tcr.tensor([1.0, 2.0])
        assert t.dtype == np.float32

    def test_int_lists_become_int64(self):
        t = tcr.tensor([1, 2, 3])
        assert t.dtype == np.int64

    def test_bool_lists_stay_bool(self):
        t = tcr.tensor([True, False])
        assert t.dtype == np.bool_

    def test_float64_downcast_to_float32(self):
        t = tcr.tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float32

    def test_explicit_dtype_respected(self):
        t = tcr.tensor([1, 2], dtype=np.float64)
        assert t.dtype == np.float64

    def test_requires_grad_on_int_rejected(self):
        with pytest.raises(AutogradError):
            tcr.tensor([1, 2], requires_grad=True)

    def test_zeros_ones_full(self):
        assert tcr.zeros(2, 3).shape == (2, 3)
        assert tcr.ones((4,)).data.sum() == 4
        assert tcr.full((2,), 7).data.tolist() == [7, 7]

    def test_arange_linspace_eye(self):
        assert tcr.arange(5).data.tolist() == [0, 1, 2, 3, 4]
        assert tcr.linspace(0, 1, 5).shape == (5,)
        assert tcr.eye(3).data.trace() == 3.0

    def test_zeros_like_preserves_device(self):
        t = tcr.tensor([1.0], device="cuda")
        assert tcr.zeros_like(t).device == tcr.CUDA


class TestIntrospection:
    def test_shape_ndim_numel(self):
        t = tcr.zeros(2, 3, 4)
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.numel() == 24
        assert t.size(1) == 3
        assert len(t) == 2

    def test_len_of_scalar_raises(self):
        with pytest.raises(ShapeError):
            len(tcr.tensor(1.0))

    def test_item_requires_single_element(self):
        assert tcr.tensor([3.5]).item() == pytest.approx(3.5)
        with pytest.raises(ShapeError):
            tcr.tensor([1.0, 2.0]).item()

    def test_bool_of_multielement_raises(self):
        with pytest.raises(ShapeError):
            bool(tcr.tensor([1.0, 2.0]))

    def test_repr_mentions_grad_and_device(self):
        t = tcr.tensor([1.0], requires_grad=True, device="cuda")
        text = repr(t)
        assert "requires_grad=True" in text
        assert "cuda" in text


class TestConversion:
    def test_numpy_rejects_grad_tensors(self):
        t = tcr.tensor([1.0], requires_grad=True)
        with pytest.raises(AutogradError):
            t.numpy()
        assert t.detach().numpy().tolist() == [1.0]

    def test_detach_shares_buffer(self):
        t = tcr.tensor([1.0, 2.0])
        assert t.detach().data is t.data

    def test_clone_copies_buffer(self):
        t = tcr.tensor([1.0, 2.0])
        c = t.clone()
        assert c.data is not t.data
        np.testing.assert_array_equal(c.data, t.data)

    def test_dtype_casts(self):
        t = tcr.tensor([1.7, 2.2])
        assert t.long().dtype == np.int64
        assert t.long().data.tolist() == [1, 2]
        assert t.bool().dtype == np.bool_
        assert t.double().dtype == np.float64

    def test_tolist(self):
        assert tcr.tensor([[1, 2]]).tolist() == [[1, 2]]


class TestDevice:
    def test_default_cpu(self):
        assert tcr.tensor([1.0]).device == tcr.CPU

    def test_to_cuda_and_back(self):
        t = tcr.tensor([1.0, 2.0])
        gpu = t.cuda()
        assert gpu.device == tcr.CUDA
        assert gpu is not t               # distinct tensor, retagged buffer
        assert gpu.cpu().device == tcr.CPU

    def test_cross_device_op_rejected(self):
        a = tcr.tensor([1.0])
        b = tcr.tensor([1.0], device="cuda")
        with pytest.raises(DeviceError):
            a + b

    def test_device_transfer_is_differentiable(self):
        t = tcr.tensor([1.0, 2.0], requires_grad=True)
        (t.cuda() * 3.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [3.0, 3.0])

    def test_unknown_device_rejected(self):
        with pytest.raises(DeviceError):
            tcr.as_device("tpu")

    def test_device_profiles(self):
        assert tcr.CUDA.profile.exec_batch_rows > tcr.CPU.profile.exec_batch_rows


class TestInplaceAssignment:
    def test_setitem_on_plain_tensor(self):
        t = tcr.zeros(4)
        t[1] = 5.0
        assert t.data.tolist() == [0.0, 5.0, 0.0, 0.0]

    def test_setitem_with_tensor_index(self):
        t = tcr.zeros(4)
        t[tcr.tensor([0, 2])] = 1.0
        assert t.data.tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_setitem_on_graph_tensor_rejected(self):
        t = tcr.tensor([1.0], requires_grad=True)
        with pytest.raises(AutogradError):
            t[0] = 2.0
