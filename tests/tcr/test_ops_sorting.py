"""Sorting / top-k / unique / search ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import tcr
from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


class TestSorting:
    def test_argsort_ascending_descending(self):
        t = tcr.tensor([3.0, 1.0, 2.0])
        assert ops.argsort(t).data.tolist() == [1, 2, 0]
        assert ops.argsort(t, descending=True).data.tolist() == [0, 2, 1]

    def test_sort_returns_values_and_indices(self):
        values, indices = ops.sort(tcr.tensor([3.0, 1.0, 2.0]))
        assert values.data.tolist() == [1.0, 2.0, 3.0]
        assert indices.data.tolist() == [1, 2, 0]

    def test_topk(self):
        values, indices = ops.topk(tcr.tensor([1.0, 9.0, 4.0, 7.0]), k=2)
        assert values.data.tolist() == [9.0, 7.0]
        assert indices.data.tolist() == [1, 3]

    def test_topk_smallest(self):
        values, _ = ops.topk(tcr.tensor([1.0, 9.0, 4.0]), k=2, largest=False)
        assert values.data.tolist() == [1.0, 4.0]

    def test_topk_bounds_check(self):
        with pytest.raises(ShapeError):
            ops.topk(tcr.tensor([1.0]), k=5)

    def test_unique_with_counts(self):
        values, counts = ops.unique(tcr.tensor([3, 1, 3, 1, 1]),
                                    return_counts=True)
        assert values.data.tolist() == [1, 3]
        assert counts.data.tolist() == [3, 2]

    def test_searchsorted(self):
        seq = tcr.tensor([1.0, 3.0, 5.0])
        got = ops.searchsorted(seq, tcr.tensor([0.0, 3.0, 6.0]))
        assert got.data.tolist() == [0, 1, 3]

    def test_bincount(self):
        got = ops.bincount(tcr.tensor([0, 1, 1, 3]), minlength=5)
        assert got.data.tolist() == [1, 2, 0, 1, 0]

    def test_nonzero(self):
        got = ops.nonzero(tcr.tensor([0.0, 1.0, 0.0, 2.0]))
        assert got.data.reshape(-1).tolist() == [1, 3]

    def test_lexsort_rows_most_significant_first(self):
        a = tcr.tensor([1, 0, 1, 0])
        b = tcr.tensor([9, 8, 1, 2])
        order = ops.lexsort_rows([a, b]).data
        # Sort by a first, then b.
        assert a.data[order].tolist() == [0, 0, 1, 1]
        assert b.data[order].tolist() == [2, 8, 1, 9]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_argsort_matches_numpy(self, values):
        t = tcr.tensor(values)
        got = t.data[ops.argsort(t).data]
        np.testing.assert_array_equal(got, np.sort(values))

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                    max_size=30),
           st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_topk_matches_full_sort(self, values, k):
        k = min(k, len(values))
        t = tcr.tensor(np.asarray(values, dtype=np.float32))
        top_values, _ = ops.topk(t, k)
        want = np.sort(np.asarray(values, dtype=np.float32))[::-1][:k]
        np.testing.assert_allclose(top_values.data, want, rtol=1e-6)


class TestGradients:
    def test_sort_grad_routes_through_permutation(self):
        weights = Tensor(np.array([1.0, 10.0, 100.0]))
        assert_grad_matches(
            lambda a: (ops.sort(a)[0] * weights).sum(), [(3,)]
        )

    def test_topk_grad_hits_selected_entries_only(self):
        t = tcr.tensor([1.0, 5.0, 3.0, 4.0], requires_grad=True)
        values, _ = ops.topk(t, 2)
        values.sum().backward()
        assert t.grad.tolist() == [0.0, 1.0, 0.0, 1.0]
