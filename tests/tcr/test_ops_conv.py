"""Convolution and pooling: reference-checked forwards + gradcheck."""

import numpy as np
import pytest

from repro import tcr
from repro.errors import ShapeError
from repro.tcr import ops
from repro.tcr.tensor import Tensor

from tests.tcr.gradcheck import assert_grad_matches


def reference_conv2d(x, w, b, stride, padding):
    """Naive loop conv for cross-checking the im2col implementation."""
    n, c, h, width = x.shape
    o, _, kh, kw = w.shape
    x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    ho = (x.shape[2] - kh) // stride + 1
    wo = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, o, ho, wo))
    for ni in range(n):
        for oi in range(o):
            for i in range(ho):
                for j in range(wo):
                    patch = x[ni, :, i * stride:i * stride + kh,
                              j * stride:j * stride + kw]
                    out[ni, oi, i, j] = (patch * w[oi]).sum()
            if b is not None:
                out[ni, oi] += b[oi]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_reference(self, stride, padding, rng):
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        b = rng.normal(size=4).astype(np.float32)
        got = ops.conv2d(Tensor(x), Tensor(w), Tensor(b),
                         stride=stride, padding=padding).data
        want = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            ops.conv2d(tcr.zeros(1, 2, 4, 4), tcr.zeros(1, 3, 3, 3))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            ops.conv2d(tcr.zeros(1, 1, 2, 2), tcr.zeros(1, 1, 5, 5))


class TestPoolForward:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        got = ops.max_pool2d(x, 2).data
        assert got.reshape(-1).tolist() == [5, 7, 13, 15]

    def test_max_pool_with_stride(self):
        x = Tensor(np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5))
        got = ops.max_pool2d(x, 3, stride=2)
        assert got.shape == (1, 1, 2, 2)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        got = ops.avg_pool2d(x, 2).data
        assert got.reshape(-1).tolist() == [2.5, 4.5, 10.5, 12.5]

    def test_adaptive_avg_pool_global(self):
        x = Tensor(np.ones((2, 3, 5, 7), dtype=np.float32))
        got = ops.adaptive_avg_pool2d(x, 1)
        assert got.shape == (2, 3, 1, 1)
        assert got.data.reshape(-1).tolist() == [1.0] * 6


class TestGradients:
    def test_conv_grads(self):
        assert_grad_matches(
            lambda x, w, b: ops.conv2d(x, w, b, stride=1, padding=1).sum(),
            [(1, 2, 5, 5), (3, 2, 3, 3), (3,)],
        )

    def test_conv_strided_grads(self):
        assert_grad_matches(
            lambda x, w: ops.conv2d(x, w, stride=2).sum(),
            [(1, 1, 6, 6), (2, 1, 3, 3)],
        )

    def test_max_pool_grad(self):
        assert_grad_matches(lambda x: ops.max_pool2d(x, 2).sum(),
                            [(1, 1, 4, 4)])

    def test_avg_pool_grad(self):
        assert_grad_matches(lambda x: ops.avg_pool2d(x, 2).sum() * 2.0,
                            [(1, 2, 4, 4)])

    def test_adaptive_pool_grad(self):
        assert_grad_matches(lambda x: ops.adaptive_avg_pool2d(x, 1).sum(),
                            [(2, 2, 4, 4)])
